//! Sparse logistic regression with FTRL-Proximal.
//!
//! §6.1: "We use a logistic regression model in TFX. We train using the
//! FTRL optimization algorithm [McMahan et al. 2013], a variant of
//! stochastic gradient descent that tunes per-coordinate learning rates,
//! with an initial step size of 0.2 ... All experiments use a batch size
//! of 64."
//!
//! FTRL-Proximal stores per-coordinate `(z, n)` state and materializes
//! weights lazily:
//!
//! ```text
//! w_i = 0                                       if |z_i| ≤ λ₁
//! w_i = −(z_i − sign(z_i)·λ₁) / ((β + √n_i)/α + λ₂)   otherwise
//! ```
//!
//! with the per-example update `σ = (√(n+g²) − √n)/α`, `z += g − σ·w`,
//! `n += g²`. The L1 term gives the sparse models production systems want.

use crate::error::MlError;
use crate::loss::{noise_aware_logistic_grad, sigmoid};
use drybell_features::SparseVector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which update rule the trainer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LrAlgorithm {
    /// FTRL-Proximal with per-coordinate learning rates (the paper's
    /// optimizer).
    FtrlProximal,
    /// Plain SGD with a fixed step size — the ablation baseline showing
    /// why production systems prefer FTRL on sparse features.
    Sgd,
}

/// FTRL-Proximal hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FtrlConfig {
    /// Initial step size `α`. The paper uses 0.2.
    pub alpha: f64,
    /// Smoothing `β` in the per-coordinate learning rate.
    pub beta: f64,
    /// L1 regularization strength `λ₁`.
    pub l1: f64,
    /// L2 regularization strength `λ₂`.
    pub l2: f64,
    /// Number of mini-batch iterations. The paper uses 10K (topic task)
    /// and 100K (product task).
    pub iterations: usize,
    /// Mini-batch size; 64 throughout the paper.
    pub batch_size: usize,
    /// RNG seed for example order.
    pub seed: u64,
    /// Update rule (FTRL-Proximal by default).
    pub algorithm: LrAlgorithm,
}

impl Default for FtrlConfig {
    fn default() -> FtrlConfig {
        FtrlConfig {
            alpha: 0.2,
            beta: 1.0,
            l1: 1e-6,
            l2: 1e-6,
            iterations: 10_000,
            batch_size: 64,
            seed: 0,
            algorithm: LrAlgorithm::FtrlProximal,
        }
    }
}

/// A trained (or in-training) sparse logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// FTRL accumulated gradients `z`.
    z: Vec<f64>,
    /// FTRL squared-gradient sums `n`.
    n: Vec<f64>,
    /// Bias handled as its own coordinate (always present).
    z_bias: f64,
    n_bias: f64,
    cfg: FtrlConfig,
    dims: usize,
}

impl LogisticRegression {
    /// Create an untrained model over `dims` hashed feature dimensions.
    pub fn new(dims: usize, cfg: FtrlConfig) -> LogisticRegression {
        LogisticRegression {
            z: vec![0.0; dims],
            n: vec![0.0; dims],
            z_bias: 0.0,
            n_bias: 0.0,
            cfg,
            dims,
        }
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The lazily-materialized weight of coordinate `i`.
    #[inline]
    fn weight_at(&self, z: f64, n: f64) -> f64 {
        if self.cfg.algorithm == LrAlgorithm::Sgd {
            // In SGD mode `z` stores the weight directly.
            return z;
        }
        if z.abs() <= self.cfg.l1 {
            0.0
        } else {
            let sign = z.signum();
            -(z - sign * self.cfg.l1) / ((self.cfg.beta + n.sqrt()) / self.cfg.alpha + self.cfg.l2)
        }
    }

    /// Materialized weight of feature `i` (0 for out-of-range indices).
    pub fn weight(&self, i: usize) -> f64 {
        if i >= self.dims {
            return 0.0;
        }
        self.weight_at(self.z[i], self.n[i])
    }

    /// The bias weight.
    pub fn bias(&self) -> f64 {
        self.weight_at(self.z_bias, self.n_bias)
    }

    /// Number of non-zero materialized weights (L1 sparsity diagnostic).
    pub fn nnz_weights(&self) -> usize {
        (0..self.dims).filter(|&i| self.weight(i) != 0.0).count()
    }

    /// Raw decision score `w·x + b`.
    pub fn score(&self, x: &SparseVector) -> f64 {
        let mut s = self.bias();
        for &(i, v) in x.entries() {
            s += self.weight(i as usize) * v;
        }
        s
    }

    /// Predicted `P(y = +1 | x)`.
    pub fn predict_proba(&self, x: &SparseVector) -> f64 {
        sigmoid(self.score(x))
    }

    /// Predicted probabilities for a slice of examples.
    pub fn predict_all(&self, xs: &[SparseVector]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// One FTRL update from example `(x, p)` with soft target `p`.
    fn update_one(&mut self, x: &SparseVector, target: f64) {
        let g_base = noise_aware_logistic_grad(self.score(x), target);
        if self.cfg.algorithm == LrAlgorithm::Sgd {
            self.z_bias -= self.cfg.alpha * g_base;
            for &(i, v) in x.entries() {
                let i = i as usize;
                if i < self.dims {
                    self.z[i] -= self.cfg.alpha * (g_base * v + self.cfg.l2 * self.z[i]);
                }
            }
            return;
        }
        // Bias coordinate (feature value 1).
        let g = g_base;
        let sigma = ((self.n_bias + g * g).sqrt() - self.n_bias.sqrt()) / self.cfg.alpha;
        self.z_bias += g - sigma * self.weight_at(self.z_bias, self.n_bias);
        self.n_bias += g * g;
        for &(i, v) in x.entries() {
            let i = i as usize;
            if i >= self.dims {
                continue;
            }
            let g = g_base * v;
            let w = self.weight_at(self.z[i], self.n[i]);
            let sigma = ((self.n[i] + g * g).sqrt() - self.n[i].sqrt()) / self.cfg.alpha;
            self.z[i] += g - sigma * w;
            self.n[i] += g * g;
        }
    }

    /// Train on `(features, soft target)` pairs for the configured number
    /// of mini-batch iterations. Targets in `[0, 1]` may be hard labels or
    /// the generative model's probabilistic labels (noise-aware loss).
    ///
    /// Returns [`MlError::EmptyDataset`] on empty input (this used to
    /// `assert!`, aborting the calling worker).
    pub fn fit(&mut self, examples: &[(SparseVector, f64)]) -> Result<(), MlError> {
        if examples.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        for _ in 0..self.cfg.iterations {
            for _ in 0..self.cfg.batch_size {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                }
                let (x, p) = &examples[order[cursor]];
                cursor += 1;
                self.update_one(x, *p);
            }
        }
        Ok(())
    }

    /// Start scoring a batch of examples against this model, memoizing
    /// materialized weights in `cache`.
    ///
    /// FTRL materializes `w_i` from `(z_i, n_i)` on every access — a
    /// `signum`/`sqrt`/divide per touched coordinate per example. A
    /// batch touches the same hot coordinates repeatedly (hashed text
    /// features collide onto a small working set), so the returned
    /// [`BatchScorer`] computes each coordinate's weight at most once
    /// per batch and reuses it. Scores are **bit-identical** to
    /// [`LogisticRegression::score`]: `weight_at` is a pure function of
    /// `(z, n)` and the per-example accumulation order is unchanged.
    pub fn batch_scorer<'a>(&'a self, cache: &'a mut WeightCache) -> BatchScorer<'a> {
        cache.begin(self.dims);
        BatchScorer {
            bias: self.bias(),
            model: self,
            cache,
        }
    }

    /// Mean noise-aware logistic loss over a dataset.
    pub fn mean_loss(&self, examples: &[(SparseVector, f64)]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let total: f64 = examples
            .iter()
            .map(|(x, p)| crate::loss::noise_aware_logistic_loss(self.score(x), *p))
            .sum();
        total / examples.len() as f64
    }
}

/// Reusable weight-memoization scratch for [`LogisticRegression::batch_scorer`].
///
/// Holds one materialized-weight slot and one generation stamp per
/// coordinate; `begin` bumps the generation instead of clearing, so
/// starting a new batch is O(1) once the buffers are sized. Allocate
/// once per worker and reuse across batches — `begin` only reallocates
/// when the model dimensionality changes.
#[derive(Debug, Default, Clone)]
pub struct WeightCache {
    w: Vec<f64>,
    stamp: Vec<u64>,
    gen: u64,
}

impl WeightCache {
    /// Size the buffers for a `dims`-coordinate model and invalidate
    /// every memoized weight by bumping the generation stamp.
    fn begin(&mut self, dims: usize) {
        if self.w.len() != dims {
            self.w.clear();
            self.stamp.clear();
            self.w.resize(dims, 0.0);
            self.stamp.resize(dims, 0);
            self.gen = 0;
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrap (2^64 batches): stale stamps could alias
            // the restarted counter, so clear them once.
            for s in &mut self.stamp {
                *s = 0;
            }
            self.gen = 1;
        }
    }
}

/// Scores one batch of examples with per-batch weight memoization.
///
/// Created by [`LogisticRegression::batch_scorer`]; the borrow of the
/// model guarantees weights cannot change mid-batch, so memoized values
/// never go stale.
#[derive(Debug)]
pub struct BatchScorer<'a> {
    model: &'a LogisticRegression,
    bias: f64,
    cache: &'a mut WeightCache,
}

impl BatchScorer<'_> {
    /// Materialized weight of coordinate `i`, computed at most once per
    /// batch (0 for out-of-range indices, matching
    /// [`LogisticRegression::weight`]).
    #[inline]
    fn weight(&mut self, i: usize) -> f64 {
        if i >= self.model.dims {
            return 0.0;
        }
        if self.cache.stamp[i] != self.cache.gen {
            self.cache.stamp[i] = self.cache.gen;
            self.cache.w[i] = self.model.weight_at(self.model.z[i], self.model.n[i]);
        }
        self.cache.w[i]
    }

    /// Raw decision score `w·x + b`, bit-identical to
    /// [`LogisticRegression::score`].
    pub fn score(&mut self, x: &SparseVector) -> f64 {
        let mut s = self.bias;
        for &(i, v) in x.entries() {
            s += self.weight(i as usize) * v;
        }
        s
    }

    /// Predicted `P(y = +1 | x)`, bit-identical to
    /// [`LogisticRegression::predict_proba`].
    pub fn predict_proba(&mut self, x: &SparseVector) -> f64 {
        sigmoid(self.score(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn hasher() -> drybell_features::FeatureHasher {
        drybell_features::FeatureHasher::new(1 << 12)
    }

    /// Linearly separable two-token dataset.
    fn separable(n: usize, seed: u64) -> Vec<(SparseVector, f64)> {
        let h = hasher();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    (h.bag_of_words(&["good", "signal"]), 1.0)
                } else {
                    (h.bag_of_words(&["bad", "noise"]), 0.0)
                }
            })
            .collect()
    }

    #[test]
    fn learns_separable_data() {
        let data = separable(2000, 1);
        let mut model = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 200,
                ..FtrlConfig::default()
            },
        );
        model.fit(&data).unwrap();
        let h = hasher();
        assert!(model.predict_proba(&h.bag_of_words(&["good", "signal"])) > 0.9);
        assert!(model.predict_proba(&h.bag_of_words(&["bad", "noise"])) < 0.1);
    }

    #[test]
    fn soft_targets_calibrate_probabilities() {
        // All examples share one feature; the target is 0.7 — the learned
        // probability must approach 0.7, not 1.0 (the essence of the
        // noise-aware loss).
        let h = hasher();
        let x = h.bag_of_words(&["only"]);
        let data: Vec<(SparseVector, f64)> = (0..500).map(|_| (x.clone(), 0.7)).collect();
        let mut model = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 300,
                ..FtrlConfig::default()
            },
        );
        model.fit(&data).unwrap();
        let p = model.predict_proba(&x);
        assert!((p - 0.7).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn l1_produces_sparse_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = hasher();
        // Two informative tokens plus many noise tokens.
        let data: Vec<(SparseVector, f64)> = (0..3000)
            .map(|_| {
                let y = rng.gen_bool(0.5);
                let mut toks: Vec<String> = vec![if y { "pos".into() } else { "neg".into() }];
                for _ in 0..5 {
                    toks.push(format!("noise{}", rng.gen_range(0..500)));
                }
                (h.bag_of_words(&toks), if y { 1.0 } else { 0.0 })
            })
            .collect();
        let heavy = {
            let mut m = LogisticRegression::new(
                1 << 12,
                FtrlConfig {
                    iterations: 150,
                    l1: 0.5,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data).unwrap();
            m.nnz_weights()
        };
        let light = {
            let mut m = LogisticRegression::new(
                1 << 12,
                FtrlConfig {
                    iterations: 150,
                    l1: 0.0,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data).unwrap();
            m.nnz_weights()
        };
        assert!(heavy < light, "L1 should prune weights: {heavy} vs {light}");
        // The informative tokens must survive pruning.
        let mut m = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 150,
                l1: 0.5,
                ..FtrlConfig::default()
            },
        );
        m.fit(&data).unwrap();
        assert!(m.weight(h.index("pos") as usize) > 0.0);
        assert!(m.weight(h.index("neg") as usize) < 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let data = separable(1000, 9);
        let model = LogisticRegression::new(1 << 12, FtrlConfig::default());
        let before = model.mean_loss(&data);
        let cfg = FtrlConfig {
            iterations: 100,
            ..FtrlConfig::default()
        };
        let mut model = LogisticRegression::new(1 << 12, cfg);
        model.fit(&data).unwrap();
        let after = model.mean_loss(&data);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let model = LogisticRegression::new(16, FtrlConfig::default());
        let h = hasher();
        assert_eq!(model.predict_proba(&h.bag_of_words(&["x"])), 0.5);
        assert_eq!(model.bias(), 0.0);
        assert_eq!(model.nnz_weights(), 0);
    }

    #[test]
    fn out_of_range_features_are_ignored() {
        let mut model = LogisticRegression::new(
            4,
            FtrlConfig {
                iterations: 10,
                ..FtrlConfig::default()
            },
        );
        let x = SparseVector::from_pairs(vec![(2, 1.0), (100, 5.0)]);
        model.fit(&[(x.clone(), 1.0)]).unwrap();
        assert_eq!(model.weight(100), 0.0);
        assert!(model.predict_proba(&x).is_finite());
    }

    #[test]
    fn empty_fit_is_a_typed_error_not_a_panic() {
        let mut model = LogisticRegression::new(4, FtrlConfig::default());
        assert_eq!(model.fit(&[]), Err(MlError::EmptyDataset));
        // The failed fit must leave the model untouched and usable.
        assert_eq!(model.bias(), 0.0);
        assert_eq!(model.nnz_weights(), 0);
    }

    #[test]
    fn sgd_mode_learns_separable_data() {
        let data = separable(2000, 21);
        let mut model = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 300,
                alpha: 0.1,
                algorithm: LrAlgorithm::Sgd,
                ..FtrlConfig::default()
            },
        );
        model.fit(&data).unwrap();
        let h = hasher();
        assert!(model.predict_proba(&h.bag_of_words(&["good", "signal"])) > 0.85);
        assert!(model.predict_proba(&h.bag_of_words(&["bad", "noise"])) < 0.15);
    }

    #[test]
    fn ftrl_produces_sparser_models_than_sgd() {
        // FTRL-Proximal's L1 drives untouched and noise coordinates to
        // exact zero; plain SGD leaves a dense trail of tiny weights.
        // This is the operational reason production systems (and the
        // paper) use FTRL for hashed-feature models.
        let h = hasher();
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<(SparseVector, f64)> = (0..3000)
            .map(|_| {
                let y = rng.gen_bool(0.5);
                let mut toks: Vec<String> = vec![if y { "pos".into() } else { "neg".into() }];
                for _ in 0..6 {
                    toks.push(format!("noise{}", rng.gen_range(0..800)));
                }
                (h.bag_of_words(&toks), if y { 1.0 } else { 0.0 })
            })
            .collect();
        let train = |alg: LrAlgorithm| {
            let mut m = LogisticRegression::new(
                1 << 12,
                FtrlConfig {
                    iterations: 150,
                    l1: 4.0,
                    algorithm: alg,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data).unwrap();
            m
        };
        let ftrl = train(LrAlgorithm::FtrlProximal);
        let sgd = train(LrAlgorithm::Sgd);
        assert!(
            ftrl.nnz_weights() * 2 < sgd.nnz_weights(),
            "FTRL {} non-zeros should be far sparser than SGD {}",
            ftrl.nnz_weights(),
            sgd.nnz_weights()
        );
        // Both still learn the informative tokens.
        assert!(ftrl.predict_proba(&h.bag_of_words(&["pos"])) > 0.6);
        assert!(sgd.predict_proba(&h.bag_of_words(&["pos"])) > 0.6);
    }

    #[test]
    fn batch_scoring_is_bit_identical_to_one_at_a_time() {
        let data = separable(2000, 11);
        let mut model = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 200,
                ..FtrlConfig::default()
            },
        );
        model.fit(&data).unwrap();
        let inputs: Vec<&SparseVector> = data.iter().map(|(x, _)| x).collect();
        let mut cache = WeightCache::default();
        let mut scorer = model.batch_scorer(&mut cache);
        for x in &inputs {
            assert_eq!(
                scorer.predict_proba(x).to_bits(),
                model.predict_proba(x).to_bits()
            );
        }
    }

    #[test]
    fn weight_cache_is_reusable_across_models_and_dims() {
        let data = separable(500, 13);
        let mut small = LogisticRegression::new(
            1 << 10,
            FtrlConfig {
                iterations: 50,
                ..FtrlConfig::default()
            },
        );
        let mut big = LogisticRegression::new(
            1 << 12,
            FtrlConfig {
                iterations: 50,
                ..FtrlConfig::default()
            },
        );
        small.fit(&data).unwrap();
        big.fit(&data).unwrap();
        let h = hasher();
        let x = h.bag_of_words(&["good", "signal"]);
        let mut cache = WeightCache::default();
        // Alternate models/dims through one cache: `begin` must resize
        // and invalidate so no stale weight leaks across batches.
        for _ in 0..3 {
            let got = small.batch_scorer(&mut cache).predict_proba(&x);
            assert_eq!(got.to_bits(), small.predict_proba(&x).to_bits());
            let got = big.batch_scorer(&mut cache).predict_proba(&x);
            assert_eq!(got.to_bits(), big.predict_proba(&x).to_bits());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = separable(500, 5);
        let train = |seed| {
            let mut m = LogisticRegression::new(
                1 << 12,
                FtrlConfig {
                    iterations: 50,
                    seed,
                    ..FtrlConfig::default()
                },
            );
            m.fit(&data).unwrap();
            let h = hasher();
            m.predict_proba(&h.bag_of_words(&["good", "signal"]))
        };
        assert_eq!(train(7), train(7));
    }
}
