//! Threshold-free ranking and calibration metrics.
//!
//! The paper's Table 2 reports threshold-0.5 P/R/F1; its §6.4 discussion
//! of score *distributions* (Figure 6) and review budgets implicitly
//! relies on ranking quality and calibration. These metrics quantify
//! both: average precision (PR-AUC), ROC-AUC, precision@k, and expected
//! calibration error.

/// Indices `0..n` sorted by descending score (ties keep input order).
fn ranked_indices(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Average precision (area under the precision-recall curve, computed as
/// the mean of precision@rank over positive ranks). Returns 0 when there
/// are no positives.
pub fn average_precision(scores: &[f64], gold: &[bool]) -> f64 {
    assert_eq!(scores.len(), gold.len(), "length mismatch");
    let total_pos = gold.iter().filter(|&&g| g).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut hits = 0u64;
    let mut sum = 0.0;
    for (rank, &i) in ranked_indices(scores).iter().enumerate() {
        if gold[i] {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / total_pos as f64
}

/// ROC-AUC via the rank-sum (Mann–Whitney) statistic; ties get half
/// credit. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], gold: &[bool]) -> f64 {
    assert_eq!(scores.len(), gold.len(), "length mismatch");
    let pos: Vec<f64> = scores
        .iter()
        .zip(gold)
        .filter_map(|(&s, &g)| g.then_some(s))
        .collect();
    let neg: Vec<f64> = scores
        .iter()
        .zip(gold)
        .filter_map(|(&s, &g)| (!g).then_some(s))
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // O(n log n): sort negatives, binary-search each positive.
    let mut sorted_neg = neg.clone();
    sorted_neg.sort_by(f64::total_cmp);
    let mut wins = 0.0;
    for &p in &pos {
        // Count negatives strictly below p and ties.
        let below = sorted_neg.partition_point(|&x| x < p);
        let below_or_eq = sorted_neg.partition_point(|&x| x <= p);
        wins += below as f64 + 0.5 * (below_or_eq - below) as f64;
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// Precision among the `k` highest-scored examples (the fixed review
/// budget of §6.4). Returns 0 for `k == 0`.
pub fn precision_at_k(scores: &[f64], gold: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), gold.len(), "length mismatch");
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked_indices(scores)
        .iter()
        .take(k)
        .filter(|&&i| gold[i])
        .count();
    hits as f64 / k as f64
}

/// Expected calibration error over `bins` equal-width probability bins:
/// the positive-frequency-weighted mean `|mean score − empirical rate|`.
pub fn expected_calibration_error(scores: &[f64], gold: &[bool], bins: usize) -> f64 {
    assert_eq!(scores.len(), gold.len(), "length mismatch");
    assert!(bins > 0, "need at least one bin");
    if scores.is_empty() {
        return 0.0;
    }
    let mut count = vec![0u64; bins];
    let mut sum_score = vec![0.0f64; bins];
    let mut sum_pos = vec![0u64; bins];
    for (&s, &g) in scores.iter().zip(gold) {
        let b = ((s * bins as f64) as usize).min(bins - 1);
        count[b] += 1;
        sum_score[b] += s;
        sum_pos[b] += u64::from(g);
    }
    let n = scores.len() as f64;
    (0..bins)
        .filter(|&b| count[b] > 0)
        .map(|b| {
            let conf = sum_score[b] / count[b] as f64;
            let acc = sum_pos[b] as f64 / count[b] as f64;
            (count[b] as f64 / n) * (conf - acc).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let gold = [true, true, false, false];
        assert!((average_precision(&scores, &gold) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&scores, &gold) - 1.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scores, &gold, 2), 1.0);
    }

    #[test]
    fn inverted_ranking() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let gold = [true, true, false, false];
        assert!((roc_auc(&scores, &gold) - 0.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scores, &gold, 2), 0.0);
    }

    #[test]
    fn known_average_precision() {
        // Ranked gold pattern: [+, -, +] → AP = (1/1 + 2/3) / 2.
        let scores = [0.9, 0.5, 0.2];
        let gold = [true, false, true];
        let want = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision(&scores, &gold) - want).abs() < 1e-12);
    }

    #[test]
    fn ties_get_half_credit_in_auc() {
        let scores = [0.5, 0.5];
        let gold = [true, false];
        assert!((roc_auc(&scores, &gold) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(average_precision(&[0.5], &[false]), 0.0);
        assert_eq!(roc_auc(&[0.5], &[true]), 0.5);
        assert_eq!(precision_at_k(&[0.5], &[true], 0), 0.0);
        assert_eq!(expected_calibration_error(&[], &[], 10), 0.0);
    }

    #[test]
    fn calibration_of_perfect_and_awful_scores() {
        // Perfectly calibrated: scores equal empirical rates per bin.
        let scores: Vec<f64> = (0..1000).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let gold: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        assert!(expected_calibration_error(&scores, &gold, 10) < 1e-9);
        // Confidently wrong: ECE near 1.
        let gold_flipped: Vec<bool> = gold.iter().map(|g| !g).collect();
        assert!(expected_calibration_error(&scores, &gold_flipped, 10) > 0.99);
    }

    proptest! {
        #[test]
        fn prop_metrics_bounded(
            data in proptest::collection::vec((0.0..=1.0f64, any::<bool>()), 1..200),
            k in 0usize..50,
        ) {
            let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
            let gold: Vec<bool> = data.iter().map(|&(_, g)| g).collect();
            for v in [
                average_precision(&scores, &gold),
                roc_auc(&scores, &gold),
                precision_at_k(&scores, &gold, k),
                expected_calibration_error(&scores, &gold, 10),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }

        #[test]
        fn prop_auc_is_flip_symmetric(
            data in proptest::collection::vec((0.0..=1.0f64, any::<bool>()), 2..100),
        ) {
            let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
            let gold: Vec<bool> = data.iter().map(|&(_, g)| g).collect();
            let flipped: Vec<f64> = scores.iter().map(|s| 1.0 - s).collect();
            let inv_gold: Vec<bool> = gold.iter().map(|g| !g).collect();
            let a = roc_auc(&scores, &gold);
            let b = roc_auc(&flipped, &inv_gold);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
