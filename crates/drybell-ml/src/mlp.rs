//! A small feed-forward network (the "DNN" of the real-time events task).
//!
//! §6.4 trains "a deep neural network over the servable features" from the
//! probabilistic labels. This is a dense-input MLP with ReLU hidden layers
//! and a single sigmoid output, trained with Adam on the noise-aware
//! logistic loss. Implemented from scratch (manual backprop) because the
//! reproduction environment has no deep-learning framework — and none is
//! needed at this scale.

use crate::error::MlError;
use crate::loss::{noise_aware_logistic_grad, noise_aware_logistic_loss, sigmoid};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Network and training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[32, 16]`.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f64,
    /// Number of mini-batch steps.
    pub iterations: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub l2: f64,
    /// Seed for init and batch order.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            hidden: vec![32, 16],
            lr: 1e-2,
            iterations: 2000,
            batch_size: 64,
            l2: 1e-5,
            seed: 0,
        }
    }
}

/// One dense layer's parameters and Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    /// Row-major `out × in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Layer {
        // He initialization for ReLU nets.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.n_out);
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut s = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                s += wi * xi;
            }
            out.push(s);
        }
    }
}

/// Reusable forward-pass buffers for allocation-free scoring via
/// [`Mlp::try_score_into`]. Create one per scoring thread/handle; the
/// buffers grow to the widest layer on first use and are reused after.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

/// The multi-layer perceptron.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
    cfg: MlpConfig,
    input_dim: usize,
    adam_t: u64,
}

impl Mlp {
    /// Create an untrained network for `input_dim` dense features.
    pub fn new(input_dim: usize, cfg: MlpConfig) -> Mlp {
        assert!(input_dim > 0, "input dimension must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Mlp {
            layers,
            cfg,
            input_dim,
            adam_t: 0,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Raw pre-sigmoid score. Panics on an input-width mismatch and
    /// allocates fresh buffers per call; serving-path callers that need
    /// neither should use [`Mlp::try_score_into`] with a reused
    /// [`MlpScratch`].
    pub fn score(&self, x: &[f64]) -> f64 {
        let mut scratch = MlpScratch::default();
        match self.try_score_into(x, &mut scratch) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Raw pre-sigmoid score without panicking or allocating: the
    /// forward pass runs entirely in `scratch`'s buffers (which size
    /// themselves on first use and are reused afterwards), and a wrong
    /// input width is a typed [`MlError::DimensionMismatch`] instead of
    /// an assert. This is the serving hot path's entry point.
    pub fn try_score_into(&self, x: &[f64], scratch: &mut MlpScratch) -> Result<f64, MlError> {
        if x.len() != self.input_dim {
            return Err(MlError::DimensionMismatch {
                expected: self.input_dim,
                got: x.len(),
            });
        }
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&scratch.cur, &mut scratch.next);
            if li + 1 < self.layers.len() {
                for v in scratch.next.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        // Construction pins the output layer at width 1.
        Ok(scratch.cur.first().copied().unwrap_or(0.0))
    }

    /// Predicted `P(y = +1 | x)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.score(x))
    }

    /// Predicted `P(y = +1 | x)` without panicking or allocating; see
    /// [`Mlp::try_score_into`].
    pub fn try_predict_proba(&self, x: &[f64], scratch: &mut MlpScratch) -> Result<f64, MlError> {
        Ok(sigmoid(self.try_score_into(x, scratch)?))
    }

    /// Predicted probabilities for many inputs.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Mean noise-aware loss over a dataset.
    pub fn mean_loss(&self, data: &[(Vec<f64>, f64)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter()
            .map(|(x, p)| noise_aware_logistic_loss(self.score(x), *p))
            .sum::<f64>()
            / data.len() as f64
    }

    /// Forward pass keeping post-activation values per layer, then
    /// backprop one example's gradient into `grads` (same shapes as the
    /// layers' `w`/`b`).
    fn accumulate_grad(&self, x: &[f64], target: f64, grads: &mut [(Vec<f64>, Vec<f64>)]) -> f64 {
        // Forward with cached activations: acts[0] = input, acts[l+1] =
        // activation after layer l (ReLU for hidden, identity for output).
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(&acts[li], &mut out);
            if li + 1 < self.layers.len() {
                for v in out.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            acts.push(out);
        }
        let score = acts[self.layers.len()][0];
        let loss = noise_aware_logistic_loss(score, target);
        // Backward.
        let mut delta = vec![noise_aware_logistic_grad(score, target)];
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            let (gw, gb) = &mut grads[li];
            for (o, &d) in delta.iter().enumerate() {
                gb[o] += d;
                let row = &mut gw[o * layer.n_in..(o + 1) * layer.n_in];
                for (g, &xi) in row.iter_mut().zip(input) {
                    *g += d * xi;
                }
            }
            if li > 0 {
                // Propagate through weights and the ReLU of the previous
                // layer (derivative 1 where the activation is positive).
                let mut prev = vec![0.0; layer.n_in];
                for (o, &d) in delta.iter().enumerate() {
                    let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                    for (p, &wi) in prev.iter_mut().zip(row) {
                        *p += d * wi;
                    }
                }
                for (p, &a) in prev.iter_mut().zip(&acts[li]) {
                    if a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
        loss
    }

    /// Train on `(dense features, soft target)` pairs with Adam.
    ///
    /// Panics if `data` is empty or any input has the wrong dimension.
    pub fn fit(&mut self, data: &[(Vec<f64>, f64)]) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        for (x, _) in data {
            assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut grads: Vec<(Vec<f64>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
            .collect();
        for _ in 0..self.cfg.iterations {
            for (gw, gb) in grads.iter_mut() {
                gw.iter_mut().for_each(|g| *g = 0.0);
                gb.iter_mut().for_each(|g| *g = 0.0);
            }
            let bsz = self.cfg.batch_size.min(data.len());
            for _ in 0..bsz {
                if cursor == order.len() {
                    order.shuffle(&mut rng);
                    cursor = 0;
                }
                let (x, p) = &data[order[cursor]];
                cursor += 1;
                self.accumulate_grad(x, *p, &mut grads);
            }
            self.adam_t += 1;
            let bc1 = 1.0 - beta1.powi(self.adam_t as i32);
            let bc2 = 1.0 - beta2.powi(self.adam_t as i32);
            let scale = 1.0 / bsz as f64;
            #[allow(clippy::needless_range_loop)] // i indexes four parallel arrays
            for (layer, (gw, gb)) in self.layers.iter_mut().zip(&grads) {
                for i in 0..layer.w.len() {
                    let g = gw[i] * scale + self.cfg.l2 * layer.w[i];
                    layer.mw[i] = beta1 * layer.mw[i] + (1.0 - beta1) * g;
                    layer.vw[i] = beta2 * layer.vw[i] + (1.0 - beta2) * g * g;
                    layer.w[i] -=
                        self.cfg.lr * (layer.mw[i] / bc1) / ((layer.vw[i] / bc2).sqrt() + eps);
                }
                for i in 0..layer.b.len() {
                    let g = gb[i] * scale;
                    layer.mb[i] = beta1 * layer.mb[i] + (1.0 - beta1) * g;
                    layer.vb[i] = beta2 * layer.vb[i] + (1.0 - beta2) * g * g;
                    layer.b[i] -=
                        self.cfg.lr * (layer.mb[i] / bc1) / ((layer.vb[i] / bc2).sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor() {
        // The classic non-linear task a linear model cannot solve.
        let data: Vec<(Vec<f64>, f64)> = vec![
            (vec![0.0, 0.0], 0.0),
            (vec![0.0, 1.0], 1.0),
            (vec![1.0, 0.0], 1.0),
            (vec![1.0, 1.0], 0.0),
        ];
        let mut net = Mlp::new(
            2,
            MlpConfig {
                hidden: vec![8],
                iterations: 3000,
                lr: 0.02,
                batch_size: 4,
                seed: 2,
                ..MlpConfig::default()
            },
        );
        net.fit(&data);
        for (x, y) in &data {
            let p = net.predict_proba(x);
            assert!(
                (p - y).abs() < 0.2,
                "XOR({:?}) predicted {p:.3}, want {y}",
                x
            );
        }
    }

    #[test]
    fn soft_targets_calibrate() {
        let data: Vec<(Vec<f64>, f64)> = (0..200).map(|_| (vec![1.0], 0.3)).collect();
        let mut net = Mlp::new(
            1,
            MlpConfig {
                hidden: vec![4],
                iterations: 1500,
                ..MlpConfig::default()
            },
        );
        net.fit(&data);
        let p = net.predict_proba(&[1.0]);
        assert!((p - 0.3).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn training_reduces_loss() {
        let data: Vec<(Vec<f64>, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 100.0;
                (vec![x, 1.0 - x], if x > 0.5 { 1.0 } else { 0.0 })
            })
            .collect();
        let mut net = Mlp::new(
            2,
            MlpConfig {
                iterations: 500,
                ..MlpConfig::default()
            },
        );
        let before = net.mean_loss(&data);
        net.fit(&data);
        assert!(net.mean_loss(&data) < before);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let cfg = MlpConfig {
            hidden: vec![3],
            seed: 11,
            ..MlpConfig::default()
        };
        let mut net = Mlp::new(2, cfg);
        let x = vec![0.4, -0.7];
        let target = 0.8;
        let mut grads: Vec<(Vec<f64>, Vec<f64>)> = net
            .layers
            .iter()
            .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
            .collect();
        net.accumulate_grad(&x, target, &mut grads);
        let h = 1e-6;
        #[allow(clippy::needless_range_loop)] // li indexes both net and grads
        for li in 0..net.layers.len() {
            for wi in 0..net.layers[li].w.len() {
                let orig = net.layers[li].w[wi];
                net.layers[li].w[wi] = orig + h;
                let lp = noise_aware_logistic_loss(net.score(&x), target);
                net.layers[li].w[wi] = orig - h;
                let lm = noise_aware_logistic_loss(net.score(&x), target);
                net.layers[li].w[wi] = orig;
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (grads[li].0[wi] - fd).abs() < 1e-5,
                    "layer {li} w[{wi}]: {} vs {fd}",
                    grads[li].0[wi]
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<(Vec<f64>, f64)> = (0..50)
            .map(|i| (vec![(i % 5) as f64], f64::from(u8::from(i % 2 == 0))))
            .collect();
        let run = || {
            let mut net = Mlp::new(
                1,
                MlpConfig {
                    iterations: 100,
                    seed: 3,
                    ..MlpConfig::default()
                },
            );
            net.fit(&data);
            net.predict_proba(&[2.0])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "model expects 3")]
    fn wrong_input_dim_panics() {
        let net = Mlp::new(3, MlpConfig::default());
        let _ = net.score(&[1.0]);
    }

    #[test]
    fn try_score_returns_typed_error_and_matches_score() {
        let net = Mlp::new(3, MlpConfig::default());
        let mut scratch = MlpScratch::default();
        assert_eq!(
            net.try_score_into(&[1.0], &mut scratch),
            Err(MlError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
        let x = [0.3, -1.0, 2.0];
        let s = net.try_score_into(&x, &mut scratch).unwrap();
        assert_eq!(s, net.score(&x));
        // Scratch reuse across widths must not leak state.
        let p = net.try_predict_proba(&x, &mut scratch).unwrap();
        assert_eq!(p, net.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let mut net = Mlp::new(2, MlpConfig::default());
        net.fit(&[]);
    }
}
