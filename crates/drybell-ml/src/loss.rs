//! Noise-aware losses.
//!
//! With probabilistic training labels `Ỹ_i = P(Y_i = +1 | Λ_i)` from the
//! generative model, the discriminative model minimizes the *expected*
//! loss `E_{y∼Ỹ_i}[ℓ(h(x_i), y)]` (§2). For the logistic loss this is
//! simply cross-entropy against the soft target, whose gradient in the
//! score is the familiar `σ(s) − p`.

/// Stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `log(1 + e^x)`, numerically stable.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Noise-aware logistic loss of a raw score `s` against a soft target
/// `p = P(y = +1)`:
///
/// `ℓ = p·log(1+e^{−s}) + (1−p)·log(1+e^{s})`
#[inline]
pub fn noise_aware_logistic_loss(score: f64, target: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&target));
    target * softplus(-score) + (1.0 - target) * softplus(score)
}

/// Gradient of [`noise_aware_logistic_loss`] in the score: `σ(s) − p`.
#[inline]
pub fn noise_aware_logistic_grad(score: f64, target: f64) -> f64 {
    sigmoid(score) - target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_targets_reduce_to_plain_logistic() {
        let s = 0.7;
        // target 1 → log(1+e^{-s}); target 0 → log(1+e^{s}).
        assert!((noise_aware_logistic_loss(s, 1.0) - softplus(-s)).abs() < 1e-12);
        assert!((noise_aware_logistic_loss(s, 0.0) - softplus(s)).abs() < 1e-12);
    }

    #[test]
    fn loss_is_minimized_at_matching_probability() {
        // For target p, the loss over scores is minimized where σ(s) = p.
        let p: f64 = 0.3;
        let s_star = (p / (1.0 - p)).ln();
        let at_min = noise_aware_logistic_loss(s_star, p);
        for ds in [-0.5, -0.1, 0.1, 0.5] {
            assert!(noise_aware_logistic_loss(s_star + ds, p) > at_min);
        }
        assert!(noise_aware_logistic_grad(s_star, p).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let h = 1e-6;
        for (s, p) in [(0.0, 0.5), (2.0, 0.9), (-1.5, 0.2), (0.3, 0.0), (-0.2, 1.0)] {
            let fd = (noise_aware_logistic_loss(s + h, p) - noise_aware_logistic_loss(s - h, p))
                / (2.0 * h);
            assert!(
                (noise_aware_logistic_grad(s, p) - fd).abs() < 1e-6,
                "s={s} p={p}"
            );
        }
    }

    #[test]
    fn stability_at_extreme_scores() {
        assert!(noise_aware_logistic_loss(1000.0, 0.0).is_finite());
        assert!(noise_aware_logistic_loss(-1000.0, 1.0).is_finite());
        assert!(softplus(-800.0) >= 0.0);
        assert!((softplus(800.0) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn soft_target_interpolates() {
        let s = 1.2;
        let l0 = noise_aware_logistic_loss(s, 0.0);
        let l1 = noise_aware_logistic_loss(s, 1.0);
        let lh = noise_aware_logistic_loss(s, 0.25);
        assert!((lh - (0.25 * l1 + 0.75 * l0)).abs() < 1e-12);
    }
}
