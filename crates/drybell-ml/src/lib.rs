//! # drybell-ml
//!
//! Discriminative models and evaluation — the stand-in for TFX (§5.3).
//!
//! * [`logreg`] — sparse logistic regression trained with the
//!   **FTRL-Proximal** optimizer of McMahan et al. (KDD 2013), "a variant
//!   of stochastic gradient descent that tunes per-coordinate learning
//!   rates", which §6.1 names as the trainer for both content tasks
//!   (initial step 0.2, batch size 64).
//! * [`mlp`] — a small feed-forward network with ReLU hidden layers, used
//!   for the real-time events application (§6.4 trains "a deep neural
//!   network over the servable features").
//! * [`loss`] — the noise-aware loss: the expected loss under the
//!   probabilistic labels `Ỹ`, which for logistic loss is cross-entropy
//!   against soft targets.
//! * [`metrics`] — precision/recall/F1, score histograms (Figure 6), and
//!   the relative-to-baseline normalization the paper reports.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod logreg;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod ranking;

pub use error::MlError;
pub use logreg::{BatchScorer, FtrlConfig, LogisticRegression, LrAlgorithm, WeightCache};
pub use metrics::{score_histogram, BinaryMetrics, RelativeMetrics};
pub use mlp::{Mlp, MlpConfig, MlpScratch};
pub use ranking::{average_precision, expected_calibration_error, precision_at_k, roc_auc};
