//! The reference commerce knowledge graph.
//!
//! Models the paper's product-classification setting (§3.2): a category of
//! interest — *photography* — that was "expanded to include many types of
//! accessories and parts", sibling categories whose accessories are *not*
//! of interest, and alias tables giving "translations of keywords in ten
//! languages". `drybell-datagen` synthesizes product content using exactly
//! these alias strings, so knowledge-graph LFs have true multilingual
//! signal to find.

use crate::{EdgeKind, EntityId, KnowledgeGraph, NodeKind};

/// Language codes in the fixed column order of the translation tables
/// (matching `drybell-nlp`'s `Lang::ALL`).
pub const LANGS: [&str; 10] = ["en", "es", "fr", "de", "it", "pt", "nl", "sv", "pl", "tr"];

/// Translations of the photography-subtree vocabulary. Columns follow
/// [`LANGS`]. ASCII-folded; duplicates across languages are intentional
/// (loanwords) and harmless because they alias the same entity.
pub const PHOTO_TRANSLATIONS: &[(&str, [&str; 10])] = &[
    (
        "camera",
        [
            "camera",
            "camara",
            "appareil",
            "kamera",
            "fotocamera",
            "maquina",
            "fototoestel",
            "systemkamera",
            "aparat",
            "kamerasi",
        ],
    ),
    (
        "lens",
        [
            "lens",
            "lente",
            "objectif",
            "objektiv",
            "obiettivo",
            "objetiva",
            "cameralens",
            "objektivet",
            "obiektyw",
            "mercek",
        ],
    ),
    (
        "tripod",
        [
            "tripod",
            "tripode",
            "trepied",
            "stativ",
            "treppiede",
            "tripe",
            "statief",
            "stativet",
            "statyw",
            "sehpa",
        ],
    ),
    (
        "flash",
        [
            "flash",
            "destello",
            "eclair",
            "blitz",
            "lampeggiatore",
            "flashe",
            "flits",
            "blixt",
            "lampa",
            "flas",
        ],
    ),
    (
        "battery",
        [
            "battery",
            "bateria",
            "batterie",
            "akku",
            "batteria",
            "pilha",
            "accu",
            "batteri",
            "akumulator",
            "pil",
        ],
    ),
    (
        "charger",
        [
            "charger",
            "cargador",
            "chargeur",
            "ladegeraet",
            "caricatore",
            "carregador",
            "oplader",
            "laddare",
            "ladowarka",
            "sarj",
        ],
    ),
    (
        "filter",
        [
            "filter",
            "filtro",
            "filtre",
            "lichtfilter",
            "filtrante",
            "filtragem",
            "kleurfilter",
            "filtret",
            "filtr",
            "filtresi",
        ],
    ),
    (
        "strap",
        [
            "strap", "correa", "sangle", "gurt", "cinghia", "alca", "riem", "rem", "pasek", "kayis",
        ],
    ),
    (
        "drone",
        [
            "drone",
            "dron",
            "quadricoptere",
            "drohne",
            "quadricottero",
            "quadricoptero",
            "quadcopter",
            "dronare",
            "kwadrokopter",
            "insansiz",
        ],
    ),
    (
        "gimbal",
        [
            "gimbal",
            "estabilizador",
            "stabilisateur",
            "stabilisator",
            "stabilizzatore",
            "giroscopio",
            "cardanus",
            "stabilisator-sv",
            "stabilizator",
            "yalpa",
        ],
    ),
];

/// Translations of accessories that are *not* in the category of interest
/// (used by negative-keyword LFs).
pub const OTHER_TRANSLATIONS: &[(&str, [&str; 10])] = &[
    (
        "headphones",
        [
            "headphones",
            "auriculares",
            "casque",
            "kopfhoerer",
            "cuffie",
            "fones",
            "koptelefoon",
            "horlurar",
            "sluchawki",
            "kulaklik",
        ],
    ),
    (
        "speaker",
        [
            "speaker",
            "altavoz",
            "enceinte",
            "lautsprecher",
            "altoparlante",
            "caixa",
            "luidspreker",
            "hogtalare",
            "glosnik",
            "hoparlor",
        ],
    ),
    (
        "keyboard",
        [
            "keyboard",
            "teclado",
            "clavier",
            "tastatur",
            "tastiera",
            "tecladinho",
            "toetsenbord",
            "tangentbord",
            "klawiatura",
            "klavye",
        ],
    ),
];

/// The built commerce graph with handles to its key nodes.
#[derive(Debug, Clone)]
pub struct CommerceGraph {
    /// The underlying graph.
    pub graph: KnowledgeGraph,
    /// Root category.
    pub electronics: EntityId,
    /// The category of interest (§3.2), including accessories and parts.
    pub photography: EntityId,
    /// Camera bodies / drones subcategory.
    pub cameras: EntityId,
    /// Photography accessories subcategory (in the expanded category of
    /// interest).
    pub camera_accessories: EntityId,
    /// Sibling category whose members are negatives.
    pub mobile: EntityId,
    /// Sibling category whose members are negatives.
    pub computing: EntityId,
    /// Audio accessories — accessories *outside* the category of interest.
    pub audio_accessories: EntityId,
}

impl CommerceGraph {
    /// `true` if the alias (in any language) names a member of the
    /// photography subtree — the core positive-keyword LF query.
    pub fn alias_in_photography(&self, term: &str) -> bool {
        match self.graph.resolve_alias(term) {
            Some((_, id)) => self.graph.in_category_subtree(id, self.photography),
            None => false,
        }
    }

    /// `true` if the alias names an accessory outside photography — the
    /// negative-keyword LF query ("other accessories not of interest").
    pub fn alias_is_foreign_accessory(&self, term: &str) -> bool {
        match self.graph.resolve_alias(term) {
            Some((_, id)) => {
                self.graph.entity(id).kind == NodeKind::Accessory
                    && !self.graph.in_category_subtree(id, self.photography)
            }
            None => false,
        }
    }
}

/// Build the reference commerce graph.
pub fn commerce_graph() -> CommerceGraph {
    let mut g = KnowledgeGraph::new();
    let electronics = g
        .add_entity("electronics", NodeKind::Category)
        .expect("fresh");
    let photography = g
        .add_entity("photography", NodeKind::Category)
        .expect("fresh");
    let cameras = g.add_entity("cameras", NodeKind::Category).expect("fresh");
    let camera_accessories = g
        .add_entity("camera-accessories", NodeKind::Category)
        .expect("fresh");
    let mobile = g.add_entity("mobile", NodeKind::Category).expect("fresh");
    let computing = g
        .add_entity("computing", NodeKind::Category)
        .expect("fresh");
    let audio_accessories = g
        .add_entity("audio-accessories", NodeKind::Category)
        .expect("fresh");

    g.add_edge(photography, EdgeKind::Subcategory, electronics);
    g.add_edge(cameras, EdgeKind::Subcategory, photography);
    g.add_edge(camera_accessories, EdgeKind::Subcategory, photography);
    g.add_edge(mobile, EdgeKind::Subcategory, electronics);
    g.add_edge(computing, EdgeKind::Subcategory, electronics);
    g.add_edge(audio_accessories, EdgeKind::Subcategory, computing);

    // Photography products and their multilingual aliases.
    let add_with_aliases = |g: &mut KnowledgeGraph,
                            word: &str,
                            table: &[(&str, [&str; 10])],
                            kind: NodeKind,
                            category: EntityId|
     -> EntityId {
        let id = g.add_entity(word, kind).expect("unique product word");
        g.add_edge(id, EdgeKind::InCategory, category);
        if let Some((_, row)) = table.iter().find(|(w, _)| *w == word) {
            for (lang, alias) in LANGS.iter().zip(row.iter()) {
                if *lang != "en" {
                    g.add_alias(id, lang, alias);
                }
            }
        }
        id
    };

    let camera = add_with_aliases(
        &mut g,
        "camera",
        PHOTO_TRANSLATIONS,
        NodeKind::Product,
        cameras,
    );
    let drone = add_with_aliases(
        &mut g,
        "drone",
        PHOTO_TRANSLATIONS,
        NodeKind::Product,
        cameras,
    );
    for acc in [
        "lens", "tripod", "flash", "battery", "charger", "filter", "strap", "gimbal",
    ] {
        let id = add_with_aliases(
            &mut g,
            acc,
            PHOTO_TRANSLATIONS,
            NodeKind::Accessory,
            camera_accessories,
        );
        g.add_edge(id, EdgeKind::AccessoryOf, camera);
    }

    // Non-photography products.
    for p in ["phone", "tablet"] {
        let id = g.add_entity(p, NodeKind::Product).expect("unique");
        g.add_edge(id, EdgeKind::InCategory, mobile);
    }
    for p in ["laptop", "monitor", "printer", "router", "console"] {
        let id = g.add_entity(p, NodeKind::Product).expect("unique");
        g.add_edge(id, EdgeKind::InCategory, computing);
    }
    // Accessories outside the category of interest.
    for a in ["headphones", "speaker", "keyboard"] {
        let id = add_with_aliases(
            &mut g,
            a,
            OTHER_TRANSLATIONS,
            NodeKind::Accessory,
            audio_accessories,
        );
        let _ = id;
    }

    // Brands related to photography products (graph-based LF fodder).
    for b in ["acme", "globex", "initech"] {
        let id = g.add_entity(b, NodeKind::Brand).expect("unique");
        g.add_edge(id, EdgeKind::RelatedTo, camera);
        g.add_edge(id, EdgeKind::RelatedTo, drone);
    }

    CommerceGraph {
        graph: g,
        electronics,
        photography,
        cameras,
        camera_accessories,
        mobile,
        computing,
        audio_accessories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photography_subtree_is_the_expanded_category() {
        let cg = commerce_graph();
        // Core product.
        assert!(cg.alias_in_photography("camera"));
        // Accessories and parts are *included* after the strategy change.
        assert!(cg.alias_in_photography("tripod"));
        assert!(cg.alias_in_photography("strap"));
        // Non-photography items are excluded.
        assert!(!cg.alias_in_photography("laptop"));
        assert!(!cg.alias_in_photography("headphones"));
        assert!(!cg.alias_in_photography("nonsense"));
    }

    #[test]
    fn translations_resolve_to_the_same_entity() {
        let cg = commerce_graph();
        for (word, row) in PHOTO_TRANSLATIONS {
            let canonical = cg.graph.lookup(word).unwrap();
            for alias in row {
                let (_, id) = cg
                    .graph
                    .resolve_alias(alias)
                    .unwrap_or_else(|| panic!("alias {alias} of {word} must resolve"));
                assert_eq!(id, canonical, "alias {alias} of {word}");
            }
        }
    }

    #[test]
    fn all_ten_languages_are_covered() {
        let cg = commerce_graph();
        let camera = cg.graph.lookup("camera").unwrap();
        let langs: Vec<&str> = cg
            .graph
            .aliases_of(camera)
            .iter()
            .map(|(l, _)| l.as_str())
            .collect();
        for lang in LANGS {
            assert!(langs.contains(&lang), "missing {lang} alias for camera");
        }
    }

    #[test]
    fn foreign_accessories_are_negative_signals() {
        let cg = commerce_graph();
        assert!(cg.alias_is_foreign_accessory("headphones"));
        assert!(cg.alias_is_foreign_accessory("auriculares"));
        assert!(!cg.alias_is_foreign_accessory("tripod"));
        assert!(!cg.alias_is_foreign_accessory("laptop")); // product, not accessory
    }

    #[test]
    fn multilingual_positive_keywords_work() {
        let cg = commerce_graph();
        // Spanish, German, Polish forms of photography words.
        for alias in ["camara", "objektiv", "statyw", "sehpa", "akumulator"] {
            assert!(cg.alias_in_photography(alias), "{alias}");
        }
    }

    #[test]
    fn brands_connect_to_products() {
        let cg = commerce_graph();
        let acme = cg.graph.lookup("acme").unwrap();
        let reach = cg.graph.within_hops(acme, 1);
        let camera = cg.graph.lookup("camera").unwrap();
        assert!(reach.iter().any(|&(id, d)| id == camera && d == 1));
    }

    #[test]
    fn translation_table_has_no_cross_entity_collisions() {
        // Within the photography table, each alias string must map to one
        // word only (so LF votes are unambiguous).
        let mut seen: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for (word, row) in PHOTO_TRANSLATIONS.iter().chain(OTHER_TRANSLATIONS) {
            for alias in row {
                if let Some(prev) = seen.insert(alias, word) {
                    assert_eq!(prev, *word, "alias {alias} is shared by {prev} and {word}");
                }
            }
        }
    }
}
