//! # drybell-kg
//!
//! A synthetic knowledge graph standing in for Google's Knowledge Graph,
//! which the product-classification labeling functions query "for
//! translations of keywords in ten languages" (§3.2) and for category
//! membership of products and accessories.
//!
//! The graph stores typed entities (products, accessories, categories,
//! brands), typed edges (`InCategory`, `Subcategory`, `AccessoryOf`,
//! `RelatedTo`), and multilingual aliases. [`commerce::commerce_graph`]
//! builds the reference instance used throughout the reproduction: a
//! category tree of electronics with a *photography* subtree (the paper's
//! "category of interest", expanded to include accessories and parts) and
//! alias tables across the ten languages of `drybell-nlp`'s detector.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod commerce;

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Opaque entity identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// What kind of node an entity is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A sellable product ("camera").
    Product,
    /// An accessory or part ("tripod").
    Accessory,
    /// A category node ("photography").
    Category,
    /// A brand ("Acme").
    Brand,
}

/// Typed, directed edge labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Product/accessory → its category.
    InCategory,
    /// Child category → parent category.
    Subcategory,
    /// Accessory → the product it complements.
    AccessoryOf,
    /// Symmetric topical association.
    RelatedTo,
}

/// One entity with its canonical (English) name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// The entity's id.
    pub id: EntityId,
    /// Canonical lowercase English name.
    pub name: String,
    /// Node kind.
    pub kind: NodeKind,
}

/// Errors from graph construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgError {
    /// An entity name was registered twice.
    DuplicateName(String),
    /// An operation referenced an unknown entity.
    UnknownEntity(String),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::DuplicateName(n) => write!(f, "duplicate entity name: {n}"),
            KgError::UnknownEntity(n) => write!(f, "unknown entity: {n}"),
        }
    }
}

impl std::error::Error for KgError {}

/// The in-memory knowledge graph.
///
/// ```
/// use drybell_kg::{EdgeKind, KnowledgeGraph, NodeKind};
/// let mut g = KnowledgeGraph::new();
/// let gear = g.add_entity("camera-gear", NodeKind::Category).unwrap();
/// let cam = g.add_entity("camera", NodeKind::Product).unwrap();
/// g.add_edge(cam, EdgeKind::InCategory, gear);
/// g.add_alias(cam, "es", "camara");
/// assert!(g.in_category_subtree(cam, gear));
/// assert_eq!(g.resolve_alias("camara"), Some(("es", cam)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    entities: Vec<Entity>,
    by_name: HashMap<String, EntityId>,
    /// Adjacency: per entity, outgoing `(edge, target)` pairs.
    edges: Vec<Vec<(EdgeKind, EntityId)>>,
    /// alias (any language) → (language code, entity).
    aliases: HashMap<String, (String, EntityId)>,
    /// entity → all its aliases as (language code, alias).
    alias_index: HashMap<EntityId, Vec<(String, String)>>,
}

impl KnowledgeGraph {
    /// An empty graph.
    pub fn new() -> KnowledgeGraph {
        KnowledgeGraph::default()
    }

    /// Add an entity with a unique canonical name (stored lowercase).
    pub fn add_entity(&mut self, name: &str, kind: NodeKind) -> Result<EntityId, KgError> {
        let name = name.to_lowercase();
        if self.by_name.contains_key(&name) {
            return Err(KgError::DuplicateName(name));
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Entity {
            id,
            name: name.clone(),
            kind,
        });
        self.by_name.insert(name.clone(), id);
        self.edges.push(Vec::new());
        // The canonical name is an English alias of itself.
        self.aliases.insert(name.clone(), ("en".to_owned(), id));
        self.alias_index
            .entry(id)
            .or_default()
            .push(("en".to_owned(), name));
        Ok(id)
    }

    /// Add a directed edge. `RelatedTo` edges are stored symmetrically.
    pub fn add_edge(&mut self, from: EntityId, kind: EdgeKind, to: EntityId) {
        self.edges[from.0 as usize].push((kind, to));
        if kind == EdgeKind::RelatedTo {
            self.edges[to.0 as usize].push((kind, from));
        }
    }

    /// Register a foreign-language alias for an entity. Later
    /// registrations of the same alias string are ignored (first wins),
    /// mirroring how alias tables keep one primary sense.
    pub fn add_alias(&mut self, id: EntityId, lang: &str, alias: &str) {
        let alias = alias.to_lowercase();
        self.aliases
            .entry(alias.clone())
            .or_insert_with(|| (lang.to_owned(), id));
        self.alias_index
            .entry(id)
            .or_default()
            .push((lang.to_owned(), alias));
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// `true` if the graph has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Entity by canonical name (case-insensitive).
    pub fn lookup(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// Entity metadata.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.0 as usize]
    }

    /// Resolve any-language alias to `(language code, entity)` —
    /// the query the multilingual keyword LFs issue per token.
    pub fn resolve_alias(&self, term: &str) -> Option<(&str, EntityId)> {
        self.aliases
            .get(&term.to_lowercase())
            .map(|(lang, id)| (lang.as_str(), *id))
    }

    /// All `(language, alias)` pairs of an entity, including its canonical
    /// English name.
    pub fn aliases_of(&self, id: EntityId) -> &[(String, String)] {
        self.alias_index
            .get(&id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The alias of `name` in language `lang`, if registered.
    pub fn translation(&self, name: &str, lang: &str) -> Option<&str> {
        let id = self.lookup(name)?;
        self.aliases_of(id)
            .iter()
            .find(|(l, _)| l == lang)
            .map(|(_, a)| a.as_str())
    }

    /// Outgoing `(edge, target)` pairs of an entity.
    pub fn neighbors(&self, id: EntityId) -> &[(EdgeKind, EntityId)] {
        &self.edges[id.0 as usize]
    }

    /// `true` if `id` belongs to the category subtree rooted at `root`:
    /// reachable via one `InCategory` edge followed by any number of
    /// `Subcategory` edges.
    pub fn in_category_subtree(&self, id: EntityId, root: EntityId) -> bool {
        let mut frontier: VecDeque<EntityId> = VecDeque::new();
        let mut seen: HashSet<EntityId> = HashSet::new();
        // Seed with the direct categories of `id` (or `id` itself if it is
        // a category).
        if self.entity(id).kind == NodeKind::Category {
            frontier.push_back(id);
        } else {
            for &(kind, to) in self.neighbors(id) {
                if kind == EdgeKind::InCategory {
                    frontier.push_back(to);
                }
            }
        }
        while let Some(cat) = frontier.pop_front() {
            if cat == root {
                return true;
            }
            if !seen.insert(cat) {
                continue;
            }
            for &(kind, to) in self.neighbors(cat) {
                if kind == EdgeKind::Subcategory {
                    frontier.push_back(to);
                }
            }
        }
        false
    }

    /// All products/accessories in the subtree rooted at category `root`.
    pub fn members_of_subtree(&self, root: EntityId) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| {
                matches!(e.kind, NodeKind::Product | NodeKind::Accessory)
                    && self.in_category_subtree(e.id, root)
            })
            .map(|e| e.id)
            .collect()
    }

    /// Breadth-first search: all entities within `max_hops` of `start`
    /// following any edge kind. Used by graph-based LFs over relationship
    /// graphs (§3.3).
    pub fn within_hops(&self, start: EntityId, max_hops: usize) -> Vec<(EntityId, usize)> {
        let mut seen: HashMap<EntityId, usize> = HashMap::new();
        seen.insert(start, 0);
        let mut q = VecDeque::new();
        q.push_back((start, 0usize));
        while let Some((id, d)) = q.pop_front() {
            if d == max_hops {
                continue;
            }
            for &(_, to) in self.neighbors(id) {
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(to) {
                    e.insert(d + 1);
                    q.push_back((to, d + 1));
                }
            }
        }
        // drybell-lint: allow(determinism) — collected into a Vec and sorted on the next line
        let mut out: Vec<(EntityId, usize)> = seen.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (KnowledgeGraph, EntityId, EntityId, EntityId, EntityId) {
        let mut g = KnowledgeGraph::new();
        let root = g.add_entity("electronics", NodeKind::Category).unwrap();
        let photo = g.add_entity("photography", NodeKind::Category).unwrap();
        let cam = g.add_entity("camera", NodeKind::Product).unwrap();
        let case = g.add_entity("phone-case", NodeKind::Accessory).unwrap();
        let mobile = g.add_entity("mobile", NodeKind::Category).unwrap();
        g.add_edge(photo, EdgeKind::Subcategory, root);
        g.add_edge(mobile, EdgeKind::Subcategory, root);
        g.add_edge(cam, EdgeKind::InCategory, photo);
        g.add_edge(case, EdgeKind::InCategory, mobile);
        (g, root, photo, cam, case)
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = KnowledgeGraph::new();
        g.add_entity("Camera", NodeKind::Product).unwrap();
        assert_eq!(
            g.add_entity("camera", NodeKind::Product),
            Err(KgError::DuplicateName("camera".into()))
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let (g, _, _, cam, _) = tiny();
        assert_eq!(g.lookup("CAMERA"), Some(cam));
        assert_eq!(g.lookup("missing"), None);
        assert_eq!(g.entity(cam).kind, NodeKind::Product);
    }

    #[test]
    fn category_subtree_membership() {
        let (g, root, photo, cam, case) = tiny();
        assert!(g.in_category_subtree(cam, photo));
        assert!(g.in_category_subtree(cam, root));
        assert!(!g.in_category_subtree(case, photo));
        assert!(g.in_category_subtree(case, root));
        // A category is in its own subtree.
        assert!(g.in_category_subtree(photo, photo));
    }

    #[test]
    fn subtree_members() {
        let (g, root, photo, cam, case) = tiny();
        assert_eq!(g.members_of_subtree(photo), vec![cam]);
        let mut all = g.members_of_subtree(root);
        all.sort();
        assert_eq!(all, vec![cam, case]);
    }

    #[test]
    fn aliases_resolve_across_languages() {
        let (mut g, _, _, cam, _) = tiny();
        g.add_alias(cam, "es", "Camara");
        g.add_alias(cam, "de", "kamera");
        assert_eq!(g.resolve_alias("camara"), Some(("es", cam)));
        assert_eq!(g.resolve_alias("KAMERA"), Some(("de", cam)));
        assert_eq!(g.resolve_alias("camera"), Some(("en", cam)));
        assert_eq!(g.translation("camera", "es"), Some("camara"));
        assert_eq!(g.translation("camera", "fr"), None);
        assert_eq!(g.aliases_of(cam).len(), 3);
    }

    #[test]
    fn first_alias_registration_wins() {
        let (mut g, _, _, cam, case) = tiny();
        g.add_alias(cam, "es", "equipo");
        g.add_alias(case, "es", "equipo");
        assert_eq!(g.resolve_alias("equipo"), Some(("es", cam)));
    }

    #[test]
    fn related_to_is_symmetric() {
        let (mut g, _, _, cam, case) = tiny();
        g.add_edge(cam, EdgeKind::RelatedTo, case);
        assert!(g
            .neighbors(case)
            .iter()
            .any(|&(k, to)| k == EdgeKind::RelatedTo && to == cam));
    }

    #[test]
    fn bfs_within_hops() {
        let (g, root, photo, cam, _) = tiny();
        let reach = g.within_hops(cam, 2);
        // cam -(InCategory)-> photo -(Subcategory)-> root
        assert!(reach.contains(&(cam, 0)));
        assert!(reach.contains(&(photo, 1)));
        assert!(reach.contains(&(root, 2)));
        let reach1 = g.within_hops(cam, 1);
        assert!(!reach1.iter().any(|&(id, _)| id == root));
    }

    #[test]
    fn cyclic_categories_terminate() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("a", NodeKind::Category).unwrap();
        let b = g.add_entity("b", NodeKind::Category).unwrap();
        let c = g.add_entity("unrelated", NodeKind::Category).unwrap();
        g.add_edge(a, EdgeKind::Subcategory, b);
        g.add_edge(b, EdgeKind::Subcategory, a);
        assert!(g.in_category_subtree(a, b));
        assert!(!g.in_category_subtree(a, c));
    }
}
