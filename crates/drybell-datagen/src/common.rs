//! Shared vocabulary and sampling helpers for the corpus generators.

use drybell_core::vote::Label;
use rand::rngs::StdRng;
use rand::Rng;

/// Topic-neutral filler words mixed into every document so that no single
/// token is a perfect class signal.
pub const FILLER_WORDS: &[&str] = &[
    "the", "a", "an", "of", "and", "to", "in", "for", "with", "on", "that", "this", "was", "are",
    "has", "have", "from", "they", "will", "would", "about", "after", "before", "people", "time",
    "year", "week", "today", "new", "more", "other", "some", "many", "first", "last", "also",
    "just", "into", "over", "under", "while", "where", "when", "which", "their", "them", "said",
    "says", "see", "seen", "made", "make", "still", "even", "back", "down", "well", "through",
    "around", "between", "because", "during", "against", "without", "within",
];

/// Domains whose content skews toward the celebrity topic of interest.
pub const CELEB_DOMAINS: &[&str] = &[
    "starbuzz.example",
    "gossipdaily.example",
    "redcarpet.example",
    "celebwire.example",
];

/// General-purpose domains.
pub const GENERAL_DOMAINS: &[&str] = &[
    "worldnews.example",
    "dailyupdate.example",
    "infohub.example",
    "thepaper.example",
    "netmagazine.example",
    "cityjournal.example",
];

/// Phrase fragments typical of celebrity coverage (used by title-pattern
/// LFs and the positive generator).
pub const CELEB_PATTERNS: &[&str] = &[
    "spotted",
    "dating",
    "red-carpet",
    "paparazzi",
    "breakup",
    "engaged",
    "stuns",
    "reveals",
    "flaunts",
    "sizzles",
];

/// Generic celebrity nouns (deliberately *low-precision* keywords — they
/// also appear in sports and other coverage, so the servable keyword LFs
/// that use them overpredict, as in Table 3).
/// (Disjoint from every topic seed list, so coarse-topic vocabulary does
/// not systematically trip these keywords.)
pub const CELEB_WORDS: &[&str] = &["superstar", "famous", "glamorous", "icon", "idol"];

/// Draw one item uniformly from a slice.
pub fn pick<'a, T: ?Sized>(rng: &mut StdRng, items: &'a [&'a T]) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// Draw a Bernoulli label with `P(positive) = pos_rate`.
pub fn draw_label(rng: &mut StdRng, pos_rate: f64) -> Label {
    if rng.gen_bool(pos_rate) {
        Label::Positive
    } else {
        Label::Negative
    }
}

/// A standard-normal sample (Box–Muller; two uniforms per call).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A full name drawn from the NER gazetteer (capitalized), so the NER
/// model can recognize it.
pub fn person_name(rng: &mut StdRng) -> String {
    let first = pick(rng, drybell_nlp::ner::PERSON_FIRST_NAMES);
    let last = pick(rng, drybell_nlp::ner::PERSON_LAST_NAMES);
    format!("{} {}", capitalize(first), capitalize(last))
}

/// Uppercase the first ASCII letter.
pub fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Split a dataset size into (unlabeled, dev, test) counts scaled by `f`,
/// keeping every split at least 1.
pub fn scaled_counts(unlabeled: usize, dev: usize, test: usize, f: f64) -> (usize, usize, usize) {
    let s = |n: usize| ((n as f64 * f).round() as usize).max(1);
    (s(unlabeled), s(dev), s(test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn person_names_are_recognized_by_ner() {
        let mut rng = StdRng::seed_from_u64(2);
        let tagger = drybell_nlp::NerTagger::new();
        for _ in 0..20 {
            let name = person_name(&mut rng);
            let people = tagger.people(&format!("today {name} arrived"));
            assert!(!people.is_empty(), "NER must find {name}");
        }
    }

    #[test]
    fn capitalize_handles_edge_cases() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("a"), "A");
        assert_eq!(capitalize("alice"), "Alice");
    }

    #[test]
    fn scaled_counts_floor_at_one() {
        assert_eq!(scaled_counts(1000, 100, 100, 0.5), (500, 50, 50));
        assert_eq!(scaled_counts(10, 10, 10, 0.001), (1, 1, 1));
    }

    #[test]
    fn draw_label_respects_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let pos = (0..n)
            .filter(|_| draw_label(&mut rng, 0.1) == Label::Positive)
            .count();
        let rate = pos as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }
}
