//! The topic-classification application (§3.1).
//!
//! A Google product team needs a new classifier for a topic of interest in
//! content; the paper's running example (§5.1) is *celebrity-related
//! content*, which this module adopts. Documents arrive after a coarse
//! keyword-filtering step; 0.86% are positives (Table 1). One engineer
//! writes ten labeling functions pulling on URL heuristics, internal NER
//! models, the coarse semantic categorizer, a web-crawl reputation table,
//! and a related internal classifier.
//!
//! The generator plants ground truth and emits, per document: servable
//! text (title/body/URL) and the *non-servable* offline signals real
//! pipelines attach during data collection (the related-classifier score).
//! LF quality is therefore emergent from the corpus — the LFs read real
//! signals, they are not handed the label.

use crate::common::{
    capitalize, draw_label, gaussian, person_name, pick, scaled_counts, CELEB_DOMAINS,
    CELEB_PATTERNS, CELEB_WORDS, FILLER_WORDS, GENERAL_DOMAINS,
};
use drybell_core::vote::{Label, Vote};
use drybell_dataflow::codec::{self, CodecError, Record};
use drybell_features::{FeatureHasher, SparseVector};
use drybell_lf::executor::TextExtractor;
use drybell_lf::{Lf, LfCategory, LfSet};
use drybell_nlp::topic_model::Topic;
use drybell_nlp::EntityKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// One content document.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicDoc {
    /// Unique id.
    pub id: u64,
    /// Title text (servable).
    pub title: String,
    /// Body text (servable).
    pub body: String,
    /// Source URL (servable).
    pub url: String,
    /// Offline score of an internal classifier built for a *related*
    /// problem, attached during data collection — non-servable (§3.1
    /// "model-based" weak supervision).
    pub related_model_score: f64,
}

impl TopicDoc {
    /// The URL's domain part.
    pub fn domain(&self) -> &str {
        self.url.split('/').nth(2).unwrap_or(&self.url)
    }

    /// Title and body concatenated (the paper's `GetText` example).
    pub fn full_text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }
}

impl Record for TopicDoc {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.id);
        codec::put_string(buf, &self.title);
        codec::put_string(buf, &self.body);
        codec::put_string(buf, &self.url);
        codec::put_f64(buf, self.related_model_score);
    }

    fn decode(buf: &mut &[u8]) -> Result<TopicDoc, CodecError> {
        Ok(TopicDoc {
            id: codec::get_varint(buf)?,
            title: codec::get_string(buf)?,
            body: codec::get_string(buf)?,
            url: codec::get_string(buf)?,
            related_model_score: codec::get_f64(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TopicTaskConfig {
    /// Unlabeled pool size (paper: 684K).
    pub num_unlabeled: usize,
    /// Hand-labeled development set size (paper: 11K).
    pub num_dev: usize,
    /// Test set size (paper: 11K).
    pub num_test: usize,
    /// Positive rate (paper: 0.86%).
    pub pos_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl TopicTaskConfig {
    /// Table 1 preset: 684K unlabeled, 11K dev, 11K test, 0.86% positive.
    pub fn paper() -> TopicTaskConfig {
        TopicTaskConfig {
            num_unlabeled: 684_000,
            num_dev: 11_000,
            num_test: 11_000,
            pos_rate: 0.0086,
            seed: 20190630,
        }
    }

    /// The paper preset with all split sizes scaled by `f`.
    pub fn scaled(f: f64) -> TopicTaskConfig {
        let base = TopicTaskConfig::paper();
        let (u, d, t) = scaled_counts(base.num_unlabeled, base.num_dev, base.num_test, f);
        TopicTaskConfig {
            num_unlabeled: u,
            num_dev: d,
            num_test: t,
            ..base
        }
    }
}

/// The generated task: splits plus the organizational resources the LFs
/// query.
#[derive(Debug, Clone)]
pub struct TopicDataset {
    /// The unlabeled pool (what DryBell weakly supervises).
    pub unlabeled: Vec<TopicDoc>,
    /// Hidden gold for the unlabeled pool — used ONLY by evaluation
    /// harnesses (Figure 5's hand-label sweeps), never by the pipeline.
    pub unlabeled_gold: Vec<Label>,
    /// Development split (labeled; baseline training + LF development).
    pub dev: Vec<TopicDoc>,
    /// Development labels.
    pub dev_gold: Vec<Label>,
    /// Test split.
    pub test: Vec<TopicDoc>,
    /// Test labels.
    pub test_gold: Vec<Label>,
    /// Simulated web-crawl reputation table: domain → fraction of crawled
    /// pages that were celebrity content. Expensive to produce (a crawl),
    /// hence non-servable (§4).
    pub crawl_table: Arc<HashMap<String, f64>>,
}

fn sample_body(rng: &mut StdRng, label: Label, hard_negative: bool, len: usize) -> String {
    let mut words: Vec<String> = Vec::with_capacity(len + 4);
    for _ in 0..len {
        let r: f64 = rng.gen();
        let w: String = match label {
            Label::Positive => {
                if r < 0.26 {
                    (*pick(rng, Topic::Entertainment.seed_keywords())).to_owned()
                } else if r < 0.34 {
                    (*pick(rng, CELEB_WORDS)).to_owned()
                } else if r < 0.41 {
                    (*pick(rng, CELEB_PATTERNS)).to_owned()
                } else if r < 0.49 {
                    person_name(rng)
                } else {
                    (*pick(rng, FILLER_WORDS)).to_owned()
                }
            }
            Label::Negative => {
                let topic = if hard_negative {
                    Topic::Entertainment
                } else {
                    // Skew toward the topics the coarse categorizer can
                    // confidently rule out.
                    *pick(
                        rng,
                        &[
                            &Topic::Sports,
                            &Topic::Finance,
                            &Topic::Politics,
                            &Topic::Health,
                            &Topic::Travel,
                            &Topic::Technology,
                            &Topic::Commerce,
                        ],
                    )
                };
                if r < 0.33 {
                    (*pick(rng, topic.seed_keywords())).to_owned()
                } else if r < 0.3312 {
                    // Rare celebrity-word noise: keeps keyword LFs imperfect
                    // without drowning the 0.86% positive class.
                    (*pick(rng, CELEB_WORDS)).to_owned()
                } else if r < 0.34 && hard_negative {
                    person_name(rng)
                } else {
                    (*pick(rng, FILLER_WORDS)).to_owned()
                }
            }
        };
        words.push(w);
    }
    words.join(" ")
}

fn sample_title(rng: &mut StdRng, label: Label, hard_negative: bool) -> String {
    match label {
        Label::Positive => {
            // e.g. "Alice Johnson spotted at premiere"
            let mut parts = vec![person_name(rng)];
            parts.push((*pick(rng, CELEB_PATTERNS)).to_owned());
            parts.push("at".to_owned());
            parts.push((*pick(rng, Topic::Entertainment.seed_keywords())).to_owned());
            if rng.gen_bool(0.1) {
                // A fraction of positives have uninformative titles, so no
                // single title LF is perfect.
                parts = vec![
                    capitalize(pick(rng, FILLER_WORDS)),
                    (*pick(rng, FILLER_WORDS)).to_owned(),
                ];
            }
            parts.join(" ")
        }
        Label::Negative => {
            let topic = if hard_negative {
                Topic::Entertainment
            } else {
                Topic::Finance
            };
            let mut parts = vec![
                capitalize(pick(rng, topic.seed_keywords())),
                (*pick(rng, FILLER_WORDS)).to_owned(),
                (*pick(rng, topic.seed_keywords())).to_owned(),
            ];
            // Hard negatives occasionally headline a person (industry news).
            if hard_negative && rng.gen_bool(0.08) {
                parts.insert(0, person_name(rng));
            }
            // Celebrity phrasing leaks into ordinary headlines ("minister
            // reveals budget"), keeping the title-pattern LF imperfect.
            if rng.gen_bool(0.004) {
                parts.push((*pick(rng, CELEB_PATTERNS)).to_owned());
            }
            parts.join(" ")
        }
    }
}

fn sample_url(rng: &mut StdRng, label: Label) -> String {
    let celeb = match label {
        Label::Positive => rng.gen_bool(0.65),
        Label::Negative => rng.gen_bool(0.002),
    };
    let domain = if celeb {
        pick(rng, CELEB_DOMAINS)
    } else {
        pick(rng, GENERAL_DOMAINS)
    };
    format!("https://{domain}/articles/{}", rng.gen_range(0..10_000_000))
}

fn related_model_score(rng: &mut StdRng, label: Label) -> f64 {
    // A related internal classifier. Its errors are asymmetric, as any
    // usable signal for a sub-1% positive class must be: it misses 12% of
    // positives but almost never scores a negative high.
    let wrong = match label {
        Label::Positive => rng.gen_bool(0.12),
        Label::Negative => rng.gen_bool(0.01),
    };
    let high_side = (label == Label::Positive) != wrong;
    let center = if high_side { 0.85 } else { 0.15 };
    (center + 0.18 * gaussian(rng)).clamp(0.0, 1.0)
}

fn generate_doc(rng: &mut StdRng, id: u64, label: Label) -> TopicDoc {
    let hard_negative = label == Label::Negative && rng.gen_bool(0.25);
    let len = rng.gen_range(30..70);
    TopicDoc {
        id,
        title: sample_title(rng, label, hard_negative),
        body: sample_body(rng, label, hard_negative, len),
        url: sample_url(rng, label),
        related_model_score: related_model_score(rng, label),
    }
}

/// Generate the full task from a config.
pub fn generate(cfg: &TopicTaskConfig) -> TopicDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut make_split = |n: usize, id_base: u64| {
        let mut docs = Vec::with_capacity(n);
        let mut gold = Vec::with_capacity(n);
        for i in 0..n {
            let label = draw_label(&mut rng, cfg.pos_rate);
            docs.push(generate_doc(&mut rng, id_base + i as u64, label));
            gold.push(label);
        }
        (docs, gold)
    };
    let (unlabeled, unlabeled_gold) = make_split(cfg.num_unlabeled, 0);
    let (dev, dev_gold) = make_split(cfg.num_dev, 1_000_000_000);
    let (test, test_gold) = make_split(cfg.num_test, 2_000_000_000);

    // The crawl table reflects what a crawler would measure: the true
    // per-domain celebrity-content fraction, with sampling noise.
    let mut crawl_table = HashMap::new();
    let mut counts: HashMap<String, (u64, u64)> = HashMap::new();
    for (doc, gold) in unlabeled.iter().zip(&unlabeled_gold) {
        let entry = counts.entry(doc.domain().to_owned()).or_insert((0, 0));
        entry.1 += 1;
        if *gold == Label::Positive {
            entry.0 += 1;
        }
    }
    // Deterministic order: HashMap iteration order varies per instance,
    // and each domain consumes RNG draws.
    // drybell-lint: allow(determinism) — collected into a Vec and sorted on the next line
    let mut sorted: Vec<(String, (u64, u64))> = counts.into_iter().collect();
    sorted.sort();
    for (domain, (pos, total)) in sorted {
        let noise = 1.0 + 0.1 * gaussian(&mut rng);
        let frac = (pos as f64 / total.max(1) as f64) * noise.max(0.0);
        crawl_table.insert(domain, frac);
    }

    TopicDataset {
        unlabeled,
        unlabeled_gold,
        dev,
        dev_gold,
        test,
        test_gold,
        crawl_table: Arc::new(crawl_table),
    }
}

/// The text extractor the NLP LFs use (title + body, as in §5.1's
/// `GetText`).
pub fn text_extractor() -> TextExtractor<TopicDoc> {
    Arc::new(|d: &TopicDoc| d.full_text())
}

/// Build the ten labeling functions of §3.1.
///
/// `crawl_table` is the dataset's crawl-reputation resource.
pub fn lf_set(crawl_table: Arc<HashMap<String, f64>>) -> LfSet<TopicDoc> {
    let contains_any = |text: &str, words: &[&str]| {
        let lower = text.to_lowercase();
        words.iter().any(|w| lower.contains(w))
    };

    LfSet::new()
        // --- Servable heuristics (pattern-based rules; what remains in
        // --- the Table 3 "Servable LFs" ablation).
        .with(Lf::plain(
            "url_domain_list",
            LfCategory::SourceHeuristic,
            true,
            |d: &TopicDoc| {
                // A static domain allow/block list: celebrity outlets are
                // positive; a small list of hard-news domains the team
                // vetted is negative. Bipolar on purpose — voting on both
                // sides is what keeps the servable-only label model
                // identifiable (Table 3's ablation).
                if CELEB_DOMAINS.contains(&d.domain()) {
                    Vote::Positive
                } else if matches!(d.domain(), "worldnews.example" | "thepaper.example") {
                    Vote::Negative
                } else {
                    Vote::Abstain
                }
            },
        ))
        .with(Lf::plain(
            "kw_celeb_words",
            LfCategory::ContentHeuristic,
            true,
            move |d: &TopicDoc| {
                // Whole-token matches: "star" must not fire on "startup".
                let toks = drybell_nlp::tokenizer::lower_tokens(&d.full_text());
                let hits = CELEB_WORDS
                    .iter()
                    .filter(|w| toks.iter().any(|t| t == *w))
                    .count();
                if hits >= 2 {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            },
        ))
        .with(Lf::plain(
            "kw_title_pattern",
            LfCategory::ContentHeuristic,
            true,
            move |d: &TopicDoc| {
                if contains_any(&d.title, CELEB_PATTERNS) {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            },
        ))
        .with(Lf::plain(
            "kw_offtopic_jargon",
            LfCategory::ContentHeuristic,
            true,
            move |d: &TopicDoc| {
                let text = d.body.to_lowercase();
                let offtopic = [Topic::Sports, Topic::Finance, Topic::Politics];
                let hits: usize = offtopic
                    .iter()
                    .map(|t| {
                        t.seed_keywords()
                            .iter()
                            .filter(|w| text.contains(*w))
                            .count()
                    })
                    .sum();
                if hits >= 3 {
                    Vote::Negative
                } else {
                    Vote::Abstain
                }
            },
        ))
        // --- NER-based (non-servable: needs the NLP model server).
        .with(Lf::nlp("nlp_no_person", |_d: &TopicDoc, nlp| {
            // §5.1's example: content mentioning no person is not about
            // celebrities.
            if nlp.people().is_empty() {
                Vote::Negative
            } else {
                Vote::Abstain
            }
        }))
        .with(Lf::nlp("nlp_person_pattern_title", |d: &TopicDoc, nlp| {
            // A person mentioned in the title together with celebrity
            // phrasing.
            let title_end = d.title.len();
            let person_in_title = nlp
                .entities_of(EntityKind::Person)
                .any(|e| e.start < title_end);
            let lower = d.title.to_lowercase();
            let has_pattern = CELEB_PATTERNS.iter().any(|p| lower.contains(p));
            if person_in_title && has_pattern {
                Vote::Positive
            } else {
                Vote::Abstain
            }
        }))
        // --- Topic-model-based (non-servable). The categorizer is too
        // --- coarse for the target topic but is an effective *negative*
        // --- heuristic (§3.1).
        .with(Lf::nlp("topic_not_entertainment", |_d: &TopicDoc, nlp| {
            if nlp.topic_probs[Topic::Entertainment.index()] < 0.2 {
                Vote::Negative
            } else {
                Vote::Abstain
            }
        }))
        .with(Lf::nlp("topic_offtopic_strong", |_d: &TopicDoc, nlp| {
            let offtopic = [
                Topic::Sports,
                Topic::Finance,
                Topic::Politics,
                Topic::Health,
                Topic::Travel,
            ];
            if offtopic.iter().any(|t| nlp.topic_probs[t.index()] > 0.5) {
                Vote::Negative
            } else {
                Vote::Abstain
            }
        }))
        // --- Crawl-based source heuristic (non-servable: crawls are
        // --- expensive and high-latency, §4).
        .with(
            Lf::plain(
                "crawl_domain_reputation",
                LfCategory::SourceHeuristic,
                false,
                move |d: &TopicDoc| match crawl_table.get(d.domain()) {
                    Some(&frac) if frac > 0.10 => Vote::Positive,
                    // Only near-zero crawl fractions are safe negative
                    // evidence: a general-interest domain still hosts the
                    // occasional celebrity piece.
                    Some(&frac) if frac < 0.0015 => Vote::Negative,
                    _ => Vote::Abstain,
                },
            )
            .with_feature_spaces(&["crawl-reputation"]),
        )
        // --- Related internal model (non-servable model output attached
        // --- offline during data collection).
        .with(
            Lf::plain(
                "related_model",
                LfCategory::ModelBased,
                false,
                |d: &TopicDoc| {
                    if d.related_model_score > 0.8 {
                        Vote::Positive
                    } else if d.related_model_score < 0.2 {
                        Vote::Negative
                    } else {
                        Vote::Abstain
                    }
                },
            )
            .with_feature_spaces(&["related-classifier"]),
        )
}

/// Servable featurization for the discriminative model: hashed title and
/// body unigrams plus the URL domain (all computable in production).
pub fn featurize(doc: &TopicDoc, hasher: &FeatureHasher) -> SparseVector {
    let title_toks = drybell_nlp::tokenizer::lower_tokens(&doc.title);
    let body_toks = drybell_nlp::tokenizer::lower_tokens(&doc.body);
    let parts = [
        hasher.namespaced_bag("title", &title_toks),
        hasher.namespaced_bag("body", &body_toks),
        hasher.weighted(&[(format!("domain={}", doc.domain()), 1.0)]),
    ];
    drybell_features::hashing::concat(&parts).l2_normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_lf::executor::execute_in_memory;

    fn small() -> TopicDataset {
        generate(&TopicTaskConfig {
            num_unlabeled: 4000,
            num_dev: 500,
            num_test: 500,
            pos_rate: 0.05, // boosted so splits contain enough positives
            seed: 7,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TopicTaskConfig {
            num_unlabeled: 100,
            num_dev: 10,
            num_test: 10,
            pos_rate: 0.1,
            seed: 42,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.unlabeled, b.unlabeled);
        assert_eq!(a.test_gold, b.test_gold);
    }

    #[test]
    fn positive_rate_matches_config() {
        let ds = small();
        let pos = ds
            .unlabeled_gold
            .iter()
            .filter(|&&l| l == Label::Positive)
            .count();
        let rate = pos as f64 / ds.unlabeled_gold.len() as f64;
        assert!((rate - 0.05).abs() < 0.015, "rate {rate}");
    }

    #[test]
    fn doc_record_roundtrip() {
        let ds = small();
        let doc = &ds.unlabeled[0];
        let buf = codec::encode_record(doc);
        let back: TopicDoc = codec::decode_record(&buf).unwrap();
        assert_eq!(&back, doc);
    }

    #[test]
    fn lf_set_matches_table_1() {
        let ds = small();
        let set = lf_set(ds.crawl_table.clone());
        assert_eq!(set.len(), 10, "Table 1: ten LFs for topic classification");
        // Both servable and non-servable LFs exist (Table 3's ablation
        // needs both sides).
        let mask = set.servable_mask();
        assert!(mask.iter().any(|&s| s));
        assert!(mask.iter().any(|&s| !s));
        assert!(set.needs_nlp());
    }

    /// Every LF must be *informative*: when it votes, it should agree with
    /// the ground truth clearly more often than the base rate of its
    /// polarity would suggest, and it must vote on a non-trivial slice.
    #[test]
    fn lfs_are_informative_on_generated_data() {
        let ds = small();
        let set = lf_set(ds.crawl_table.clone());
        let ext = text_extractor();
        let (matrix, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, 4).unwrap();
        for (j, name) in set.names().iter().enumerate() {
            let acc = matrix
                .empirical_accuracy(j, &ds.unlabeled_gold)
                .unwrap()
                .unwrap_or_else(|| panic!("LF {name} never voted"));
            let coverage = matrix.coverage(j);
            assert!(
                acc > 0.55,
                "LF {name}: accuracy {acc:.3} (coverage {coverage:.3}) is not informative"
            );
            assert!(
                coverage > 0.001,
                "LF {name}: coverage {coverage:.4} too small"
            );
        }
        // The label matrix must cover most examples with at least one vote.
        assert!(matrix.label_density() > 0.8);
    }

    #[test]
    fn featurization_is_servable_and_normalized() {
        let ds = small();
        let hasher = FeatureHasher::new(1 << 18);
        let v = featurize(&ds.unlabeled[0], &hasher);
        assert!(v.nnz() > 5);
        assert!((v.norm_sq() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_preset_matches_table_1() {
        let cfg = TopicTaskConfig::paper();
        assert_eq!(cfg.num_unlabeled, 684_000);
        assert_eq!(cfg.num_dev, 11_000);
        assert_eq!(cfg.num_test, 11_000);
        assert!((cfg.pos_rate - 0.0086).abs() < 1e-12);
        let scaled = TopicTaskConfig::scaled(0.01);
        assert_eq!(scaled.num_unlabeled, 6840);
    }
}
