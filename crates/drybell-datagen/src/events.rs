//! The real-time event-classification application (§3.3, §6.4).
//!
//! Events on two serving platforms must be classified in real time, but
//! the reliable signals are *offline*: 30-day aggregate statistics per
//! source and models over entity/destination relationship graphs. The
//! paper's pre-DryBell approach combined `n = 140` weak supervision
//! sources over those non-servable features with a logical OR; DryBell
//! instead denoises them with the generative model and trains a DNN over
//! the servable, event-level features — identifying 58% more events of
//! interest with a 4.5% quality improvement, and producing the far
//! smoother score distribution of Figure 6.
//!
//! The 140 sources come in the paper's three flavors:
//!
//! * **heuristics** — threshold rules on single aggregate statistics,
//!   with per-rule accuracy varying from barely-better-than-chance to
//!   strong (the "large set of existing heuristic classifiers");
//! * **model-based** — linear scorers over random subsets of the
//!   aggregate features ("several smaller models that had previously
//!   been developed over various feature sets");
//! * **graph-based** — low-threshold rules on relationship-graph scores:
//!   "higher recall but generally lower-precision signals".

use crate::common::{draw_label, gaussian};
use drybell_core::vote::{Label, Vote};
use drybell_lf::{Lf, LfCategory, LfSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of servable, real-time, event-level features.
pub const SERVABLE_DIMS: usize = 16;
/// Number of non-servable aggregate-statistics features.
pub const AGGREGATE_DIMS: usize = 12;

/// One platform event.
#[derive(Debug, Clone, PartialEq)]
pub struct RealTimeEvent {
    /// Unique id.
    pub id: u64,
    /// Real-time, event-level features available at serving time.
    pub servable: Vec<f64>,
    /// 30-day aggregate statistics for the event's source — offline,
    /// private, non-servable (§4).
    pub aggregates: Vec<f64>,
    /// Score from models over entity/destination relationship graphs —
    /// offline, non-servable.
    pub graph_score: f64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EventTaskConfig {
    /// Unlabeled stream size.
    pub num_unlabeled: usize,
    /// Test split size.
    pub num_test: usize,
    /// Rate of events of interest.
    pub pos_rate: f64,
    /// Number of weak supervision sources (paper: 140).
    pub num_lfs: usize,
    /// Master seed.
    pub seed: u64,
}

impl EventTaskConfig {
    /// §3.3 preset: 140 weak supervision sources, a million-event stream.
    pub fn paper() -> EventTaskConfig {
        EventTaskConfig {
            num_unlabeled: 1_000_000,
            num_test: 50_000,
            pos_rate: 0.05,
            num_lfs: 140,
            seed: 20190702,
        }
    }

    /// The paper preset with stream sizes scaled by `f` (the LF count is
    /// part of the application, not the scale).
    pub fn scaled(f: f64) -> EventTaskConfig {
        let base = EventTaskConfig::paper();
        EventTaskConfig {
            num_unlabeled: ((base.num_unlabeled as f64 * f).round() as usize).max(1),
            num_test: ((base.num_test as f64 * f).round() as usize).max(1),
            ..base
        }
    }
}

/// The generated event task.
#[derive(Debug, Clone)]
pub struct EventDataset {
    /// The unlabeled stream DryBell weakly supervises.
    pub unlabeled: Vec<RealTimeEvent>,
    /// Hidden gold for the unlabeled stream (evaluation only).
    pub unlabeled_gold: Vec<Label>,
    /// Test split.
    pub test: Vec<RealTimeEvent>,
    /// Test labels.
    pub test_gold: Vec<Label>,
}

/// Class-conditional feature generation.
///
/// A tenth of the *benign* events are "suspicious": bursty sources whose
/// servable features, aggregate statistics, and graph scores all shift
/// partway toward the positive profile without the event being of
/// interest. These are what break the Logical-OR baseline (§6.4): enough
/// individual sources fire on them that OR labels them positive, and
/// because their *servable* features also look shifted, a DNN trained on
/// OR labels learns to rank them high — wasting review budget. The
/// generative model instead weighs the accurate sources' negative votes
/// and keeps them out of the training positives.
fn gen_event(rng: &mut StdRng, id: u64, label: Label) -> RealTimeEvent {
    let pos = label == Label::Positive;
    let suspicious = !pos && rng.gen_bool(0.10);
    let servable: Vec<f64> = (0..SERVABLE_DIMS)
        .map(|d| {
            // Events of interest shift the even dims; suspicious-but-benign
            // burstiness shows up on the *odd* dims. A model trained on
            // clean labels learns to ignore the odd dims; one trained on
            // OR labels (which call suspicious events positive) learns to
            // rank benign burstiness high.
            let shift = if pos && d % 2 == 0 {
                0.9
            } else if suspicious && d % 2 != 0 {
                0.8
            } else {
                0.0
            };
            shift + gaussian(rng)
        })
        .collect();
    let aggregates: Vec<f64> = (0..AGGREGATE_DIMS)
        .map(|d| {
            // Aggregates are the strong offline signal: shift on
            // two-thirds of dims.
            let shift = if d % 3 == 0 {
                0.0
            } else if pos {
                2.4
            } else if suspicious {
                0.8
            } else {
                0.0
            };
            shift + gaussian(rng)
        })
        .collect();
    // Graph score: positives high; suspicious negatives often share
    // infrastructure with bad sources; plain negatives stay low.
    let graph_score = if pos {
        (0.75 + 0.2 * gaussian(rng)).clamp(0.0, 1.0)
    } else {
        let base: f64 = rng.gen();
        let tail = if suspicious { 0.5 } else { 0.01 };
        if rng.gen_bool(tail) {
            (0.5 + 0.3 * base).min(1.0)
        } else {
            0.3 * base
        }
    };
    RealTimeEvent {
        id,
        servable,
        aggregates,
        graph_score,
    }
}

/// Generate the full task.
pub fn generate(cfg: &EventTaskConfig) -> EventDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut make_split = |n: usize, id_base: u64| {
        let mut events = Vec::with_capacity(n);
        let mut gold = Vec::with_capacity(n);
        for i in 0..n {
            let label = draw_label(&mut rng, cfg.pos_rate);
            events.push(gen_event(&mut rng, id_base + i as u64, label));
            gold.push(label);
        }
        (events, gold)
    };
    let (unlabeled, unlabeled_gold) = make_split(cfg.num_unlabeled, 0);
    let (test, test_gold) = make_split(cfg.num_test, 3_000_000_000);
    EventDataset {
        unlabeled,
        unlabeled_gold,
        test,
        test_gold,
    }
}

/// Build the `num_lfs` weak supervision sources of §3.3, split across the
/// three families. Deterministic given `seed`.
pub fn lf_set(num_lfs: usize, seed: u64) -> LfSet<RealTimeEvent> {
    assert!(num_lfs >= 3, "need at least one LF per family");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = LfSet::new();
    let n_heuristic = num_lfs * 3 / 7; // "a large set of existing heuristics"
    let n_model = num_lfs * 2 / 7;
    let n_graph = num_lfs - n_heuristic - n_model;

    // Heuristic thresholds on single aggregate dimensions. Positive-vote
    // rules use high thresholds (precise); negative-vote rules fire when
    // the statistic looks clearly benign.
    for i in 0..n_heuristic {
        let dim = rng.gen_range(0..AGGREGATE_DIMS);
        let informative = dim % 3 != 0;
        let positive_rule = rng.gen_bool(0.5);
        let threshold = if positive_rule {
            // High thresholds: with a 5% positive rate, a usable
            // positive-voting rule must keep its false-positive rate in
            // the low percents. Rules that landed on uninformative
            // dimensions stay near-chance — the "previously unknown
            // low-quality sources" §3.3 says the learned accuracies
            // expose.
            rng.gen_range(2.4..3.2)
        } else {
            rng.gen_range(-0.5..0.6)
        };
        set.push(
            Lf::plain(
                &format!("heuristic_{i:03}_dim{dim}"),
                LfCategory::SourceHeuristic,
                false,
                move |e: &RealTimeEvent| {
                    let v = e.aggregates[dim];
                    if positive_rule {
                        if v > threshold {
                            Vote::Positive
                        } else {
                            Vote::Abstain
                        }
                    } else if v < threshold {
                        Vote::Negative
                    } else {
                        Vote::Abstain
                    }
                },
            )
            .with_feature_spaces(&["aggregate-stats"]),
        );
        let _ = informative;
    }

    // Smaller models: linear scorers over random aggregate subsets with
    // noisy weights; vote on both sides with an abstain band.
    for i in 0..n_model {
        let dims: Vec<usize> = (0..AGGREGATE_DIMS).filter(|_| rng.gen_bool(0.5)).collect();
        let dims = if dims.is_empty() { vec![1] } else { dims };
        let weights: Vec<f64> = dims
            .iter()
            .map(|&d| {
                let signal = if d % 3 != 0 { 0.8 } else { 0.0 };
                signal + 0.35 * gaussian(&mut rng)
            })
            .collect();
        let bias = -1.4 * weights.iter().sum::<f64>(); // centers the score
        let scale = 1.0 / (dims.len() as f64).sqrt();
        set.push(
            Lf::plain(
                &format!("model_{i:03}"),
                LfCategory::ModelBased,
                false,
                move |e: &RealTimeEvent| {
                    let mut s = bias;
                    for (&d, &w) in dims.iter().zip(&weights) {
                        s += w * e.aggregates[d];
                    }
                    s *= scale;
                    if s > 0.8 {
                        Vote::Positive
                    } else if s < -0.8 {
                        Vote::Negative
                    } else {
                        Vote::Abstain
                    }
                },
            )
            .with_feature_spaces(&["aggregate-stats"]),
        );
    }

    // Graph-based: low thresholds on the relationship-graph score —
    // higher recall, lower precision (§3.3). Each of these "models over
    // graphs of entity and destination relationships" sees the graph
    // through its own lens, so per-LF observation noise (deterministic in
    // the event id and LF index) decorrelates their errors; without it,
    // forty perfectly-nested threshold rules would act as one LF with
    // 40× the weight.
    for i in 0..n_graph {
        let threshold = rng.gen_range(0.4..0.6);
        let lf_salt = rng.gen::<u64>();
        set.push(
            Lf::plain(
                &format!("graph_{i:03}"),
                LfCategory::GraphBased,
                false,
                move |e: &RealTimeEvent| {
                    let h = drybell_features::fnv1a64(
                        &[e.id.to_le_bytes(), lf_salt.to_le_bytes()].concat(),
                    );
                    let noise = (h % 10_000) as f64 / 10_000.0 * 0.24 - 0.12;
                    if e.graph_score + noise > threshold {
                        Vote::Positive
                    } else {
                        Vote::Abstain
                    }
                },
            )
            .with_feature_spaces(&["relationship-graph"]),
        );
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_lf::executor::execute_in_memory;

    fn small() -> (EventDataset, LfSet<RealTimeEvent>) {
        let cfg = EventTaskConfig {
            num_unlabeled: 4000,
            num_test: 500,
            pos_rate: 0.05,
            num_lfs: 140,
            seed: 5,
        };
        (generate(&cfg), lf_set(cfg.num_lfs, cfg.seed))
    }

    #[test]
    fn lf_count_matches_paper() {
        let (_, set) = small();
        assert_eq!(set.len(), 140, "§3.3: n = 140 weak supervision sources");
        // All three families are present (Figure 2's event-app mix).
        let dist = set.category_distribution();
        for (cat, count) in dist {
            if cat != LfCategory::ContentHeuristic {
                assert!(count > 0, "missing family {cat}");
            }
        }
        // Everything is defined over non-servable features (§3.3: none of
        // the weak supervision sources apply to the servable features).
        assert!(set.servable_mask().iter().all(|&s| !s));
    }

    #[test]
    fn generation_shapes() {
        let (ds, _) = small();
        assert_eq!(ds.unlabeled.len(), 4000);
        let e = &ds.unlabeled[0];
        assert_eq!(e.servable.len(), SERVABLE_DIMS);
        assert_eq!(e.aggregates.len(), AGGREGATE_DIMS);
        assert!((0.0..=1.0).contains(&e.graph_score));
    }

    #[test]
    fn aggregate_features_separate_classes_more_than_servable() {
        let (ds, _) = small();
        let mean_diff = |extract: &dyn Fn(&RealTimeEvent) -> f64| {
            let (mut pos, mut neg, mut np, mut nn) = (0.0, 0.0, 0usize, 0usize);
            for (e, g) in ds.unlabeled.iter().zip(&ds.unlabeled_gold) {
                let v = extract(e);
                if *g == Label::Positive {
                    pos += v;
                    np += 1;
                } else {
                    neg += v;
                    nn += 1;
                }
            }
            pos / np as f64 - neg / nn as f64
        };
        let agg_gap = mean_diff(&|e| e.aggregates[1]);
        let srv_gap = mean_diff(&|e| e.servable[0]);
        assert!(
            agg_gap > srv_gap + 0.3,
            "aggregates should be the stronger signal: {agg_gap:.2} vs {srv_gap:.2}"
        );
    }

    #[test]
    fn graph_lfs_have_high_recall_low_precision() {
        let (ds, set) = small();
        let (matrix, _) = execute_in_memory(&set, None, &ds.unlabeled, 4).unwrap();
        let names = set.names();
        let graph_idx: Vec<usize> = names
            .iter()
            .enumerate()
            .filter_map(|(j, n)| n.starts_with("graph_").then_some(j))
            .collect();
        assert!(!graph_idx.is_empty());
        // Pool recall/precision over graph LFs.
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        for (row, gold) in matrix.rows().zip(&ds.unlabeled_gold) {
            for &j in &graph_idx {
                match (row[j], *gold) {
                    (1, Label::Positive) => tp += 1,
                    (1, Label::Negative) => fp += 1,
                    (0, Label::Positive) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let recall = tp as f64 / (tp + fn_) as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        assert!(recall > 0.75, "graph recall {recall:.3}");
        assert!(
            precision < 0.65,
            "graph precision {precision:.3} should be low"
        );
    }

    #[test]
    fn most_lfs_are_informative() {
        // With 140 auto-generated sources some are near-chance by design
        // (§3.3: the estimated accuracies identified low-quality sources);
        // but the bulk must carry signal.
        let (ds, set) = small();
        let (matrix, _) = execute_in_memory(&set, None, &ds.unlabeled, 4).unwrap();
        let names = set.names();
        let mut informative = 0usize;
        let mut voted = 0usize;
        #[allow(clippy::needless_range_loop)] // j indexes names and the matrix
        for j in 0..set.len() {
            // Graph LFs are low-precision by design; they are validated
            // separately in `graph_lfs_have_high_recall_low_precision`.
            if names[j].starts_with("graph_") {
                continue;
            }
            if let Some(acc) = matrix.empirical_accuracy(j, &ds.unlabeled_gold).unwrap() {
                voted += 1;
                if acc > 0.6 {
                    informative += 1;
                }
            }
        }
        assert!(voted >= 80, "voted: {voted}");
        assert!(
            informative as f64 > 0.6 * voted as f64,
            "informative: {informative}/{voted}"
        );
        assert!(matrix.label_density() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = EventTaskConfig {
            num_unlabeled: 50,
            num_test: 10,
            pos_rate: 0.2,
            num_lfs: 14,
            seed: 9,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.unlabeled, b.unlabeled);
        let (ma, _) = execute_in_memory(&lf_set(14, 9), None, &a.unlabeled, 2).unwrap();
        let (mb, _) = execute_in_memory(&lf_set(14, 9), None, &b.unlabeled, 2).unwrap();
        assert_eq!(ma, mb);
    }
}
