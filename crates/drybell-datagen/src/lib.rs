//! # drybell-datagen
//!
//! Synthetic data and application definitions for the paper's three case
//! studies. Each application module bundles everything §3 describes for
//! its task: a seeded corpus/stream generator with latent ground truth, a
//! labeling-function set wired to the organizational resources
//! (`drybell-nlp` model servers, the `drybell-kg` commerce graph,
//! simulated legacy classifiers and crawl tables), and the servable
//! featurization its discriminative model uses.
//!
//! * [`topic`] — topic classification (§3.1): 684K unlabeled docs, 0.86%
//!   positive, 10 LFs (URL heuristics, NER-based, topic-model-based).
//! * [`product`] — product classification (§3.2): 6.5M unlabeled docs in
//!   ten languages, 1.48% positive, 8 LFs (keywords, Knowledge Graph
//!   translations, topic model, a depreciated legacy classifier).
//! * [`events`] — real-time event classification (§3.3): 140 weak
//!   supervision sources over non-servable aggregate/graph features,
//!   with a servable real-time feature vector for the DNN.
//!
//! Ground-truth labels exist only because the corpora are synthetic; the
//! weak-supervision pipeline never reads them. They feed the dev/test
//! splits (Table 1) and the hand-label trade-off experiments (Figure 5).
//!
//! Every generator is deterministic given its config's seed, and every
//! config has a `paper()` preset matching Table 1 plus a `scaled(f)`
//! variant for laptop-sized runs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod common;
pub mod events;
pub mod product;
pub mod topic;

pub use events::{EventTaskConfig, RealTimeEvent};
pub use product::{ProductDoc, ProductTaskConfig};
pub use topic::{TopicDoc, TopicTaskConfig};
