//! The product-classification application (§3.2).
//!
//! An existing classifier detected content referencing products in a
//! category of interest; a strategic decision *expanded* the category to
//! include "many types of accessories and parts", instantly depreciating
//! the old training labels. One developer writes eight labeling functions:
//! keyword rules, Knowledge-Graph translations of those keywords in ten
//! languages (for coverage across locales), the coarse topic model, and
//! the depreciated legacy classifier used only on the side it is still
//! right about.
//!
//! The generator emits documents in ten languages referencing products
//! from the `drybell-kg` commerce graph. Ground truth: the content
//! references the *photography* subtree (cameras, drones, and — after the
//! expansion — their accessories and parts).

use crate::common::{draw_label, gaussian, pick, scaled_counts, FILLER_WORDS};
use drybell_core::vote::{Label, Vote};
use drybell_dataflow::codec::{self, CodecError, Record};
use drybell_features::{FeatureHasher, SparseVector};
use drybell_kg::commerce::{CommerceGraph, LANGS, OTHER_TRANSLATIONS, PHOTO_TRANSLATIONS};
use drybell_lf::executor::TextExtractor;
use drybell_lf::{Lf, LfCategory, LfSet};
use drybell_nlp::langid::Lang;
use drybell_nlp::topic_model::Topic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One piece of product-referencing (or not) content.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductDoc {
    /// Unique id.
    pub id: u64,
    /// Content text, possibly non-English (servable).
    pub text: String,
    /// Locale the content was served in (servable metadata).
    pub lang: String,
    /// Depreciated legacy classifier's score, attached offline
    /// (non-servable; §3.2's "existing classifier").
    pub legacy_score: f64,
}

impl Record for ProductDoc {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_varint(buf, self.id);
        codec::put_string(buf, &self.text);
        codec::put_string(buf, &self.lang);
        codec::put_f64(buf, self.legacy_score);
    }

    fn decode(buf: &mut &[u8]) -> Result<ProductDoc, CodecError> {
        Ok(ProductDoc {
            id: codec::get_varint(buf)?,
            text: codec::get_string(buf)?,
            lang: codec::get_string(buf)?,
            legacy_score: codec::get_f64(buf)?,
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ProductTaskConfig {
    /// Unlabeled pool size (paper: 6.5M).
    pub num_unlabeled: usize,
    /// Development set size (paper: 14K).
    pub num_dev: usize,
    /// Test set size (paper: 13K).
    pub num_test: usize,
    /// Positive rate (paper: 1.48%).
    pub pos_rate: f64,
    /// Fraction of documents in English; the rest spread uniformly over
    /// the other nine languages.
    pub english_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl ProductTaskConfig {
    /// Table 1 preset: 6.5M unlabeled, 14K dev, 13K test, 1.48% positive.
    pub fn paper() -> ProductTaskConfig {
        ProductTaskConfig {
            num_unlabeled: 6_500_000,
            num_dev: 14_000,
            num_test: 13_000,
            pos_rate: 0.0148,
            english_rate: 0.55,
            seed: 20190701,
        }
    }

    /// The paper preset with all split sizes scaled by `f`.
    pub fn scaled(f: f64) -> ProductTaskConfig {
        let base = ProductTaskConfig::paper();
        let (u, d, t) = scaled_counts(base.num_unlabeled, base.num_dev, base.num_test, f);
        ProductTaskConfig {
            num_unlabeled: u,
            num_dev: d,
            num_test: t,
            ..base
        }
    }
}

/// The generated product task.
#[derive(Debug, Clone)]
pub struct ProductDataset {
    /// Unlabeled pool.
    pub unlabeled: Vec<ProductDoc>,
    /// Hidden gold for the unlabeled pool (evaluation harnesses only).
    pub unlabeled_gold: Vec<Label>,
    /// Development split.
    pub dev: Vec<ProductDoc>,
    /// Development labels.
    pub dev_gold: Vec<Label>,
    /// Test split.
    pub test: Vec<ProductDoc>,
    /// Test labels.
    pub test_gold: Vec<Label>,
    /// The commerce knowledge graph the KG LFs query.
    pub kg: Arc<CommerceGraph>,
}

/// Alias of `word` in `lang` according to the translation tables (falls
/// back to the English word for untranslated vocabulary).
fn alias_for<'a>(word: &'a str, lang: &str) -> &'a str {
    let col = LANGS.iter().position(|l| *l == lang).unwrap_or(0);
    for (w, row) in PHOTO_TRANSLATIONS.iter().chain(OTHER_TRANSLATIONS) {
        if *w == word {
            return row[col];
        }
    }
    word
}

const PHOTO_CORE: &[&str] = &["camera", "drone"];
const PHOTO_ACCESSORIES: &[&str] = &[
    "lens", "tripod", "flash", "battery", "charger", "filter", "strap", "gimbal",
];
const OTHER_PRODUCTS: &[&str] = &[
    "phone", "tablet", "laptop", "monitor", "printer", "router", "console",
];
const OTHER_ACCESSORIES: &[&str] = &["headphones", "speaker", "keyboard"];

/// Photography-context vocabulary that is *not* in the knowledge graph:
/// no labeling function knows these words, but they co-occur with the
/// KG-visible product terms in positives — the "more subtle or synonymous
/// features" §2 says the discriminative classifier learns to exploit
/// beyond the labeling functions.
const PHOTO_CONTEXT: &[&str] = &[
    "zoom",
    "aperture",
    "shutter",
    "bokeh",
    "megapixel",
    "viewfinder",
    "exposure",
    "portrait",
    "timelapse",
    "autofocus",
];

fn lang_filler(rng: &mut StdRng, lang: Lang) -> String {
    let words: Vec<&str> = lang.seed_text().split_whitespace().collect();
    words[rng.gen_range(0..words.len())].to_owned()
}

fn generate_doc(rng: &mut StdRng, id: u64, label: Label, english_rate: f64) -> ProductDoc {
    let lang = if rng.gen_bool(english_rate) {
        Lang::En
    } else {
        Lang::ALL[rng.gen_range(1..Lang::ALL.len())]
    };
    let lang_code = lang.code();
    let len = rng.gen_range(20..50);
    let mut words: Vec<String> = Vec::with_capacity(len + 6);

    // Product mentions.
    let mut product_free = false;
    match label {
        Label::Positive => {
            // 1–3 photography-subtree terms in the document's language.
            // Roughly 55% of positives are about accessories/parts — the
            // expanded part of the category. 8% of positives use only
            // photography jargon with no catalog term at all; labeling
            // functions are blind to them, the discriminative model is
            // not.
            let jargon_only = rng.gen_bool(0.08);
            if !jargon_only {
                let about_accessory = rng.gen_bool(0.55);
                let n_mentions = rng.gen_range(1..=3);
                for _ in 0..n_mentions {
                    let word = if about_accessory {
                        pick(rng, PHOTO_ACCESSORIES)
                    } else {
                        pick(rng, PHOTO_CORE)
                    };
                    words.push(alias_for(word, lang_code).to_owned());
                }
                // Accessory docs usually also name the core product.
                if about_accessory && rng.gen_bool(0.5) {
                    words.push(alias_for(pick(rng, PHOTO_CORE), lang_code).to_owned());
                }
            }
            // Photography jargon (KG-invisible, feature-visible).
            for _ in 0..rng.gen_range(1..=3) {
                words.push((*pick(rng, PHOTO_CONTEXT)).to_owned());
            }
        }
        Label::Negative => {
            // Most negatives reference other products or accessories;
            // some are product-free chatter.
            let r: f64 = rng.gen();
            if r < 0.45 {
                for _ in 0..rng.gen_range(1..=3) {
                    words.push(alias_for(pick(rng, OTHER_PRODUCTS), lang_code).to_owned());
                }
            } else if r < 0.75 {
                for _ in 0..rng.gen_range(1..=2) {
                    words.push(alias_for(pick(rng, OTHER_ACCESSORIES), lang_code).to_owned());
                }
                // "phone charger", "laptop battery": shared accessory
                // vocabulary creates genuine ambiguity with photography
                // accessories. Kept rare — with a 1.48% positive rate,
                // even a 1% false-fire rate would swamp the positive
                // keyword LFs' precision.
                if rng.gen_bool(0.008) {
                    words.push(alias_for("charger", lang_code).to_owned());
                }
            } else {
                // No product mention at all: off-topic chatter that
                // slipped through the keyword filter.
                product_free = true;
            }
        }
    }

    // Background vocabulary. Product content is commerce-flavored;
    // product-free chatter talks about something else entirely (which is
    // exactly what lets the coarse topic model flag it, §3.2). A slice of
    // the product-mentioning negatives is also off-topic ("my trip, plus
    // my phone died") — those docs are where the topic-model LF overlaps
    // the keyword LFs, tying all the negative evidence into one agreement
    // component.
    let offtopic_background = product_free || (label == Label::Negative && rng.gen_bool(0.15));
    let offtopic = *pick(
        rng,
        &[
            &Topic::Travel,
            &Topic::Sports,
            &Topic::Health,
            &Topic::Politics,
        ],
    );
    for _ in 0..len {
        let r: f64 = rng.gen();
        if offtopic_background {
            if r < 0.30 {
                words.push((*pick(rng, offtopic.seed_keywords())).to_owned());
            } else if r < 0.33 {
                words.push((*pick(rng, Topic::Commerce.seed_keywords())).to_owned());
            } else if lang == Lang::En {
                words.push((*pick(rng, FILLER_WORDS)).to_owned());
            } else {
                words.push(lang_filler(rng, lang));
            }
        } else if r < 0.18 {
            words.push((*pick(rng, Topic::Commerce.seed_keywords())).to_owned());
        } else if r < 0.22 {
            words.push((*pick(rng, Topic::Technology.seed_keywords())).to_owned());
        } else if r < 0.223 && label == Label::Negative {
            // A sprinkle of photography jargon in negatives ("phone with
            // great zoom") keeps the jargon features imperfect.
            words.push((*pick(rng, PHOTO_CONTEXT)).to_owned());
        } else if lang == Lang::En {
            words.push((*pick(rng, FILLER_WORDS)).to_owned());
        } else {
            words.push(lang_filler(rng, lang));
        }
    }
    // Shuffle mentions into the text (Fisher–Yates).
    for i in (1..words.len()).rev() {
        let j = rng.gen_range(0..=i);
        words.swap(i, j);
    }

    // Legacy classifier: trained on the *old* category (cameras/drones
    // only, English market). Still precise on core-product positives,
    // blind to the accessory expansion, slightly noisy overall.
    let mentions_core = words
        .iter()
        .any(|w| PHOTO_CORE.iter().any(|c| w == alias_for(c, lang_code)));
    let high_side = if mentions_core && lang == Lang::En {
        rng.gen_bool(0.93)
    } else {
        rng.gen_bool(0.002)
    };
    let center = if high_side { 0.85 } else { 0.12 };
    let legacy_score = (center + 0.15 * gaussian(rng)).clamp(0.0, 1.0);

    ProductDoc {
        id,
        text: words.join(" "),
        lang: lang_code.to_owned(),
        legacy_score,
    }
}

/// Generate the full task.
pub fn generate(cfg: &ProductTaskConfig) -> ProductDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut make_split = |n: usize, id_base: u64| {
        let mut docs = Vec::with_capacity(n);
        let mut gold = Vec::with_capacity(n);
        for i in 0..n {
            let label = draw_label(&mut rng, cfg.pos_rate);
            docs.push(generate_doc(
                &mut rng,
                id_base + i as u64,
                label,
                cfg.english_rate,
            ));
            gold.push(label);
        }
        (docs, gold)
    };
    let (unlabeled, unlabeled_gold) = make_split(cfg.num_unlabeled, 0);
    let (dev, dev_gold) = make_split(cfg.num_dev, 1_000_000_000);
    let (test, test_gold) = make_split(cfg.num_test, 2_000_000_000);
    ProductDataset {
        unlabeled,
        unlabeled_gold,
        dev,
        dev_gold,
        test,
        test_gold,
        kg: Arc::new(drybell_kg::commerce::commerce_graph()),
    }
}

/// Text extractor for the NLP LFs.
pub fn text_extractor() -> TextExtractor<ProductDoc> {
    Arc::new(|d: &ProductDoc| d.text.clone())
}

/// Build the eight labeling functions of §3.2.
pub fn lf_set(cg: Arc<CommerceGraph>) -> LfSet<ProductDoc> {
    let kg_arc = Arc::new(cg.graph.clone());
    let cg_pos = cg.clone();
    let cg_neg = cg.clone();
    let cg_combo = cg.clone();
    let cg_none = cg.clone();

    LfSet::new()
        .with_knowledge_graph(kg_arc)
        // --- Keyword-based, English, bipolar — §3.2: "Keywords in the
        // --- content indicated either products and accessories in the
        // --- category of interest, or other accessories not of
        // --- interest". Bipolar LFs are what make the label model
        // --- identifiable: an LF voting on both sides cannot be
        // --- explained away as "always wrong when it fires".
        .with(Lf::plain("kw_en", LfCategory::ContentHeuristic, true, {
            let cg = cg.clone();
            move |d: &ProductDoc| {
                // One embedded keyword-table rule (§3.2's keyword LF):
                // photography terms → positive; other products → negative;
                // *no* catalog term at all → negative (product content
                // always names a product). The table is exported from the
                // KG at build time, so the rule itself is servable.
                let mut photo = false;
                let mut other = false;
                let mut any_alias = false;
                for w in d.text.split_whitespace() {
                    photo |= PHOTO_CORE.contains(&w) || PHOTO_ACCESSORIES.contains(&w);
                    other |= OTHER_ACCESSORIES.contains(&w) || OTHER_PRODUCTS.contains(&w);
                    any_alias |= cg.graph.resolve_alias(w).is_some();
                }
                match (photo, other, any_alias) {
                    (true, _, _) => Vote::Positive,
                    (false, true, _) => Vote::Negative,
                    (false, false, false) => Vote::Negative,
                    (false, false, true) => Vote::Abstain,
                }
            }
        }))
        .with(Lf::plain(
            "kw_photo_strict_en",
            LfCategory::ContentHeuristic,
            true,
            |d: &ProductDoc| {
                // Two distinct photography terms: high-precision English
                // positive rule.
                let mut seen = std::collections::HashSet::new();
                for w in d.text.split_whitespace() {
                    if PHOTO_CORE.contains(&w) || PHOTO_ACCESSORIES.contains(&w) {
                        seen.insert(w);
                    }
                }
                if seen.len() >= 2 {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            },
        ))
        // --- Knowledge-Graph translations in ten languages (§3.2),
        // --- bipolar like the keyword rule it generalizes. The live
        // --- graph is an offline resource → non-servable.
        .with(Lf::graph(
            "kg_multilang",
            false,
            move |d: &ProductDoc, _kg| {
                let mut photo = false;
                let mut foreign = false;
                for w in d.text.split_whitespace() {
                    photo |= cg_pos.alias_in_photography(w);
                    foreign |= cg_pos.alias_is_foreign_accessory(w);
                }
                match (photo, foreign) {
                    (true, _) => Vote::Positive,
                    (false, true) => Vote::Negative,
                    (false, false) => Vote::Abstain,
                }
            },
        ))
        .with(Lf::graph(
            "kg_foreign_product",
            false,
            move |d: &ProductDoc, _kg| {
                // Any-language mention of a *non-photography product*
                // (phones, laptops, ...) without photography terms.
                let mut photo = false;
                let mut foreign_product = false;
                for w in d.text.split_whitespace() {
                    photo |= cg_neg.alias_in_photography(w);
                    if let Some((_, id)) = cg_neg.graph.resolve_alias(w) {
                        foreign_product |= cg_neg.graph.entity(id).kind
                            == drybell_kg::NodeKind::Product
                            && !cg_neg.graph.in_category_subtree(id, cg_neg.photography);
                    }
                }
                if foreign_product && !photo {
                    Vote::Negative
                } else {
                    Vote::Abstain
                }
            },
        ))
        // --- Topic-model-based negative heuristic ("content obviously
        // --- unrelated to the category of products of interest", §3.2).
        .with(Lf::nlp("topic_noncommerce", |_d: &ProductDoc, nlp| {
            let commerce = nlp.topic_probs[Topic::Commerce.index()]
                + nlp.topic_probs[Topic::Technology.index()];
            if commerce < 0.15 {
                Vote::Negative
            } else {
                Vote::Abstain
            }
        }))
        // --- A second graph signal: a core product named alongside an
        // --- accessory term implies the photography sense of ambiguous
        // --- accessory words like "charger".
        .with(Lf::graph(
            "kg_core_plus_accessory",
            false,
            move |d: &ProductDoc, kg| {
                let mut saw_core = false;
                let mut saw_acc = false;
                for w in d.text.split_whitespace() {
                    if let Some((_, id)) = kg.resolve_alias(w) {
                        if kg.in_category_subtree(id, cg_combo.cameras) {
                            saw_core = true;
                        } else if kg.in_category_subtree(id, cg_combo.camera_accessories) {
                            saw_acc = true;
                        }
                    }
                }
                if saw_core && saw_acc {
                    Vote::Positive
                } else {
                    Vote::Abstain
                }
            },
        ))
        // --- The depreciated legacy classifier (§3.2): only its positive
        // --- side survived the category expansion.
        .with(
            Lf::plain(
                "legacy_positive_side",
                LfCategory::ModelBased,
                false,
                |d: &ProductDoc| {
                    if d.legacy_score > 0.75 {
                        Vote::Positive
                    } else {
                        Vote::Abstain
                    }
                },
            )
            .with_feature_spaces(&["legacy-classifier"]),
        )
        // --- Product-free chatter is not product content. Servable: the
        // --- alias table is a static keyword list exported from the KG
        // --- once at build time and embedded in the serving binary — the
        // --- live graph is not queried.
        .with(Lf::plain(
            "no_product_terms",
            LfCategory::ContentHeuristic,
            true,
            move |d: &ProductDoc| {
                let any_product = d.text.split_whitespace().any(|w| {
                    cg_none
                        .graph
                        .resolve_alias(w)
                        .map(|(_, id)| {
                            matches!(
                                cg_none.graph.entity(id).kind,
                                drybell_kg::NodeKind::Product | drybell_kg::NodeKind::Accessory
                            )
                        })
                        .unwrap_or(false)
                });
                if any_product {
                    Vote::Abstain
                } else {
                    Vote::Negative
                }
            },
        ))
}

/// Servable featurization: hashed unigrams plus the locale.
pub fn featurize(doc: &ProductDoc, hasher: &FeatureHasher) -> SparseVector {
    let toks = drybell_nlp::tokenizer::lower_tokens(&doc.text);
    let parts = [
        hasher.namespaced_bag("text", &toks),
        hasher.weighted(&[(format!("lang={}", doc.lang), 1.0)]),
    ];
    drybell_features::hashing::concat(&parts).l2_normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_lf::executor::execute_in_memory;

    fn small() -> ProductDataset {
        generate(&ProductTaskConfig {
            num_unlabeled: 5000,
            num_dev: 500,
            num_test: 500,
            pos_rate: 0.05,
            english_rate: 0.55,
            seed: 3,
        })
    }

    #[test]
    fn paper_preset_matches_table_1() {
        let cfg = ProductTaskConfig::paper();
        assert_eq!(cfg.num_unlabeled, 6_500_000);
        assert_eq!(cfg.num_dev, 14_000);
        assert_eq!(cfg.num_test, 13_000);
        assert!((cfg.pos_rate - 0.0148).abs() < 1e-12);
    }

    #[test]
    fn lf_set_matches_table_1() {
        let ds = small();
        let set = lf_set(ds.kg.clone());
        assert_eq!(
            set.len(),
            8,
            "Table 1: eight LFs for product classification"
        );
        let mask = set.servable_mask();
        assert!(mask.iter().any(|&s| s));
        assert!(mask.iter().any(|&s| !s));
    }

    #[test]
    fn documents_span_ten_languages() {
        let ds = small();
        let langs: std::collections::HashSet<&str> =
            ds.unlabeled.iter().map(|d| d.lang.as_str()).collect();
        assert_eq!(langs.len(), 10, "got {langs:?}");
        let en = ds.unlabeled.iter().filter(|d| d.lang == "en").count();
        assert!((en as f64 / ds.unlabeled.len() as f64 - 0.55).abs() < 0.05);
    }

    #[test]
    fn record_roundtrip() {
        let ds = small();
        let buf = codec::encode_record(&ds.unlabeled[1]);
        let back: ProductDoc = codec::decode_record(&buf).unwrap();
        assert_eq!(back, ds.unlabeled[1]);
    }

    #[test]
    fn lfs_are_informative_on_generated_data() {
        let ds = small();
        let set = lf_set(ds.kg.clone());
        let ext = text_extractor();
        let (matrix, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, 4).unwrap();
        for (j, name) in set.names().iter().enumerate() {
            let acc = matrix
                .empirical_accuracy(j, &ds.unlabeled_gold)
                .unwrap()
                .unwrap_or_else(|| panic!("LF {name} never voted"));
            let cov = matrix.coverage(j);
            assert!(
                acc > 0.55,
                "LF {name}: accuracy {acc:.3} (coverage {cov:.3})"
            );
            assert!(cov > 0.002, "LF {name}: coverage {cov:.4}");
        }
        assert!(matrix.label_density() > 0.7);
    }

    /// The KG LF must catch non-English positives the English keyword LF
    /// misses — the reason the paper queried translations at all.
    #[test]
    fn kg_lf_covers_non_english_positives() {
        let ds = small();
        let set = lf_set(ds.kg.clone());
        let ext = text_extractor();
        let (matrix, _) = execute_in_memory(&set, Some(&ext), &ds.unlabeled, 4).unwrap();
        let names = set.names();
        let kw = names.iter().position(|n| n == "kw_en").unwrap();
        let kg = names.iter().position(|n| n == "kg_multilang").unwrap();
        let mut kw_hits = 0u64;
        let mut kg_hits = 0u64;
        for ((doc, gold), row) in ds
            .unlabeled
            .iter()
            .zip(&ds.unlabeled_gold)
            .zip(matrix.rows())
        {
            if *gold == Label::Positive && doc.lang != "en" {
                if row[kw] == 1 {
                    kw_hits += 1;
                }
                if row[kg] == 1 {
                    kg_hits += 1;
                }
            }
        }
        assert!(
            kg_hits > kw_hits.max(1) * 2,
            "KG translations must dominate on non-English positives: kg={kg_hits} kw={kw_hits}"
        );
    }

    #[test]
    fn legacy_classifier_is_blind_to_accessories() {
        // Positives that mention only accessories (the expanded category)
        // should rarely get a high legacy score.
        let ds = small();
        let mut acc_high = 0u64;
        let mut acc_total = 0u64;
        for (doc, gold) in ds.unlabeled.iter().zip(&ds.unlabeled_gold) {
            if *gold == Label::Positive && doc.lang == "en" {
                let has_core = doc.text.split_whitespace().any(|w| PHOTO_CORE.contains(&w));
                if !has_core {
                    acc_total += 1;
                    if doc.legacy_score > 0.75 {
                        acc_high += 1;
                    }
                }
            }
        }
        assert!(acc_total > 0);
        assert!(
            (acc_high as f64) < 0.2 * acc_total as f64,
            "legacy model should miss accessory-only positives: {acc_high}/{acc_total}"
        );
    }

    #[test]
    fn alias_for_translates_and_falls_back() {
        assert_eq!(alias_for("camera", "es"), "camara");
        assert_eq!(alias_for("camera", "en"), "camera");
        assert_eq!(alias_for("headphones", "de"), "kopfhoerer");
        assert_eq!(alias_for("unknown-word", "fr"), "unknown-word");
    }
}
