//! Word tokenization with source spans.
//!
//! Splits on whitespace and punctuation while keeping byte spans so that
//! downstream annotators (NER, sentiment) can refer back to the original
//! text. Intentionally simple — the paper's pipelines treat tokenization
//! as a solved component of the NLP service.

/// One token with its span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appeared.
    pub text: String,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// Lowercased token text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// `true` if the first character is uppercase.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// `true` if every alphabetic character is uppercase and the token has
    /// at least two characters (an acronym like "NASA").
    pub fn is_acronym(&self) -> bool {
        self.text.chars().count() >= 2
            && self
                .text
                .chars()
                .all(|c| !c.is_alphabetic() || c.is_uppercase())
            && self.text.chars().any(|c| c.is_alphabetic())
    }

    /// `true` if the token is all digits.
    pub fn is_numeric(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_digit())
    }
}

/// Tokenize `text` into alphanumeric runs (plus internal hyphens and
/// apostrophes, so "state-of-the-art" and "don't" stay single tokens).
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (start_byte, c) = bytes[i];
        if c.is_alphanumeric() {
            let mut j = i + 1;
            while j < bytes.len() {
                let (_, cj) = bytes[j];
                let keep = cj.is_alphanumeric()
                    || ((cj == '-' || cj == '\'')
                        && j + 1 < bytes.len()
                        && bytes[j + 1].1.is_alphanumeric());
                if keep {
                    j += 1;
                } else {
                    break;
                }
            }
            let end_byte = if j < bytes.len() {
                bytes[j].0
            } else {
                text.len()
            };
            tokens.push(Token {
                text: text[start_byte..end_byte].to_owned(),
                start: start_byte,
                end: end_byte,
            });
            i = j;
        } else {
            i += 1;
        }
    }
    tokens
}

/// Lowercased token strings (a common convenience for featurizers).
pub fn lower_tokens(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.lower()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_on_whitespace_and_punct() {
        let toks = tokenize("Hello, world! 42 times.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["Hello", "world", "42", "times"]);
    }

    #[test]
    fn keeps_internal_hyphens_and_apostrophes() {
        let texts: Vec<String> = tokenize("state-of-the-art don't -start end-")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["state-of-the-art", "don't", "start", "end"]);
    }

    #[test]
    fn spans_slice_back_to_source() {
        let text = "Ärger über große Häuser";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn classification_helpers() {
        let toks = tokenize("NASA Alice runs 500 miles");
        assert!(toks[0].is_acronym());
        assert!(toks[0].is_capitalized());
        assert!(toks[1].is_capitalized());
        assert!(!toks[1].is_acronym());
        assert!(toks[3].is_numeric());
        assert!(!toks[4].is_capitalized());
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ---").is_empty());
    }

    proptest! {
        #[test]
        fn prop_spans_always_valid(text in ".{0,200}") {
            for t in tokenize(&text) {
                prop_assert!(t.start < t.end);
                prop_assert!(t.end <= text.len());
                prop_assert_eq!(&text[t.start..t.end], t.text.as_str());
                prop_assert!(!t.text.is_empty());
            }
        }

        #[test]
        fn prop_tokens_are_ordered_and_disjoint(text in ".{0,200}") {
            let toks = tokenize(&text);
            for pair in toks.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start);
            }
        }
    }
}
