//! Character-trigram language identification.
//!
//! The product-classification application queries the Knowledge Graph "for
//! translations of keywords in ten languages" (§3.2); content arrives in
//! any of them. This detector scores character trigrams against per-language
//! profiles built from small seed texts, mirroring how lightweight
//! production language-ID models work.

use std::collections::HashMap;

/// The ten languages the product task covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// English
    En,
    /// Spanish
    Es,
    /// French
    Fr,
    /// German
    De,
    /// Italian
    It,
    /// Portuguese
    Pt,
    /// Dutch
    Nl,
    /// Swedish
    Sv,
    /// Polish
    Pl,
    /// Turkish
    Tr,
}

impl Lang {
    /// Every supported language, in a stable order.
    pub const ALL: [Lang; 10] = [
        Lang::En,
        Lang::Es,
        Lang::Fr,
        Lang::De,
        Lang::It,
        Lang::Pt,
        Lang::Nl,
        Lang::Sv,
        Lang::Pl,
        Lang::Tr,
    ];

    /// ISO-639-1 style code.
    pub fn code(self) -> &'static str {
        match self {
            Lang::En => "en",
            Lang::Es => "es",
            Lang::Fr => "fr",
            Lang::De => "de",
            Lang::It => "it",
            Lang::Pt => "pt",
            Lang::Nl => "nl",
            Lang::Sv => "sv",
            Lang::Pl => "pl",
            Lang::Tr => "tr",
        }
    }

    /// Parse an ISO code.
    pub fn from_code(code: &str) -> Option<Lang> {
        Lang::ALL.iter().copied().find(|l| l.code() == code)
    }

    /// Seed text used to build this language's trigram profile. Also used
    /// by `drybell-datagen` as filler text for non-English documents, so
    /// detection on synthetic corpora is realistic.
    pub fn seed_text(self) -> &'static str {
        match self {
            Lang::En => {
                "the quick brown fox jumps over the lazy dog and the people of the town watch \
                 with great interest while they share their thoughts about the weather this is \
                 what everyone wants to know about the thing that they have seen"
            }
            Lang::Es => {
                "el rapido zorro marron salta sobre el perro perezoso y la gente del pueblo \
                 mira con gran interes mientras comparten sus pensamientos sobre el tiempo esto \
                 es lo que todos quieren saber sobre la cosa que han visto"
            }
            Lang::Fr => {
                "le rapide renard brun saute par dessus le chien paresseux et les gens de la \
                 ville regardent avec beaucoup d'interet pendant qu'ils partagent leurs pensees \
                 sur le temps c'est ce que tout le monde veut savoir sur la chose qu'ils ont vue"
            }
            Lang::De => {
                "der schnelle braune fuchs springt ueber den faulen hund und die leute der \
                 stadt schauen mit grossem interesse zu waehrend sie ihre gedanken ueber das \
                 wetter teilen das ist was alle ueber die sache wissen wollen die sie gesehen haben"
            }
            Lang::It => {
                "la rapida volpe marrone salta sopra il cane pigro e la gente della citta \
                 guarda con grande interesse mentre condividono i loro pensieri sul tempo questo \
                 e cio che tutti vogliono sapere sulla cosa che hanno visto"
            }
            Lang::Pt => {
                "a rapida raposa marrom pula sobre o cachorro preguicoso e as pessoas da cidade \
                 observam com grande interesse enquanto compartilham seus pensamentos sobre o \
                 tempo isso e o que todos querem saber sobre a coisa que viram"
            }
            Lang::Nl => {
                "de snelle bruine vos springt over de luie hond en de mensen van de stad kijken \
                 met grote belangstelling toe terwijl ze hun gedachten over het weer delen dit \
                 is wat iedereen wil weten over het ding dat ze hebben gezien"
            }
            Lang::Sv => {
                "den snabba bruna raven hoppar over den lata hunden och folket i staden tittar \
                 med stort intresse medan de delar sina tankar om vadret detta ar vad alla vill \
                 veta om saken som de har sett"
            }
            Lang::Pl => {
                "szybki brazowy lis przeskakuje nad leniwym psem a ludzie z miasta patrza z \
                 wielkim zainteresowaniem podczas gdy dziela sie swoimi myslami o pogodzie to \
                 jest to co wszyscy chca wiedziec o rzeczy ktora widzieli"
            }
            Lang::Tr => {
                "hizli kahverengi tilki tembel kopegin uzerinden atlar ve kasabanin insanlari \
                 hava hakkinda dusuncelerini paylasirken buyuk bir ilgiyle izler bu herkesin \
                 gordukleri sey hakkinda bilmek istedigi seydir"
            }
        }
    }
}

/// Trigram-profile language detector.
#[derive(Debug, Clone)]
pub struct LangDetector {
    /// Per-language trigram relative frequencies.
    profiles: Vec<(Lang, HashMap<[u8; 3], f64>)>,
}

fn trigrams(text: &str) -> HashMap<[u8; 3], f64> {
    let normalized: Vec<u8> = text
        .to_lowercase()
        .bytes()
        .map(|b| if b.is_ascii_alphabetic() { b } else { b' ' })
        .collect();
    let mut counts: HashMap<[u8; 3], f64> = HashMap::new();
    let mut total = 0.0;
    for w in normalized.windows(3) {
        let tri = [w[0], w[1], w[2]];
        if tri.iter().all(|&b| b == b' ') {
            continue;
        }
        *counts.entry(tri).or_insert(0.0) += 1.0;
        total += 1.0;
    }
    if total > 0.0 {
        // drybell-lint: allow(determinism) — scaling every value by the same constant commutes with visit order
        for v in counts.values_mut() {
            *v /= total;
        }
    }
    counts
}

impl Default for LangDetector {
    fn default() -> LangDetector {
        LangDetector::new()
    }
}

impl LangDetector {
    /// Build the detector from the built-in seed texts.
    pub fn new() -> LangDetector {
        LangDetector {
            profiles: Lang::ALL
                .iter()
                .map(|&l| (l, trigrams(l.seed_text())))
                .collect(),
        }
    }

    /// Cosine-style similarity score of `text` against each language.
    pub fn scores(&self, text: &str) -> Vec<(Lang, f64)> {
        let target = trigrams(text);
        self.profiles
            .iter()
            .map(|(lang, profile)| {
                let mut dot = 0.0;
                for (tri, w) in &target {
                    if let Some(pw) = profile.get(tri) {
                        dot += w * pw;
                    }
                }
                (*lang, dot)
            })
            .collect()
    }

    /// The most likely language, or `None` if no trigram matched at all
    /// (e.g. empty or non-alphabetic text).
    pub fn detect(&self, text: &str) -> Option<Lang> {
        let scores = self.scores(text);
        let (lang, best) = scores.into_iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
        (best > 0.0).then_some(lang)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_each_seed_language() {
        let det = LangDetector::new();
        for lang in Lang::ALL {
            let detected = det.detect(lang.seed_text());
            assert_eq!(detected, Some(lang), "seed text for {:?}", lang);
        }
    }

    #[test]
    fn detects_short_phrases() {
        let det = LangDetector::new();
        assert_eq!(
            det.detect("the people want to know what they have seen"),
            Some(Lang::En)
        );
        assert_eq!(
            det.detect("la gente del pueblo quiere saber sobre el perro"),
            Some(Lang::Es)
        );
    }

    #[test]
    fn empty_or_nonalpha_is_none() {
        let det = LangDetector::new();
        assert_eq!(det.detect(""), None);
        assert_eq!(det.detect("12345 !!! ???"), None);
    }

    #[test]
    fn codes_roundtrip() {
        for lang in Lang::ALL {
            assert_eq!(Lang::from_code(lang.code()), Some(lang));
        }
        assert_eq!(Lang::from_code("xx"), None);
    }

    #[test]
    fn scores_cover_all_languages() {
        let det = LangDetector::new();
        let scores = det.scores("hello world");
        assert_eq!(scores.len(), 10);
    }
}
