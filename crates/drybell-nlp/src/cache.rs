//! Memoizing front-end for the NLP model server.
//!
//! §5.1's motivation for per-node model servers is cost: the NLP models
//! "are too computationally expensive to run for all content submitted to
//! Google". Pipelines that re-process the same content (LF development
//! iterations, the dev/test splits scored by multiple experiments) pay
//! that cost repeatedly. [`CachedNlpServer`] wraps an [`NlpServer`] with a
//! bounded, hash-keyed memo table — the standard deployment trick — and
//! exposes hit/miss statistics so the savings show up in job counters.

use crate::server::{NlpError, NlpResult, NlpServer};
use drybell_obs::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;

/// FNV-1a 64-bit hash (local copy; `drybell-nlp` sits below
/// `drybell-features` in the dependency order).
fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls answered from the memo table.
    pub hits: u64,
    /// Calls forwarded to the underlying server.
    pub misses: u64,
    /// Entries evicted after the table filled.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when never called).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded memoizing wrapper around [`NlpServer`].
///
/// Keys are FNV-1a hashes of the text; eviction is random-ish (the entry
/// displaced is whichever occupies the reused slot list position), which
/// is cheap and adequate for corpus-shaped reuse patterns.
pub struct CachedNlpServer {
    inner: NlpServer,
    capacity: usize,
    state: Mutex<CacheState>,
}

struct CacheState {
    map: HashMap<u64, NlpResult>,
    /// Insertion ring for eviction.
    ring: Vec<u64>,
    cursor: usize,
    stats: CacheStats,
}

impl CachedNlpServer {
    /// Wrap `inner` with a memo table of at most `capacity` entries.
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: NlpServer, capacity: usize) -> CachedNlpServer {
        assert!(capacity > 0, "cache capacity must be positive");
        CachedNlpServer {
            inner,
            capacity,
            state: Mutex::new(CacheState {
                map: HashMap::with_capacity(capacity),
                ring: Vec::with_capacity(capacity),
                cursor: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The wrapped server.
    pub fn inner(&self) -> &NlpServer {
        &self.inner
    }

    /// Annotate `text`, consulting the memo table first.
    pub fn annotate(&self, text: &str) -> NlpResult {
        let key = fnv1a64(text.as_bytes());
        {
            let mut state = self.state.lock();
            if let Some(hit) = state.map.get(&key).cloned() {
                state.stats.hits += 1;
                return hit;
            }
            state.stats.misses += 1;
        }
        // Compute outside the lock: annotation is the expensive part and
        // other workers shouldn't serialize behind it.
        let result = self.inner.annotate(text);
        self.insert_result(key, &result);
        result
    }

    /// Annotate `text` through the memo table, surfacing service failures.
    ///
    /// A cache hit is served even while the backing server is failing —
    /// the memo table acts as a shield during an outage. A miss forwards
    /// to [`NlpServer::try_annotate`]; failed calls are *never* cached, so
    /// the next request for the same text retries the server.
    pub fn try_annotate(&self, text: &str) -> Result<NlpResult, NlpError> {
        let key = fnv1a64(text.as_bytes());
        {
            let mut state = self.state.lock();
            if let Some(hit) = state.map.get(&key).cloned() {
                state.stats.hits += 1;
                return Ok(hit);
            }
            state.stats.misses += 1;
        }
        let result = self.inner.try_annotate(text)?;
        self.insert_result(key, &result);
        Ok(result)
    }

    /// Insert a freshly computed result, enforcing the capacity bound.
    fn insert_result(&self, key: u64, result: &NlpResult) {
        let mut state = self.state.lock();
        if state.map.contains_key(&key) {
            // Another worker missed on the same key and inserted while we
            // were computing. Keep theirs: inserting again would push a
            // duplicate ring entry, and a later eviction of one copy
            // leaves the other pointing at nothing — from there the
            // capacity bound decays (the drybell-modelcheck cache model
            // finds exactly this schedule).
            return;
        }
        if state.map.len() >= self.capacity {
            let cursor = state.cursor;
            let evict = state.ring[cursor];
            state.map.remove(&evict);
            state.ring[cursor] = key;
            state.cursor = (cursor + 1) % self.capacity;
            state.stats.evictions += 1;
        } else {
            state.ring.push(key);
        }
        state.map.insert(key, result.clone());
    }

    /// Snapshot of cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Publish the current [`CacheStats`] into `metrics` as the gauges
    /// `nlp_cache/hits`, `nlp_cache/misses`, `nlp_cache/evictions`, and
    /// `nlp_cache/size` (resident entries).
    ///
    /// Gauges (not counters) because this is a point-in-time export of an
    /// absolute level: calling it again overwrites rather than
    /// double-counts.
    pub fn export_to(&self, metrics: &MetricsRegistry) {
        let (stats, size) = {
            let state = self.state.lock();
            (state.stats, state.map.len())
        };
        metrics.gauge("nlp_cache/hits").set(stats.hits as i64);
        metrics.gauge("nlp_cache/misses").set(stats.misses as i64);
        metrics
            .gauge("nlp_cache/evictions")
            .set(stats.evictions as i64);
        metrics.gauge("nlp_cache/size").set(size as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_text_hits_the_cache() {
        let cache = CachedNlpServer::new(NlpServer::new().with_cost_us(100), 16);
        let a = cache.annotate("Alice Johnson buys a camera");
        let b = cache.annotate("Alice Johnson buys a camera");
        assert_eq!(a.entities, b.entities);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // The expensive server only ran once.
        assert_eq!(cache.inner().stats().calls, 1);
    }

    #[test]
    fn distinct_texts_miss() {
        let cache = CachedNlpServer::new(NlpServer::new(), 16);
        for i in 0..5 {
            cache.annotate(&format!("text number {i}"));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let cache = CachedNlpServer::new(NlpServer::new(), 4);
        for i in 0..10 {
            cache.annotate(&format!("item {i}"));
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 6);
        // Re-annotating the most recent items can still hit.
        cache.annotate("item 9");
        assert!(cache.stats().hits >= 1 || cache.stats().misses == 11);
    }

    #[test]
    fn evicted_entries_recompute() {
        let cache = CachedNlpServer::new(NlpServer::new(), 2);
        cache.annotate("one");
        cache.annotate("two");
        cache.annotate("three"); // evicts "one"
        cache.annotate("one"); // miss again
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CachedNlpServer::new(NlpServer::new(), 0);
    }

    #[test]
    fn export_to_publishes_stats_as_gauges() {
        let metrics = MetricsRegistry::new();
        let cache = CachedNlpServer::new(NlpServer::new(), 2);
        cache.annotate("one");
        cache.annotate("one");
        cache.annotate("two");
        cache.annotate("three"); // evicts
        cache.export_to(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("nlp_cache/hits"), 1);
        assert_eq!(snap.gauge("nlp_cache/misses"), 3);
        assert_eq!(snap.gauge("nlp_cache/evictions"), 1);
        // Re-exporting overwrites, never double-counts.
        cache.export_to(&metrics);
        assert_eq!(metrics.snapshot().gauge("nlp_cache/misses"), 3);
    }

    #[test]
    fn try_annotate_failures_are_never_cached() {
        let plan = drybell_dataflow::FaultPlan::seeded(2).fail_nlp_text("down");
        let cache = CachedNlpServer::new(NlpServer::new().with_fault_plan(plan), 16);
        assert!(cache.try_annotate("down").is_err());
        assert!(
            cache.try_annotate("down").is_err(),
            "failure must not be memoized"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "each failed call must reach the server");
        assert_eq!(stats.hits, 0);
        // Healthy texts behave normally and do memoize.
        assert!(cache.try_annotate("up").is_ok());
        assert!(cache.try_annotate("up").is_ok());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_hits_shield_against_a_failing_server() {
        // The server fails every try_annotate for this text, but a prior
        // cached result keeps answering.
        let plan = drybell_dataflow::FaultPlan::seeded(2).fail_nlp_text("flaky text");
        let cache = CachedNlpServer::new(NlpServer::new().with_fault_plan(plan), 16);
        // Seed the memo table through the infallible path (a call made
        // while the service was healthy).
        cache.annotate("flaky text");
        let shielded = cache.try_annotate("flaky text").unwrap();
        assert!(!shielded.tokens.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_annotation_is_safe() {
        let cache = std::sync::Arc::new(CachedNlpServer::new(NlpServer::new(), 64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        cache.annotate(&format!("shared text {}", (i + t) % 20));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.hits > 0, "concurrent reuse should hit");
    }
}
