//! # drybell-nlp
//!
//! Simulated organizational NLP services, standing in for the
//! "general-purpose natural language processing models" that Snorkel
//! DryBell labeling functions call through per-node model servers (§5.1).
//!
//! The paper treats these models as black boxes maintained by other teams:
//! LFs only see their *signatures* (`text → entities`, `text → topics`).
//! This crate provides the same signatures with controllable quality:
//!
//! * [`tokenizer`] — word tokenizer with span tracking.
//! * [`ner`] — gazetteer- and heuristic-based named entity recognition
//!   (the "custom named entity recognition models maintained internally"
//!   used by the topic-classification LFs).
//! * [`topic_model`] — a multinomial naive-Bayes semantic categorizer:
//!   deliberately *coarse-grained*, like the paper's internal topic model
//!   that is "far too coarse-grained for the targeted task" yet useful as
//!   a negative labeling heuristic.
//! * [`langid`] — character-trigram language identification over the ten
//!   languages the product-classification task covers.
//! * [`sentiment`] — a small lexicon scorer (an extra organizational
//!   resource for tests and examples).
//! * [`server`] — bundles everything behind an [`server::NlpServer`] that
//!   implements the dataflow `Service` pattern and tracks simulated cost,
//!   making these models *non-servable* resources in the sense of §4.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod langid;
pub mod ner;
pub mod sentiment;
pub mod server;
pub mod tokenizer;
pub mod topic_model;

pub use cache::{CacheStats, CachedNlpServer};
pub use ner::{Entity, EntityKind, NerTagger};
pub use server::{NlpError, NlpResult, NlpServer};
pub use tokenizer::{tokenize, Token};
pub use topic_model::{SemanticCategorizer, Topic};
