//! Named entity recognition.
//!
//! A gazetteer- and heuristic-based tagger playing the role of the "custom
//! named entity recognition (NER) models maintained internally at Google"
//! that the topic-classification labeling functions query (§3.1). The
//! built-in gazetteers are shared with `drybell-datagen`, which mentions
//! the same entities when synthesizing corpora — so the tagger has real
//! signal to find, with heuristics (capitalization, titles, corporate
//! suffixes) providing recall beyond the gazetteer and a controlled amount
//! of noise.

use crate::tokenizer::{tokenize, Token};
use std::collections::HashSet;

/// The kind of a recognized entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A person's proper name.
    Person,
    /// A company or institution.
    Organization,
    /// A geographic location.
    Location,
    /// A commercial product.
    Product,
}

/// One recognized entity mention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Surface text of the mention.
    pub text: String,
    /// What kind of entity.
    pub kind: EntityKind,
    /// Byte span start in the source text.
    pub start: usize,
    /// Byte span end in the source text.
    pub end: usize,
}

/// First names known to the person gazetteer (shared with datagen).
pub const PERSON_FIRST_NAMES: &[&str] = &[
    "alice", "robert", "maria", "james", "elena", "david", "sofia", "michael", "laura", "carlos",
    "nina", "peter", "amara", "kenji", "fatima", "oliver", "priya", "lucas", "ingrid", "tomas",
];

/// Last names known to the person gazetteer (shared with datagen).
pub const PERSON_LAST_NAMES: &[&str] = &[
    "johnson",
    "garcia",
    "smith",
    "tanaka",
    "mueller",
    "rossi",
    "kim",
    "patel",
    "novak",
    "silva",
    "brown",
    "ivanov",
    "dubois",
    "larsen",
    "costa",
    "okafor",
    "haddad",
    "lindqvist",
    "moreau",
    "fischer",
];

/// Organization names known to the gazetteer (shared with datagen).
pub const ORGANIZATIONS: &[&str] = &[
    "acme",
    "globex",
    "initech",
    "umbrella",
    "vandelay",
    "wonka",
    "stark",
    "wayne",
    "tyrell",
    "cyberdyne",
    "aperture",
    "hooli",
    "dunder",
    "sterling",
    "oscorp",
];

/// Location names known to the gazetteer (shared with datagen).
pub const LOCATIONS: &[&str] = &[
    "springfield",
    "rivertown",
    "lakeside",
    "hillview",
    "northport",
    "eastfield",
    "westbrook",
    "southgate",
    "maplewood",
    "cedarville",
    "stonebridge",
    "fairhaven",
];

/// Product words known to the gazetteer (shared with datagen and the
/// knowledge graph).
pub const PRODUCT_WORDS: &[&str] = &[
    "camera",
    "lens",
    "tripod",
    "flash",
    "battery",
    "charger",
    "drone",
    "gimbal",
    "filter",
    "strap",
    "phone",
    "laptop",
    "tablet",
    "headphones",
    "speaker",
    "monitor",
    "keyboard",
    "printer",
    "router",
    "console",
];

/// Honorific titles that signal a following person name.
const TITLES: &[&str] = &["mr", "mrs", "ms", "dr", "prof", "sir"];

/// Corporate suffixes that signal a preceding organization name.
const ORG_SUFFIXES: &[&str] = &["inc", "corp", "ltd", "llc", "gmbh", "co"];

/// The gazetteer-plus-heuristics NER tagger.
#[derive(Debug, Clone)]
pub struct NerTagger {
    persons_first: HashSet<&'static str>,
    persons_last: HashSet<&'static str>,
    orgs: HashSet<&'static str>,
    locations: HashSet<&'static str>,
    products: HashSet<&'static str>,
}

impl Default for NerTagger {
    fn default() -> NerTagger {
        NerTagger::new()
    }
}

impl NerTagger {
    /// Build the tagger with the built-in gazetteers.
    pub fn new() -> NerTagger {
        NerTagger {
            persons_first: PERSON_FIRST_NAMES.iter().copied().collect(),
            persons_last: PERSON_LAST_NAMES.iter().copied().collect(),
            orgs: ORGANIZATIONS.iter().copied().collect(),
            locations: LOCATIONS.iter().copied().collect(),
            products: PRODUCT_WORDS.iter().copied().collect(),
        }
    }

    /// Tag all entity mentions in `text`.
    pub fn tag(&self, text: &str) -> Vec<Entity> {
        let tokens = tokenize(text);
        let mut entities = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            if let Some((entity, consumed)) = self.match_at(&tokens, i) {
                entities.push(entity);
                i += consumed;
            } else {
                i += 1;
            }
        }
        entities
    }

    /// People mentioned in `text` (the signature the celebrity-LF example
    /// in §5.1 consumes: `nlp.entities.people`).
    pub fn people(&self, text: &str) -> Vec<Entity> {
        self.tag(text)
            .into_iter()
            .filter(|e| e.kind == EntityKind::Person)
            .collect()
    }

    fn match_at(&self, tokens: &[Token], i: usize) -> Option<(Entity, usize)> {
        let tok = &tokens[i];
        let low = tok.lower();

        // Title + capitalized word → person ("Dr. Chen").
        if TITLES.contains(&low.as_str()) {
            if let Some(next) = tokens.get(i + 1) {
                if next.is_capitalized() {
                    return Some((
                        Entity {
                            text: format!("{} {}", tok.text, next.text),
                            kind: EntityKind::Person,
                            start: tok.start,
                            end: next.end,
                        },
                        2,
                    ));
                }
            }
        }

        // Gazetteer first name (capitalized), optionally followed by a
        // capitalized last name.
        if tok.is_capitalized() && self.persons_first.contains(low.as_str()) {
            if let Some(next) = tokens.get(i + 1) {
                if next.is_capitalized() && self.persons_last.contains(next.lower().as_str()) {
                    return Some((
                        Entity {
                            text: format!("{} {}", tok.text, next.text),
                            kind: EntityKind::Person,
                            start: tok.start,
                            end: next.end,
                        },
                        2,
                    ));
                }
            }
            return Some((
                Entity {
                    text: tok.text.clone(),
                    kind: EntityKind::Person,
                    start: tok.start,
                    end: tok.end,
                },
                1,
            ));
        }

        // Capitalized gazetteer last name alone → person.
        if tok.is_capitalized() && self.persons_last.contains(low.as_str()) {
            return Some((self.single(tok, EntityKind::Person), 1));
        }

        // Organization gazetteer, or any capitalized word followed by a
        // corporate suffix ("Figment Inc").
        if self.orgs.contains(low.as_str()) && tok.is_capitalized() {
            return Some((self.single(tok, EntityKind::Organization), 1));
        }
        if tok.is_capitalized() {
            if let Some(next) = tokens.get(i + 1) {
                if ORG_SUFFIXES.contains(&next.lower().as_str()) {
                    return Some((
                        Entity {
                            text: format!("{} {}", tok.text, next.text),
                            kind: EntityKind::Organization,
                            start: tok.start,
                            end: next.end,
                        },
                        2,
                    ));
                }
            }
        }

        // Location gazetteer (capitalized).
        if tok.is_capitalized() && self.locations.contains(low.as_str()) {
            return Some((self.single(tok, EntityKind::Location), 1));
        }

        // Product gazetteer (any case — product words appear in running
        // text).
        if self.products.contains(low.as_str()) {
            return Some((self.single(tok, EntityKind::Product), 1));
        }

        None
    }

    fn single(&self, tok: &Token, kind: EntityKind) -> Entity {
        Entity {
            text: tok.text.clone(),
            kind,
            start: tok.start,
            end: tok.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, EntityKind)> {
        NerTagger::new()
            .tag(text)
            .into_iter()
            .map(|e| (e.text, e.kind))
            .collect()
    }

    #[test]
    fn finds_gazetteer_persons() {
        let found = kinds("Alice Johnson met Robert in Springfield.");
        assert!(found.contains(&("Alice Johnson".into(), EntityKind::Person)));
        assert!(found.contains(&("Robert".into(), EntityKind::Person)));
        assert!(found.contains(&("Springfield".into(), EntityKind::Location)));
    }

    #[test]
    fn title_heuristic_tags_unknown_names() {
        let found = kinds("Dr Chen presented the findings.");
        assert!(found.contains(&("Dr Chen".into(), EntityKind::Person)));
    }

    #[test]
    fn org_suffix_heuristic() {
        let found = kinds("Figment Inc shipped a new camera.");
        assert!(found.contains(&("Figment Inc".into(), EntityKind::Organization)));
        assert!(found.contains(&("camera".into(), EntityKind::Product)));
    }

    #[test]
    fn lowercase_names_are_not_persons() {
        // Gazetteer words in lowercase running text must not fire the
        // person rule ("alice blue is a color").
        let found = kinds("the alice pattern and the robert protocol");
        assert!(found.iter().all(|(_, k)| *k != EntityKind::Person));
    }

    #[test]
    fn products_fire_in_any_case() {
        let found = kinds("I bought a Tripod and a charger");
        assert_eq!(
            found,
            vec![
                ("Tripod".into(), EntityKind::Product),
                ("charger".into(), EntityKind::Product)
            ]
        );
    }

    #[test]
    fn people_helper_filters() {
        let tagger = NerTagger::new();
        let people = tagger.people("Maria Garcia visited Acme to buy a lens.");
        assert_eq!(people.len(), 1);
        assert_eq!(people[0].text, "Maria Garcia");
        assert!(tagger.people("a lens and a tripod").is_empty());
    }

    #[test]
    fn spans_are_correct() {
        let text = "Say hi to Alice Johnson today";
        let tagger = NerTagger::new();
        let ents = tagger.tag(text);
        assert_eq!(&text[ents[0].start..ents[0].end], "Alice Johnson");
    }

    #[test]
    fn empty_text_no_entities() {
        assert!(NerTagger::new().tag("").is_empty());
    }
}
