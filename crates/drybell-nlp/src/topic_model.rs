//! The coarse-grained semantic categorizer ("topic model").
//!
//! §3.1 describes an internal topic model whose "semantic categorizations
//! [are] far too coarse-grained for the targeted task at hand, but which
//! nonetheless could be used as effective negative labeling heuristics" —
//! e.g. content categorized as *Sports* is surely not about the commerce
//! topic of interest. This module is that resource: a multinomial naive
//! Bayes classifier over eight coarse topics, trained from seed keyword
//! counts (and re-trainable on any corpus).

use std::collections::HashMap;

/// The coarse semantic categories the organizational topic model knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topic {
    /// Shopping, products, deals.
    Commerce,
    /// Gadgets, software, engineering.
    Technology,
    /// Games, teams, athletics.
    Sports,
    /// Film, music, celebrities.
    Entertainment,
    /// Medicine, fitness, wellbeing.
    Health,
    /// Markets, banking, money.
    Finance,
    /// Destinations, transport, tourism.
    Travel,
    /// Government, elections, policy.
    Politics,
}

impl Topic {
    /// Every topic, in a stable order.
    pub const ALL: [Topic; 8] = [
        Topic::Commerce,
        Topic::Technology,
        Topic::Sports,
        Topic::Entertainment,
        Topic::Health,
        Topic::Finance,
        Topic::Travel,
        Topic::Politics,
    ];

    /// Stable index of this topic in [`Topic::ALL`].
    pub fn index(self) -> usize {
        // `ALL` lists the variants in declaration order, so the
        // discriminant IS the index.
        self as usize
    }

    /// Seed keywords characteristic of this topic. Shared with
    /// `drybell-datagen`, which draws topic-conditional vocabulary from
    /// the same lists.
    pub fn seed_keywords(self) -> &'static [&'static str] {
        match self {
            Topic::Commerce => &[
                "buy", "sale", "price", "discount", "shop", "deal", "order", "shipping", "cart",
                "store", "bargain", "checkout", "retail", "coupon", "purchase",
            ],
            Topic::Technology => &[
                "software",
                "device",
                "chip",
                "startup",
                "code",
                "robot",
                "cloud",
                "server",
                "gadget",
                "compute",
                "network",
                "digital",
                "algorithm",
                "platform",
                "hardware",
            ],
            Topic::Sports => &[
                "game",
                "team",
                "score",
                "league",
                "coach",
                "match",
                "player",
                "season",
                "tournament",
                "goal",
                "championship",
                "stadium",
                "athlete",
                "win",
                "defense",
            ],
            Topic::Entertainment => &[
                "movie",
                "album",
                "celebrity",
                "concert",
                "film",
                "actor",
                "music",
                "show",
                "festival",
                "premiere",
                "singer",
                "drama",
                "comedy",
                "streaming",
                "award",
            ],
            Topic::Health => &[
                "doctor",
                "fitness",
                "diet",
                "clinic",
                "wellness",
                "vaccine",
                "therapy",
                "exercise",
                "nutrition",
                "hospital",
                "symptom",
                "medicine",
                "sleep",
                "recovery",
                "mental",
            ],
            Topic::Finance => &[
                "market",
                "stock",
                "bank",
                "invest",
                "fund",
                "loan",
                "interest",
                "trading",
                "currency",
                "budget",
                "profit",
                "dividend",
                "credit",
                "portfolio",
                "economy",
            ],
            Topic::Travel => &[
                "flight",
                "hotel",
                "tour",
                "beach",
                "passport",
                "luggage",
                "airline",
                "destination",
                "resort",
                "booking",
                "itinerary",
                "cruise",
                "vacation",
                "airport",
                "visa",
            ],
            Topic::Politics => &[
                "election",
                "policy",
                "senate",
                "vote",
                "campaign",
                "governor",
                "parliament",
                "legislation",
                "minister",
                "debate",
                "ballot",
                "congress",
                "reform",
                "treaty",
                "diplomat",
            ],
        }
    }
}

/// Multinomial naive Bayes over [`Topic`]s with Laplace smoothing.
#[derive(Debug, Clone)]
pub struct SemanticCategorizer {
    /// `word → per-topic counts`.
    counts: HashMap<String, [f64; 8]>,
    /// Total token mass per topic.
    totals: [f64; 8],
    /// Laplace smoothing constant.
    smoothing: f64,
}

impl Default for SemanticCategorizer {
    fn default() -> SemanticCategorizer {
        SemanticCategorizer::from_seeds()
    }
}

impl SemanticCategorizer {
    /// An empty, untrained categorizer.
    pub fn new() -> SemanticCategorizer {
        SemanticCategorizer {
            counts: HashMap::new(),
            totals: [0.0; 8],
            smoothing: 0.5,
        }
    }

    /// The organizational model: trained from the built-in seed keywords
    /// (each seed word counted heavily for its topic).
    pub fn from_seeds() -> SemanticCategorizer {
        let mut model = SemanticCategorizer::new();
        for topic in Topic::ALL {
            for &word in topic.seed_keywords() {
                model.observe(word, topic, 20.0);
            }
        }
        model
    }

    /// Record `weight` occurrences of `word` under `topic`.
    pub fn observe(&mut self, word: &str, topic: Topic, weight: f64) {
        let entry = self.counts.entry(word.to_owned()).or_insert([0.0; 8]);
        entry[topic.index()] += weight;
        self.totals[topic.index()] += weight;
    }

    /// Train on a corpus of `(lowercased tokens, topic)` documents,
    /// *adding* to any existing counts.
    pub fn train<S: AsRef<str>>(&mut self, corpus: &[(Vec<S>, Topic)]) {
        for (tokens, topic) in corpus {
            for tok in tokens {
                self.observe(tok.as_ref(), *topic, 1.0);
            }
        }
    }

    /// Number of distinct words observed.
    pub fn vocab_size(&self) -> usize {
        self.counts.len()
    }

    /// Posterior `P(topic | tokens)` for all topics (uniform prior).
    pub fn classify<S: AsRef<str>>(&self, tokens: &[S]) -> [f64; 8] {
        let vocab = self.counts.len().max(1) as f64;
        let mut log_scores = [0.0f64; 8];
        for tok in tokens {
            if let Some(counts) = self.counts.get(tok.as_ref()) {
                for (t, score) in log_scores.iter_mut().enumerate() {
                    let p =
                        (counts[t] + self.smoothing) / (self.totals[t] + self.smoothing * vocab);
                    *score += p.ln();
                }
            }
            // Out-of-vocabulary tokens contribute the same smoothed mass to
            // every topic (up to per-topic totals); skipping them keeps the
            // model robust to the long tail, as real coarse categorizers do.
        }
        // Softmax-normalize.
        let max = log_scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut probs = [0.0f64; 8];
        let mut sum = 0.0;
        for (p, &s) in probs.iter_mut().zip(&log_scores) {
            *p = (s - max).exp();
            sum += *p;
        }
        for p in &mut probs {
            *p /= sum;
        }
        probs
    }

    /// The most likely topic and its posterior probability.
    pub fn top_topic<S: AsRef<str>>(&self, tokens: &[S]) -> (Topic, f64) {
        let probs = self.classify(tokens);
        let mut idx = 0;
        for (i, &q) in probs.iter().enumerate().skip(1) {
            if q > probs[idx] {
                idx = i;
            }
        }
        (Topic::ALL[idx], probs[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_model_classifies_seed_vocabulary() {
        let model = SemanticCategorizer::from_seeds();
        let (topic, p) = model.top_topic(&["stock", "market", "invest", "fund"]);
        assert_eq!(topic, Topic::Finance);
        assert!(p > 0.9, "posterior {p}");
        let (topic, _) = model.top_topic(&["movie", "actor", "premiere"]);
        assert_eq!(topic, Topic::Entertainment);
    }

    #[test]
    fn posterior_is_a_distribution() {
        let model = SemanticCategorizer::from_seeds();
        for tokens in [
            vec!["buy", "flight"],
            vec!["unknown", "words", "only"],
            vec![],
        ] {
            let probs = model.classify(&tokens);
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn oov_only_text_is_uniform() {
        let model = SemanticCategorizer::from_seeds();
        let probs = model.classify(&["zzzz", "qqqq"]);
        for &p in &probs {
            assert!((p - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn training_shifts_the_model() {
        let mut model = SemanticCategorizer::new();
        let corpus: Vec<(Vec<&str>, Topic)> = vec![
            (vec!["gizmo", "widget"], Topic::Technology),
            (vec!["gizmo", "cloud"], Topic::Technology),
            (vec!["ballot", "widget"], Topic::Politics),
        ];
        model.train(&corpus);
        assert_eq!(model.vocab_size(), 4);
        let (topic, _) = model.top_topic(&["gizmo"]);
        assert_eq!(topic, Topic::Technology);
        let (topic, _) = model.top_topic(&["ballot"]);
        assert_eq!(topic, Topic::Politics);
    }

    #[test]
    fn topic_index_roundtrips() {
        for (i, t) in Topic::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn mixed_evidence_prefers_majority() {
        let model = SemanticCategorizer::from_seeds();
        let (topic, _) = model.top_topic(&["game", "team", "score", "price"]);
        assert_eq!(topic, Topic::Sports);
    }
}
