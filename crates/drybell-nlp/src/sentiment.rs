//! Lexicon-based sentiment scoring.
//!
//! A small valence lexicon with negation handling — the kind of
//! "previously developed heuristic classifier" (§3.3) that becomes one
//! more weak supervision source. Scores are in `[-1, 1]`.

use crate::tokenizer::lower_tokens;

const POSITIVE: &[&str] = &[
    "great",
    "excellent",
    "amazing",
    "love",
    "best",
    "wonderful",
    "fantastic",
    "happy",
    "perfect",
    "good",
    "awesome",
    "superb",
    "delightful",
    "brilliant",
    "enjoy",
];

const NEGATIVE: &[&str] = &[
    "terrible",
    "awful",
    "hate",
    "worst",
    "bad",
    "horrible",
    "poor",
    "disappointing",
    "broken",
    "useless",
    "sad",
    "angry",
    "defective",
    "refund",
    "scam",
];

const NEGATORS: &[&str] = &["not", "no", "never", "hardly", "don't", "doesn't", "isn't"];

/// Lexicon sentiment scorer.
#[derive(Debug, Clone, Default)]
pub struct SentimentScorer;

impl SentimentScorer {
    /// Create the scorer.
    pub fn new() -> SentimentScorer {
        SentimentScorer
    }

    /// Score `text` in `[-1, 1]`: the mean valence of matched words, with
    /// a preceding negator flipping a word's sign. Returns `0.0` when no
    /// lexicon word matches.
    pub fn score(&self, text: &str) -> f64 {
        let tokens = lower_tokens(text);
        let mut total = 0.0;
        let mut hits = 0usize;
        for (i, tok) in tokens.iter().enumerate() {
            let valence = if POSITIVE.contains(&tok.as_str()) {
                1.0
            } else if NEGATIVE.contains(&tok.as_str()) {
                -1.0
            } else {
                continue;
            };
            let negated = i > 0 && NEGATORS.contains(&tokens[i - 1].as_str());
            total += if negated { -valence } else { valence };
            hits += 1;
        }
        if hits == 0 {
            0.0
        } else {
            total / hits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative_words() {
        let s = SentimentScorer::new();
        assert!(s.score("what a great and wonderful day") > 0.9);
        assert!(s.score("terrible awful broken thing") < -0.9);
    }

    #[test]
    fn negation_flips() {
        let s = SentimentScorer::new();
        assert!(s.score("not great") < 0.0);
        assert!(s.score("never bad") > 0.0);
    }

    #[test]
    fn mixed_text_averages() {
        let s = SentimentScorer::new();
        let v = s.score("great product but terrible shipping");
        assert!((v - 0.0).abs() < 1e-12);
    }

    #[test]
    fn no_lexicon_words_is_neutral() {
        let s = SentimentScorer::new();
        assert_eq!(s.score("the quick brown fox"), 0.0);
        assert_eq!(s.score(""), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let s = SentimentScorer::new();
        for text in [
            "great great great",
            "bad bad not good awful",
            "not not good",
        ] {
            let v = s.score(text);
            assert!((-1.0..=1.0).contains(&v), "{text}: {v}");
        }
    }
}
