//! The per-worker NLP model server.
//!
//! §5.1: "these NLP models are too computationally expensive to run for all
//! content submitted to Google. Snorkel DryBell therefore ... uses Google's
//! MapReduce framework to launch a model server on each compute node."
//!
//! [`NlpServer`] bundles every model in this crate behind one `annotate`
//! call, tracks per-call statistics, and carries a *declared cost* per call
//! (simulated microseconds). The cost is what makes these models
//! non-servable in the sense of §4: the serving layer (`drybell-serving`)
//! refuses to stage models whose feature dependencies exceed the production
//! latency budget, which forces the cross-feature transfer the paper
//! describes.

use crate::langid::{Lang, LangDetector};
use crate::ner::{Entity, EntityKind, NerTagger};
use crate::sentiment::SentimentScorer;
use crate::tokenizer::{tokenize, Token};
use crate::topic_model::{SemanticCategorizer, Topic};
use drybell_dataflow::FaultPlan;
use drybell_obs::{Counter, Histogram, MetricsRegistry};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A failed annotation call: the model server was unreachable, overloaded,
/// or mid-crash when the RPC arrived.
///
/// In DryBell's deployment the NLP service is a remote dependency that can
/// (and does) fail independently of the pipeline; callers are expected to
/// degrade — labeling functions abstain on the affected example — rather
/// than abort the job (§5.4's pipelines keep running through dependency
/// outages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NlpError {
    /// Human-readable reason the call failed.
    pub reason: String,
}

impl NlpError {
    pub(crate) fn unavailable(reason: impl Into<String>) -> NlpError {
        NlpError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nlp service unavailable: {}", self.reason)
    }
}

impl std::error::Error for NlpError {}

/// Everything the NLP service knows about one piece of text — the
/// `NLPResult` of the paper's `NLPLabelingFunction` example.
#[derive(Debug, Clone)]
pub struct NlpResult {
    /// Tokenization with spans.
    pub tokens: Vec<Token>,
    /// All entity mentions.
    pub entities: Vec<Entity>,
    /// Coarse topic posterior over [`Topic::ALL`].
    pub topic_probs: [f64; 8],
    /// Most likely coarse topic.
    pub top_topic: Topic,
    /// Detected language, if any.
    pub language: Option<Lang>,
    /// Lexicon sentiment in `[-1, 1]`.
    pub sentiment: f64,
}

impl NlpResult {
    /// Entity mentions of a given kind (e.g. `people` in the §5.1 code
    /// sample).
    pub fn entities_of(&self, kind: EntityKind) -> impl Iterator<Item = &Entity> {
        self.entities.iter().filter(move |e| e.kind == kind)
    }

    /// Convenience: the person mentions.
    pub fn people(&self) -> Vec<&Entity> {
        self.entities_of(EntityKind::Person).collect()
    }
}

/// Cumulative call statistics for one server instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Number of `annotate` calls served.
    pub calls: u64,
    /// Total simulated cost in microseconds (`calls × cost_per_call`).
    pub simulated_cost_us: u64,
}

/// Live telemetry hooks for one server (see [`NlpServer::with_metrics`]).
#[derive(Debug, Clone)]
struct ServerTelemetry {
    /// `nlp_calls` counter — every `annotate` call.
    calls: Arc<Counter>,
    /// `obs/nlp/annotate_us` — real wall-clock latency of each call.
    annotate_us: Arc<Histogram>,
}

/// The bundled NLP model server.
#[derive(Debug, Clone)]
pub struct NlpServer {
    ner: NerTagger,
    topics: SemanticCategorizer,
    langid: LangDetector,
    sentiment: SentimentScorer,
    /// Declared cost of one `annotate` call, in simulated microseconds.
    cost_per_call_us: u64,
    stats: Arc<Mutex<ServerStats>>,
    telemetry: Option<ServerTelemetry>,
    faults: Option<FaultPlan>,
    warmed_up: bool,
}

impl Default for NlpServer {
    fn default() -> NlpServer {
        NlpServer::new()
    }
}

impl NlpServer {
    /// Declared per-call cost of the default server: 50 ms. Far beyond any
    /// real-time serving budget — exactly why these models are
    /// *non-servable* and must be transferred into servable classifiers.
    pub const DEFAULT_COST_US: u64 = 50_000;

    /// Build a server with all default models.
    pub fn new() -> NlpServer {
        NlpServer {
            ner: NerTagger::new(),
            topics: SemanticCategorizer::from_seeds(),
            langid: LangDetector::new(),
            sentiment: SentimentScorer::new(),
            cost_per_call_us: Self::DEFAULT_COST_US,
            stats: Arc::new(Mutex::new(ServerStats::default())),
            telemetry: None,
            faults: None,
            warmed_up: false,
        }
    }

    /// Override the declared per-call cost (tests and ablations).
    pub fn with_cost_us(mut self, cost: u64) -> NlpServer {
        self.cost_per_call_us = cost;
        self
    }

    /// Attach live metrics: every `annotate` call bumps the `nlp_calls`
    /// counter and records its real wall-clock latency into the
    /// `obs/nlp/annotate_us` histogram of `metrics`. Clones share the
    /// same instruments, so one registry sees the whole worker fleet.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> NlpServer {
        self.telemetry = Some(ServerTelemetry {
            calls: metrics.counter("nlp_calls"),
            annotate_us: metrics.histogram("obs/nlp/annotate_us"),
        });
        self
    }

    /// Attach a deterministic fault-injection plan: [`NlpServer::try_annotate`]
    /// fails (and delays) according to the plan's NLP schedule. Chaos tests
    /// only; the infallible [`NlpServer::annotate`] ignores the plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> NlpServer {
        self.faults = Some(plan);
        self
    }

    /// The declared per-call cost in microseconds.
    pub fn cost_per_call_us(&self) -> u64 {
        self.cost_per_call_us
    }

    /// `true` once `warm_up` has run.
    pub fn is_warm(&self) -> bool {
        self.warmed_up
    }

    /// Run all models over `text`.
    pub fn annotate(&self, text: &str) -> NlpResult {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        {
            let mut stats = self.stats.lock();
            stats.calls += 1;
            stats.simulated_cost_us += self.cost_per_call_us;
        }
        let tokens = tokenize(text);
        let lower: Vec<String> = tokens.iter().map(|t| t.lower()).collect();
        let topic_probs = self.topics.classify(&lower);
        let (top_topic, _) = self.topics.top_topic(&lower);
        let result = NlpResult {
            entities: self.ner.tag(text),
            topic_probs,
            top_topic,
            language: self.langid.detect(text),
            sentiment: self.sentiment.score(text),
            tokens,
        };
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.calls.inc();
            t.annotate_us.record_duration(started.elapsed());
        }
        result
    }

    /// Run all models over `text`, surfacing service failures.
    ///
    /// This is the call sites should prefer when they can degrade: an
    /// `Err` means the service (as simulated by the attached
    /// [`FaultPlan`]) dropped the request. The failed call still counts
    /// toward [`ServerStats`] — the server accepted the RPC — but no
    /// annotation work happens. Without a fault plan this never fails.
    pub fn try_annotate(&self, text: &str) -> Result<NlpResult, NlpError> {
        if let Some(plan) = &self.faults {
            let delay = plan.nlp_delay();
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            if plan.nlp_should_fail(text) {
                let mut stats = self.stats.lock();
                stats.calls += 1;
                stats.simulated_cost_us += self.cost_per_call_us;
                return Err(NlpError::unavailable(
                    "injected fault: annotate RPC dropped",
                ));
            }
        }
        Ok(self.annotate(text))
    }

    /// Snapshot of cumulative stats (shared across clones of this server,
    /// as clones share one underlying instance per worker).
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }
}

impl drybell_dataflow::Service for NlpServer {
    fn name(&self) -> &str {
        "nlp-model-server"
    }

    fn warm_up(&mut self) -> Result<(), drybell_dataflow::DataflowError> {
        // Exercise every model once so first-call latency is paid at
        // worker startup, as a real model server would load weights here.
        let _ = self.annotate("warm up Alice Johnson buys a camera");
        {
            let mut stats = self.stats.lock();
            stats.calls = 0;
            stats.simulated_cost_us = 0;
        }
        self.warmed_up = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drybell_dataflow::Service;

    #[test]
    fn annotate_runs_every_model() {
        let server = NlpServer::new();
        let r = server.annotate(
            "Alice Johnson loves her great new camera and wants to show the people of the town what she has seen",
        );
        assert!(!r.tokens.is_empty());
        assert!(!r.people().is_empty());
        assert!(r
            .entities_of(EntityKind::Product)
            .any(|e| e.text == "camera"));
        assert_eq!(r.language, Some(Lang::En));
        assert!(r.sentiment > 0.0);
        let sum: f64 = r.topic_probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate_cost() {
        let server = NlpServer::new().with_cost_us(100);
        server.annotate("one");
        server.annotate("two");
        let stats = server.stats();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.simulated_cost_us, 200);
    }

    #[test]
    fn warm_up_resets_stats_and_marks_warm() {
        let mut server = NlpServer::new();
        assert!(!server.is_warm());
        server.warm_up().unwrap();
        assert!(server.is_warm());
        assert_eq!(server.stats().calls, 0);
        assert_eq!(server.name(), "nlp-model-server");
    }

    #[test]
    fn default_cost_is_non_servable_scale() {
        // The declared cost must be comfortably above any realistic
        // real-time latency budget (which serving sets at ~10 ms).
        assert!(NlpServer::new().cost_per_call_us() > 10_000);
    }

    #[test]
    fn clones_share_stats() {
        let server = NlpServer::new();
        let clone = server.clone();
        clone.annotate("text");
        assert_eq!(server.stats().calls, 1);
    }

    #[test]
    fn with_metrics_records_calls_and_latency() {
        let metrics = MetricsRegistry::new();
        let server = NlpServer::new().with_metrics(&metrics);
        server.annotate("Alice Johnson buys a camera");
        server.clone().annotate("a clone shares the instruments");
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("nlp_calls"), 2);
        let hist = snap.histogram("obs/nlp/annotate_us").expect("histogram");
        assert_eq!(hist.count(), 2);
        assert!(hist.max() >= hist.min());
    }

    #[test]
    fn try_annotate_without_plan_never_fails() {
        let server = NlpServer::new();
        let r = server.try_annotate("Alice Johnson buys a camera").unwrap();
        assert!(!r.tokens.is_empty());
    }

    #[test]
    fn try_annotate_honors_fault_plan_deterministically() {
        let plan = FaultPlan::seeded(17).fail_nlp_text("poisoned text");
        let server = NlpServer::new().with_cost_us(100).with_fault_plan(plan);
        assert!(server.try_annotate("poisoned text").is_err());
        assert!(server.try_annotate("poisoned text").is_err());
        assert!(server.try_annotate("healthy text").is_ok());
        // Failed RPCs still count as served calls (2 failed + 1 ok).
        assert_eq!(server.stats().calls, 3);
    }

    #[test]
    fn try_annotate_rate_faults_hash_the_text() {
        let plan = FaultPlan::seeded(23).with_nlp_error_rate(0.5);
        let server = NlpServer::new().with_fault_plan(plan);
        let verdicts: Vec<bool> = (0..20)
            .map(|i| server.try_annotate(&format!("text {i}")).is_ok())
            .collect();
        let again: Vec<bool> = (0..20)
            .map(|i| server.try_annotate(&format!("text {i}")).is_ok())
            .collect();
        assert_eq!(verdicts, again, "per-text verdicts must be stable");
        assert!(verdicts.iter().any(|v| *v));
        assert!(verdicts.iter().any(|v| !*v));
    }

    #[test]
    fn without_metrics_no_instruments_exist() {
        let metrics = MetricsRegistry::new();
        let server = NlpServer::new();
        server.annotate("text");
        assert!(metrics.snapshot().counters.is_empty());
    }
}
