//! # drybell-obs
//!
//! The telemetry layer for the DryBell reproduction: lightweight enough
//! to thread through every crate (zero dependencies, a few atomics per
//! record), structured enough to answer the questions the paper's
//! production deployment had to answer — where did the wall-clock go,
//! which labeling function is slow, is the NLP cache earning its keep,
//! did training converge.
//!
//! Three instruments, one bundle:
//!
//! * [`metrics`] — named counters, gauges, and log-bucketed latency
//!   histograms (p50/p95/p99/max) in a [`MetricsRegistry`].
//! * [`span`] — RAII wall-clock spans aggregated by `/`-separated path
//!   in a [`SpanSet`].
//! * [`journal`] — an append-only JSONL [`RunJournal`]: one event per
//!   phase, shard, or epoch, each line self-describing.
//!
//! [`Telemetry`] carries all three; it is `Clone` (shared handles) and
//! cheap to pass down a pipeline. Code paths accept `Option<&Telemetry>`
//! (or options types defaulting to none) so the un-instrumented hot
//! path stays allocation- and branch-trivial.
//!
//! Naming conventions (see `DESIGN.md` for the full list): job-level
//! counters keep their MapReduce names (`votes/<lf>`, `nlp_calls`,
//! `nlp_cache/hits`); instruments owned by this layer are namespaced
//! `obs/<area>/<metric>`, with `_us` suffixing microsecond histograms.
//! The machine-readable form of that convention is [`naming::REGISTRY`]:
//! every name production code emits is declared there, and
//! `drybell-lint`'s `telemetry-conventions` rule checks call sites
//! against it.
//!
//! [`MetricsRegistry`]: metrics::MetricsRegistry
//! [`SpanSet`]: span::SpanSet
//! [`RunJournal`]: journal::RunJournal

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod flight;
pub mod journal;
pub mod json;
pub mod live;
pub mod metrics;
pub mod naming;
pub mod report;
pub mod shard;
pub mod span;
pub mod trace;

pub use flight::FlightRecorder;
pub use journal::{config_fingerprint, Event, JournalBuffer, RunJournal, SCHEMA_VERSION};
pub use json::{parse as parse_json, Json, JsonError};
pub use live::LiveServer;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram, MetricsRegistry, MetricsSnapshot,
};
pub use report::{
    histogram_to_json, metrics_to_json, metrics_to_text, spans_to_json, spans_to_text, ReportMode,
};
pub use shard::{CounterSlot, GaugeSlot, HistogramSlot, LocalShard, ShardGroup, ShardLayout};
pub use span::{Span, SpanSet, SpanSnapshot, SpanStat};
pub use trace::{SelfTime, TraceEvent, TraceHandle, Tracer};

/// The bundle handed down a pipeline: metrics + spans + optional
/// journal, tracer, and flight recorder.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    metrics: MetricsRegistry,
    spans: SpanSet,
    journal: Option<RunJournal>,
    tracer: Option<Tracer>,
    flight: Option<FlightRecorder>,
}

impl Telemetry {
    /// Metrics and spans only; events are dropped.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Metrics, spans, and a journal for structured events.
    pub fn with_journal(journal: RunJournal) -> Telemetry {
        Telemetry {
            journal: Some(journal),
            ..Telemetry::default()
        }
    }

    /// The same bundle with a tracer attached: spans opened through
    /// [`Telemetry::span`] additionally record parented trace
    /// intervals for the Chrome-trace exporter.
    pub fn with_trace(mut self, tracer: Tracer) -> Telemetry {
        self.tracer = Some(tracer);
        self
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span set.
    pub fn spans(&self) -> &SpanSet {
        &self.spans
    }

    /// The journal, if one is attached.
    pub fn journal(&self) -> Option<&RunJournal> {
        self.journal.as_ref()
    }

    /// The tracer, if one is attached.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The same bundle with a flight recorder attached: every emitted
    /// event (and every closed span, as a `span_sample` line) is
    /// mirrored into the recorder's ring for fault-triggered dumps.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Telemetry {
        self.flight = Some(flight);
        self
    }

    /// The flight recorder, if one is attached.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Emit an event to the journal (a no-op without one), mirroring it
    /// into the flight recorder's ring when one is attached.
    pub fn emit(&self, event: Event) {
        if let Some(flight) = &self.flight {
            flight.record(event.to_json());
        }
        if let Some(journal) = &self.journal {
            journal.emit(event);
        }
    }

    /// Dump the flight recorder's ring (see [`FlightRecorder::dump`])
    /// and journal a `flight_dump` event pointing at the file. Returns
    /// the dump path, or `None` when no recorder is attached or the
    /// write failed (telemetry never takes down the pipeline).
    pub fn dump_flight(&self, reason: &str) -> Option<std::path::PathBuf> {
        let flight = self.flight.as_ref()?;
        let path = flight.dump(reason).ok()?;
        self.emit(
            Event::new("flight_dump")
                .field("reason", reason)
                .field("path", path.display().to_string()),
        );
        Some(path)
    }

    /// Open a span at `path` — traced when a tracer is attached, and
    /// mirrored into the flight recorder when one is attached.
    pub fn span(&self, path: &str) -> Span {
        let mut span = self.spans.span(path);
        if let Some(tracer) = &self.tracer {
            span = span.with_trace(tracer);
        }
        match &self.flight {
            Some(flight) => span.with_flight(flight.clone()),
            None => span,
        }
    }

    /// Everything measured so far, as one JSON document with `metrics`
    /// and `spans` sections.
    pub fn report_json(&self) -> Json {
        Json::obj(vec![
            ("metrics", metrics_to_json(&self.metrics.snapshot())),
            ("spans", spans_to_json(&self.spans.snapshot())),
        ])
    }

    /// Everything measured so far, as text tables.
    pub fn report_text(&self) -> String {
        let mut out = metrics_to_text(&self.metrics.snapshot());
        let spans = spans_to_text(&self.spans.snapshot());
        if !out.is_empty() && !spans.is_empty() {
            out.push('\n');
        }
        out.push_str(&spans);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_wires_all_three_instruments() {
        let (journal, buffer) = RunJournal::in_memory();
        let telemetry = Telemetry::with_journal(journal);
        telemetry.metrics().counter("nlp_calls").add(2);
        {
            let _s = telemetry.span("run/fit");
        }
        telemetry.emit(Event::new("phase").field("name", "map"));

        let report = telemetry.report_json();
        assert_eq!(
            report
                .get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("nlp_calls")
                .unwrap()
                .as_i64(),
            Some(2)
        );
        assert_eq!(report.get("spans").unwrap().items().len(), 1);
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("phase"));
    }

    #[test]
    fn emit_without_journal_is_a_no_op() {
        let telemetry = Telemetry::new();
        telemetry.emit(Event::new("phase"));
        assert!(telemetry.journal().is_none());
    }

    #[test]
    fn clones_share_state() {
        let telemetry = Telemetry::new();
        let clone = telemetry.clone();
        clone.metrics().counter("x").inc();
        assert_eq!(telemetry.metrics().snapshot().counter("x"), 1);
    }

    #[test]
    fn flight_recorder_mirrors_events_and_spans() {
        let dir = std::env::temp_dir().join(format!("obs-telemetry-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (journal, buffer) = RunJournal::in_memory();
        let recorder = FlightRecorder::with_capacity(&dir, 16);
        let telemetry = Telemetry::with_journal(journal).with_flight(recorder.clone());
        {
            let _s = telemetry.span("run");
        }
        telemetry.emit(Event::new("phase").field("name", "map"));
        telemetry.emit(Event::new("slo_breach").field("window", "fast"));
        assert_eq!(recorder.len(), 3);
        let path = telemetry.dump_flight("slo_breach").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| parse_json(l).unwrap()).collect();
        // Header, span sample, then the two events — trigger last.
        assert_eq!(lines[1].get("kind").unwrap().as_str(), Some("span_sample"));
        assert_eq!(lines[1].get("path").unwrap().as_str(), Some("run"));
        assert_eq!(
            lines.last().unwrap().get("kind").unwrap().as_str(),
            Some("slo_breach")
        );
        // The dump journaled a flight_dump event pointing at the file.
        let journal_lines = buffer.parsed_lines().unwrap();
        let dump = journal_lines
            .iter()
            .find(|l| l.get("kind").unwrap().as_str() == Some("flight_dump"))
            .unwrap();
        assert_eq!(dump.get("reason").unwrap().as_str(), Some("slo_breach"));
        assert_eq!(
            dump.get("path").unwrap().as_str(),
            Some(path.display().to_string().as_str())
        );
        // And the flight_dump event itself seeds the next ring.
        assert_eq!(recorder.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_flight_without_recorder_is_a_no_op() {
        let telemetry = Telemetry::new();
        assert!(telemetry.flight().is_none());
        assert!(telemetry.dump_flight("anything").is_none());
    }

    #[test]
    fn traced_bundle_records_span_intervals() {
        let tracer = Tracer::new();
        let telemetry = Telemetry::new().with_trace(tracer.clone());
        {
            let run = telemetry.span("run");
            let _fit = run.child("fit");
        }
        {
            let _plain = Telemetry::new().span("run");
        }
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        let run = events.iter().find(|e| e.name == "run").unwrap();
        let fit = events.iter().find(|e| e.name == "run/fit").unwrap();
        assert_eq!(fit.parent, Some(run.id));
        assert!(telemetry.tracer().is_some());
        // Span aggregates record regardless of tracing.
        assert_eq!(telemetry.spans().snapshot().get("run").unwrap().count, 1);
    }
}
