//! Thread-local telemetry shards: buffer observations locally, merge at
//! deterministic boundaries.
//!
//! The per-observation cost of the global instruments ([`Counter`],
//! [`Histogram`]) is a handful of relaxed atomics — cheap, but still a
//! shared-cache-line write on every row of a hot loop. A [`LocalShard`]
//! removes even that: a worker thread records counter bumps, gauge
//! writes, histogram samples, span intervals, and journal events into
//! plain (non-atomic, unlocked) thread-local storage, then
//! [`LocalShard::flush_into`] folds the whole batch into the shared
//! registry in O(instruments) — not O(observations) — synchronized
//! operations.
//!
//! Flush points are the deterministic boundaries of the computation
//! (a shard commit, an epoch end, a span close), mirroring the
//! fixed-order reduction discipline of the parallel trainer: counter
//! and histogram merges are commutative, so the folded registry is
//! byte-identical to a single-threaded run at any thread count and any
//! flush interleaving. Journal events are *not* commutative (each line
//! carries a sequence number), so flushes write them with
//! [`RunJournal::emit_batch`] — one lock, consecutive sequence numbers
//! — and code that needs a reproducible journal collects its shards in
//! a [`ShardGroup`] and folds them in task-ordinal order.
//!
//! The slot indirection ([`CounterSlot`], [`GaugeSlot`],
//! [`HistogramSlot`]) keeps the hot loop free of name hashing: the
//! instruments are looked up once when the [`ShardLayout`] is built
//! (eagerly registering them, so reports include zero-valued
//! instruments exactly like the unbatched path), and each observation
//! is a bounds-checked vector write.
//!
//! [`Counter`]: crate::metrics::Counter
//! [`Histogram`]: crate::metrics::Histogram
//! [`RunJournal::emit_batch`]: crate::journal::RunJournal::emit_batch

use crate::journal::Event;
use crate::metrics::{Counter, Gauge, Histogram, LocalHistogram};
use crate::span::SpanStat;
use crate::Telemetry;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Index of a counter in a [`ShardLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSlot(usize);

/// Index of a gauge in a [`ShardLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSlot(usize);

/// Index of a histogram in a [`ShardLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSlot(usize);

/// The fixed set of instruments a family of shards records into.
///
/// Built once per instrumented region (holding the `Arc`s resolved from
/// the registry), then shared by every worker's [`LocalShard`]. Because
/// the instruments are resolved at layout-build time, they exist in the
/// registry even if no observation is ever recorded — snapshots look
/// identical to the unbatched instrumentation they replace.
#[derive(Debug, Default)]
pub struct ShardLayout {
    counters: Vec<Arc<Counter>>,
    gauges: Vec<Arc<Gauge>>,
    histograms: Vec<Arc<Histogram>>,
}

impl ShardLayout {
    /// An empty layout.
    pub fn new() -> ShardLayout {
        ShardLayout::default()
    }

    /// Add a counter (resolved via `MetricsRegistry::counter`) and get
    /// its slot.
    pub fn slot_counter(&mut self, counter: Arc<Counter>) -> CounterSlot {
        self.counters.push(counter);
        CounterSlot(self.counters.len() - 1)
    }

    /// Add a gauge and get its slot.
    pub fn slot_gauge(&mut self, gauge: Arc<Gauge>) -> GaugeSlot {
        self.gauges.push(gauge);
        GaugeSlot(self.gauges.len() - 1)
    }

    /// Add a histogram and get its slot.
    pub fn slot_histogram(&mut self, histogram: Arc<Histogram>) -> HistogramSlot {
        self.histograms.push(histogram);
        HistogramSlot(self.histograms.len() - 1)
    }

    /// A fresh, empty shard over this layout.
    pub fn shard(self: &Arc<ShardLayout>) -> LocalShard {
        LocalShard {
            layout: self.clone(),
            counters: vec![0; self.counters.len()],
            gauges: vec![None; self.gauges.len()],
            histograms: vec![LocalHistogram::new(); self.histograms.len()],
            spans: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// One thread's unsynchronized telemetry buffer.
///
/// Every recording method is a plain memory write — no atomics, no
/// locks — so it is safe to call per row of a hot loop. Nothing is
/// visible to the rest of the process until [`flush_into`] folds the
/// buffer into a [`Telemetry`] bundle.
///
/// The method names are deliberately distinct from the shared
/// instruments' (`tally`/`bump`/`observe` instead of `add`/`inc`/
/// `record`): `drybell-lint`'s `telemetry-conventions` rule flags the
/// shared spellings inside hot-path loops, steering per-row code here.
///
/// [`flush_into`]: LocalShard::flush_into
#[derive(Debug)]
pub struct LocalShard {
    layout: Arc<ShardLayout>,
    counters: Vec<u64>,
    gauges: Vec<Option<i64>>,
    histograms: Vec<LocalHistogram>,
    spans: Vec<(String, SpanStat)>,
    events: Vec<Event>,
}

impl LocalShard {
    /// Add `n` to the counter at `slot`.
    #[inline]
    pub fn tally(&mut self, slot: CounterSlot, n: u64) {
        if let Some(v) = self.counters.get_mut(slot.0) {
            *v += n;
        }
    }

    /// Add one to the counter at `slot`.
    #[inline]
    pub fn bump(&mut self, slot: CounterSlot) {
        self.tally(slot, 1);
    }

    /// Overwrite the gauge at `slot` (last write across the flush wins
    /// the same way direct `Gauge::set` calls would).
    #[inline]
    pub fn level(&mut self, slot: GaugeSlot, v: i64) {
        if let Some(g) = self.gauges.get_mut(slot.0) {
            *g = Some(v);
        }
    }

    /// Record one histogram sample at `slot`.
    #[inline]
    pub fn observe(&mut self, slot: HistogramSlot, v: u64) {
        if let Some(h) = self.histograms.get_mut(slot.0) {
            h.observe(v);
        }
    }

    /// Record a duration sample (microseconds, saturating) at `slot`.
    #[inline]
    pub fn observe_duration(&mut self, slot: HistogramSlot, d: Duration) {
        self.observe(slot, d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Fold one measured span interval into the local aggregate for
    /// `path`. Distinct paths per shard are expected to be few, so
    /// lookup is a linear scan (no hashing on the hot path).
    pub fn span_sample(&mut self, path: &str, elapsed_us: u64) {
        if let Some((_, stat)) = self.spans.iter_mut().find(|(p, _)| p == path) {
            stat.count += 1;
            stat.total_us += elapsed_us;
            stat.max_us = stat.max_us.max(elapsed_us);
        } else {
            self.spans.push((
                path.to_string(),
                SpanStat {
                    count: 1,
                    total_us: elapsed_us,
                    max_us: elapsed_us,
                },
            ));
        }
    }

    /// Buffer a journal event. Events are written (in buffer order,
    /// with consecutive sequence numbers) by the next flush.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Whether nothing has been recorded since the last flush.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(Option::is_none)
            && self.histograms.iter().all(LocalHistogram::is_empty)
            && self.spans.is_empty()
            && self.events.is_empty()
    }

    /// Drain another shard of the same layout into this one (used by
    /// [`ShardGroup::commit`] when a task ordinal is re-attempted).
    pub fn absorb(&mut self, other: &mut LocalShard) {
        for (i, v) in other.counters.iter_mut().enumerate() {
            if let Some(dst) = self.counters.get_mut(i) {
                *dst += std::mem::take(v);
            }
        }
        for (i, v) in other.gauges.iter_mut().enumerate() {
            if let Some(new) = v.take() {
                if let Some(dst) = self.gauges.get_mut(i) {
                    *dst = Some(new);
                }
            }
        }
        for (i, h) in other.histograms.iter_mut().enumerate() {
            if let Some(dst) = self.histograms.get_mut(i) {
                dst.absorb(h);
            }
        }
        for (path, stat) in other.spans.drain(..) {
            if let Some((_, dst)) = self.spans.iter_mut().find(|(p, _)| p == &path) {
                dst.count += stat.count;
                dst.total_us += stat.total_us;
                dst.max_us = dst.max_us.max(stat.max_us);
            } else {
                self.spans.push((path, stat));
            }
        }
        self.events.append(&mut other.events);
    }

    /// Fold everything buffered into `telemetry` and clear the buffer
    /// (the shard is reusable afterwards).
    ///
    /// Counters and histograms merge commutatively into the shared
    /// atomics; span aggregates fold via [`SpanSet::merge`]; buffered
    /// events write through [`RunJournal::emit_batch`] under a single
    /// journal lock (dropped when no journal is attached, matching
    /// [`Telemetry::emit`]).
    ///
    /// [`SpanSet::merge`]: crate::span::SpanSet::merge
    /// [`RunJournal::emit_batch`]: crate::journal::RunJournal::emit_batch
    pub fn flush_into(&mut self, telemetry: &Telemetry) {
        for (i, v) in self.counters.iter_mut().enumerate() {
            let n = std::mem::take(v);
            if n > 0 {
                if let Some(c) = self.layout.counters.get(i) {
                    c.add(n);
                }
            }
        }
        for (i, v) in self.gauges.iter_mut().enumerate() {
            if let Some(new) = v.take() {
                if let Some(g) = self.layout.gauges.get(i) {
                    g.set(new);
                }
            }
        }
        for (i, h) in self.histograms.iter_mut().enumerate() {
            if !h.is_empty() {
                if let Some(shared) = self.layout.histograms.get(i) {
                    h.drain_into(shared);
                }
            }
        }
        for (path, stat) in self.spans.drain(..) {
            telemetry.spans().merge(&path, stat);
        }
        if !self.events.is_empty() {
            let events = std::mem::take(&mut self.events);
            if let Some(journal) = telemetry.journal() {
                journal.emit_batch(events);
            }
        }
    }
}

/// A set of [`LocalShard`]s keyed by task ordinal, folded in ordinal
/// order.
///
/// Counter/gauge/histogram/span merges are commutative, so a plain
/// per-thread flush already reproduces the single-threaded registry.
/// Journal events are ordered, so a reproducible journal requires the
/// PR-4 discipline: each deterministic unit of work (chunk, shard,
/// epoch) commits its shard under its ordinal, and [`fold_into`] then
/// flushes shards in ascending ordinal order — the event stream any
/// single-threaded execution of the same chunks would have written.
///
/// [`fold_into`]: ShardGroup::fold_into
#[derive(Debug)]
pub struct ShardGroup {
    layout: Arc<ShardLayout>,
    slots: Mutex<Vec<Option<LocalShard>>>,
}

impl ShardGroup {
    /// A group over `layout`.
    pub fn new(layout: Arc<ShardLayout>) -> ShardGroup {
        ShardGroup {
            layout,
            slots: Mutex::new(Vec::new()),
        }
    }

    /// A fresh shard for one unit of work.
    pub fn shard(&self) -> LocalShard {
        self.layout.shard()
    }

    /// Commit a finished unit's shard under its deterministic ordinal.
    /// Re-commits at the same ordinal merge (a retried task adds to its
    /// earlier attempt's observations, as the sequential run would).
    pub fn commit(&self, ordinal: usize, mut shard: LocalShard) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() <= ordinal {
            slots.resize_with(ordinal + 1, || None);
        }
        match slots.get_mut(ordinal) {
            Some(Some(existing)) => existing.absorb(&mut shard),
            Some(slot) => *slot = Some(shard),
            None => {}
        }
    }

    /// Flush every committed shard into `telemetry`, in ordinal order,
    /// and clear the group.
    pub fn fold_into(&self, telemetry: &Telemetry) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        for slot in slots.iter_mut() {
            if let Some(shard) = slot.as_mut() {
                shard.flush_into(telemetry);
            }
        }
        slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::RunJournal;

    fn layout_for(t: &Telemetry) -> (Arc<ShardLayout>, CounterSlot, GaugeSlot, HistogramSlot) {
        let mut layout = ShardLayout::new();
        let c = layout.slot_counter(t.metrics().counter("nlp_calls"));
        let g = layout.slot_gauge(t.metrics().gauge("obs/train/threads"));
        let h = layout.slot_histogram(t.metrics().histogram("obs/train/step_us"));
        (Arc::new(layout), c, g, h)
    }

    #[test]
    fn flush_folds_all_instrument_kinds() {
        let (journal, buffer) = RunJournal::in_memory();
        let t = Telemetry::with_journal(journal);
        let (layout, c, g, h) = layout_for(&t);
        let mut shard = layout.shard();
        shard.tally(c, 2);
        shard.bump(c);
        shard.level(g, 4);
        shard.observe(h, 100);
        shard.observe_duration(h, std::time::Duration::from_micros(50));
        shard.span_sample("train/fit", 10);
        shard.span_sample("train/fit", 30);
        shard.push_event(Event::new("train_epoch").field("epoch", 0u64));
        assert!(!shard.is_empty());
        shard.flush_into(&t);
        assert!(shard.is_empty());

        let snap = t.metrics().snapshot();
        assert_eq!(snap.counter("nlp_calls"), 3);
        assert_eq!(snap.gauge("obs/train/threads"), 4);
        assert_eq!(snap.histogram("obs/train/step_us").unwrap().count(), 2);
        let span = t.spans().snapshot().get("train/fit").unwrap();
        assert_eq!(span.count, 2);
        assert_eq!(span.total_us, 40);
        assert_eq!(span.max_us, 30);
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("train_epoch"));
    }

    #[test]
    fn layout_preregisters_instruments() {
        let t = Telemetry::new();
        let _ = layout_for(&t);
        // No observations, yet the instruments exist with zero values —
        // reports look the same as with direct instrumentation.
        let snap = t.metrics().snapshot();
        assert_eq!(snap.counter("nlp_calls"), 0);
        assert!(snap.histogram("obs/train/step_us").is_some());
    }

    #[test]
    fn empty_flush_is_a_no_op() {
        let (journal, buffer) = RunJournal::in_memory();
        let t = Telemetry::with_journal(journal);
        let (layout, ..) = layout_for(&t);
        let mut shard = layout.shard();
        assert!(shard.is_empty());
        shard.flush_into(&t);
        assert!(buffer.contents().is_empty());
    }

    #[test]
    fn events_without_a_journal_are_dropped() {
        let t = Telemetry::new();
        let (layout, ..) = layout_for(&t);
        let mut shard = layout.shard();
        shard.push_event(Event::new("train_epoch"));
        shard.flush_into(&t);
        assert!(shard.is_empty());
    }

    #[test]
    fn group_folds_in_ordinal_order_regardless_of_commit_order() {
        let (journal, buffer) = RunJournal::in_memory();
        let t = Telemetry::with_journal(journal);
        let (layout, c, ..) = layout_for(&t);
        let group = ShardGroup::new(layout);
        // Commit out of order: ordinal 2 first, then 0, then 1.
        for ordinal in [2usize, 0, 1] {
            let mut shard = group.shard();
            shard.tally(c, ordinal as u64 + 1);
            shard.push_event(Event::new("shard_attempt").field("task", ordinal as u64));
            group.commit(ordinal, shard);
        }
        group.fold_into(&t);
        assert_eq!(t.metrics().snapshot().counter("nlp_calls"), 6);
        let tasks: Vec<i64> = buffer
            .parsed_lines()
            .unwrap()
            .iter()
            .map(|l| l.get("task").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(tasks, vec![0, 1, 2]);
    }

    #[test]
    fn recommits_at_one_ordinal_merge() {
        let t = Telemetry::new();
        let (layout, c, _, h) = layout_for(&t);
        let group = ShardGroup::new(layout);
        let mut first = group.shard();
        first.tally(c, 1);
        first.observe(h, 10);
        first.span_sample("train/fit", 5);
        group.commit(0, first);
        let mut retry = group.shard();
        retry.tally(c, 2);
        retry.observe(h, 20);
        retry.span_sample("train/fit", 7);
        group.commit(0, retry);
        group.fold_into(&t);
        assert_eq!(t.metrics().snapshot().counter("nlp_calls"), 3);
        let snap = t.metrics().snapshot();
        assert_eq!(snap.histogram("obs/train/step_us").unwrap().count(), 2);
        assert_eq!(t.spans().snapshot().get("train/fit").unwrap().count, 2);
    }
}
