//! Report renderers: the same telemetry snapshot as a human-readable
//! table or a machine-readable JSON document (the `--json` mode of the
//! diagnostic binaries).

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::span::SpanSnapshot;

/// How a binary should render its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Aligned text tables for terminals.
    #[default]
    Text,
    /// One pretty-printed JSON document on stdout.
    Json,
}

impl ReportMode {
    /// Detect `--json` in an argument list.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> ReportMode {
        if args.iter().any(|a| a.as_ref() == "--json") {
            ReportMode::Json
        } else {
            ReportMode::Text
        }
    }
}

/// JSON summary of one histogram: count, mean, the percentile ladder,
/// and the non-empty log buckets as `[index, count]` pairs (the raw
/// distribution cross-run diffing needs — percentiles alone cannot feed
/// a population-stability index).
pub fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let buckets = Json::Arr(
        h.nonzero_buckets()
            .into_iter()
            .map(|(i, n)| Json::Arr(vec![Json::from(i), Json::from(n)]))
            .collect(),
    );
    Json::obj(vec![
        ("count", Json::from(h.count())),
        ("sum", Json::from(h.sum())),
        ("mean", h.mean().map(Json::Num).unwrap_or(Json::Null)),
        ("min", h.min().map(Json::from).unwrap_or(Json::Null)),
        ("p50", h.p50().map(Json::from).unwrap_or(Json::Null)),
        ("p95", h.p95().map(Json::from).unwrap_or(Json::Null)),
        ("p99", h.p99().map(Json::from).unwrap_or(Json::Null)),
        ("max", h.max().map(Json::from).unwrap_or(Json::Null)),
        ("buckets", buckets),
    ])
}

/// The full metrics snapshot as a JSON object with `counters`, `gauges`,
/// and `histograms` sections.
pub fn metrics_to_json(snapshot: &MetricsSnapshot) -> Json {
    let counters = Json::Obj(
        snapshot
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect(),
    );
    let gauges = Json::Obj(
        snapshot
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect(),
    );
    let histograms = Json::Obj(
        snapshot
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), histogram_to_json(h)))
            .collect(),
    );
    Json::obj(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// The metrics snapshot as aligned text tables, omitting empty sections.
pub fn metrics_to_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str(&format!("{:<40} {:>14}\n", "counter", "value"));
        for (name, v) in &snapshot.counters {
            out.push_str(&format!("{name:<40} {v:>14}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str(&format!("{:<40} {:>14}\n", "gauge", "value"));
        for (name, v) in &snapshot.gauges {
            out.push_str(&format!("{name:<40} {v:>14}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(&format!(
            "{:<40} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram (µs)", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "{:<40} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count(),
                opt(h.p50()),
                opt(h.p95()),
                opt(h.p99()),
                opt(h.max()),
            ));
        }
    }
    out
}

fn opt(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string())
}

/// The span snapshot as a JSON array (one object per path, sorted).
pub fn spans_to_json(snapshot: &SpanSnapshot) -> Json {
    Json::Arr(
        snapshot
            .entries()
            .iter()
            .map(|(path, stat)| {
                Json::obj(vec![
                    ("path", Json::from(path.as_str())),
                    ("count", Json::from(stat.count)),
                    ("total_us", Json::from(stat.total_us)),
                    ("max_us", Json::from(stat.max_us)),
                ])
            })
            .collect(),
    )
}

/// The span snapshot as an indented tree (depth = `/` count in the path).
pub fn spans_to_text(snapshot: &SpanSnapshot) -> String {
    if snapshot.entries().is_empty() {
        return String::new();
    }
    let mut out = format!(
        "{:<40} {:>8} {:>12} {:>12}\n",
        "span", "count", "total (s)", "max (s)"
    );
    for (path, stat) in snapshot.entries() {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), leaf);
        out.push_str(&format!(
            "{:<40} {:>8} {:>12.3} {:>12.3}\n",
            label,
            stat.count,
            stat.total_us as f64 / 1e6,
            stat.max_us as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::SpanSet;

    #[test]
    fn report_mode_detects_json_flag() {
        assert_eq!(ReportMode::from_args(&["--scale", "2"]), ReportMode::Text);
        assert_eq!(ReportMode::from_args(&["--json"]), ReportMode::Json);
    }

    #[test]
    fn metrics_render_both_ways() {
        let reg = MetricsRegistry::new();
        reg.counter("votes/has_good").add(7);
        reg.gauge("nlp_cache/size").set(3);
        reg.histogram("obs/lf/eval_us").record(120);
        let snap = reg.snapshot();

        let text = metrics_to_text(&snap);
        assert!(text.contains("votes/has_good"));
        assert!(text.contains("obs/lf/eval_us"));

        let json = metrics_to_json(&snap);
        assert_eq!(
            json.get("counters")
                .unwrap()
                .get("votes/has_good")
                .unwrap()
                .as_i64(),
            Some(7)
        );
        let hist = json
            .get("histograms")
            .unwrap()
            .get("obs/lf/eval_us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_i64(), Some(1));
        assert_eq!(hist.get("p50").unwrap().as_i64(), Some(120));
        // 120 has bit width 7 → one non-empty bucket at index 7.
        let buckets = hist.get("buckets").unwrap().items();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].at(0).unwrap().as_i64(), Some(7));
        assert_eq!(buckets[0].at(1).unwrap().as_i64(), Some(1));
        // Rendered JSON parses back.
        assert!(crate::json::parse(&json.to_pretty()).is_ok());
    }

    #[test]
    fn empty_histogram_renders_nulls_and_dashes() {
        let reg = MetricsRegistry::new();
        reg.histogram("obs/empty_us");
        let snap = reg.snapshot();
        assert!(metrics_to_text(&snap).contains('-'));
        let json = metrics_to_json(&snap);
        let hist = json.get("histograms").unwrap().get("obs/empty_us").unwrap();
        assert_eq!(hist.get("p50"), Some(&Json::Null));
    }

    #[test]
    fn spans_render_as_indented_tree() {
        let set = SpanSet::new();
        {
            let run = set.span("run");
            let _fit = run.child("fit");
        }
        let text = spans_to_text(&set.snapshot());
        assert!(text.contains("run"));
        assert!(text.contains("  fit"));
        let json = spans_to_json(&set.snapshot());
        assert_eq!(json.items().len(), 2);
        assert_eq!(
            json.at(0).unwrap().get("path").unwrap().as_str(),
            Some("run")
        );
    }
}
