//! The live observability plane: an in-process snapshot server on
//! `std::net::TcpListener`.
//!
//! Production monitoring needs a run's health readable *while it runs*,
//! not after `drybell-doctor` folds the journal. A [`LiveServer`] binds
//! a plain TCP listener and answers three GET routes from one accept
//! thread:
//!
//! * `/metrics` — Prometheus-style text exposition rendered from a
//!   [`MetricsRegistry`] snapshot (names sanitized to `drybell_*`;
//!   histograms export `_count`/`_sum` plus `quantile`-labelled
//!   summary rows).
//! * `/snapshot` — the full [`Telemetry::report_json`] document.
//! * `/healthz` — `ok`, for liveness probes.
//!
//! The fold is taken on demand, per request: steady-state cost is zero
//! (the accept thread sleeps in `accept(2)`), and the handler reads the
//! shared instruments the same way report rendering does — thread-local
//! telemetry shards keep writing without ever seeing the server.
//! Shutdown flips an atomic flag and self-connects to unblock the
//! accept loop, so drops are prompt.
//!
//! [`MetricsRegistry`]: crate::metrics::MetricsRegistry
//! [`Telemetry::report_json`]: crate::Telemetry::report_json

use crate::metrics::MetricsSnapshot;
use crate::Telemetry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection read/write timeout: the handler must never hang the
/// accept thread on a stalled client.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head we bother reading.
const MAX_REQUEST_BYTES: usize = 4096;

/// A running snapshot server; shuts down on drop.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl LiveServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// snapshots of `telemetry` until shutdown or drop.
    pub fn bind(addr: &str, telemetry: &Telemetry) -> io::Result<LiveServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let telemetry = telemetry.clone();
        // Pre-intern the request counter so handling never takes the
        // registry's name lock.
        let requests = telemetry.metrics().counter("live/requests");
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("drybell-live".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if handle_connection(stream, &telemetry).is_ok() {
                        requests.inc();
                    }
                }
            })?;
        Ok(LiveServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept(2) with a throwaway connection; the flag is
        // already set, so the loop exits before handling it.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read the request head, route it, and write one HTTP/1.0 response.
fn handle_connection(mut stream: TcpStream, telemetry: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(buf.get(..n).unwrap_or_default());
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(&telemetry.metrics().snapshot()),
            ),
            "/snapshot" => (
                "200 OK",
                "application/json",
                format!("{}\n", telemetry.report_json().to_pretty()),
            ),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A registry name as a Prometheus metric name: `drybell_` prefix,
/// separators and any non-`[a-z0-9_]` byte flattened to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("drybell_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a metrics snapshot as Prometheus text exposition. Counters
/// and gauges are single samples; histograms export as summaries
/// (`_count`, `_sum`, and `quantile`-labelled p50/p95/p99 rows).
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    for (name, value) in &snapshot.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [
            ("0.5", hist.p50()),
            ("0.95", hist.p95()),
            ("0.99", hist.p99()),
        ] {
            if let Some(v) = v {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out.push_str(&format!(
            "{n}_sum {}\n{n}_count {}\n",
            hist.sum(),
            hist.count()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    fn busy_telemetry() -> Telemetry {
        let t = Telemetry::new();
        t.metrics().counter("nlp_calls").add(7);
        t.metrics().gauge("serving/queue_depth").set(3);
        let h = t.metrics().histogram("obs/serving/request_us");
        h.record(100);
        h.record(2_000);
        {
            let _s = t.span("run");
        }
        t
    }

    #[test]
    fn healthz_answers_ok_and_requests_are_counted() {
        let t = busy_telemetry();
        let server = LiveServer::bind("127.0.0.1:0", &t).unwrap();
        let (status, body) = get(server.local_addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        let (status, _) = get(server.local_addr(), "/nope");
        assert!(status.contains("404"), "{status}");
        // Both requests were handled and counted.
        assert_eq!(t.metrics().snapshot().counter("live/requests"), 2);
    }

    #[test]
    fn metrics_route_renders_prometheus_text() {
        let t = busy_telemetry();
        let server = LiveServer::bind("127.0.0.1:0", &t).unwrap();
        let (status, body) = get(server.local_addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE drybell_nlp_calls counter"), "{body}");
        assert!(body.contains("drybell_nlp_calls 7"), "{body}");
        assert!(body.contains("drybell_serving_queue_depth 3"), "{body}");
        assert!(
            body.contains("# TYPE drybell_obs_serving_request_us summary"),
            "{body}"
        );
        assert!(
            body.contains("drybell_obs_serving_request_us_count 2"),
            "{body}"
        );
        assert!(
            body.contains("drybell_obs_serving_request_us{quantile=\"0.99\"}"),
            "{body}"
        );
    }

    #[test]
    fn snapshot_route_serves_the_report_document() {
        let t = busy_telemetry();
        let server = LiveServer::bind("127.0.0.1:0", &t).unwrap();
        let (status, body) = get(server.local_addr(), "/snapshot");
        assert!(status.contains("200"), "{status}");
        let doc = parse(body.trim()).unwrap();
        assert_eq!(
            doc.get("metrics")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("nlp_calls")
                .unwrap()
                .as_i64(),
            Some(7)
        );
        assert!(!doc.get("spans").unwrap().items().is_empty());
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent() {
        let t = Telemetry::new();
        let mut server = LiveServer::bind("127.0.0.1:0", &t).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let t = Telemetry::new();
        let server = LiveServer::bind("127.0.0.1:0", &t).unwrap();
        let mut stream =
            TcpStream::connect_timeout(&server.local_addr(), Duration::from_secs(2)).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }
}
