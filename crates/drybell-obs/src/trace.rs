//! Hierarchical tracing: parented, thread-attributed time intervals
//! with a Chrome trace-event exporter and a self-profiling summary.
//!
//! A [`Tracer`] collects [`TraceEvent`]s — complete intervals carrying
//! a span id, an optional parent id, and the recording thread's
//! ordinal. Parenting is automatic for the common case: opening a
//! handle pushes its id onto a thread-local stack, so spans opened
//! while another is live on the same thread become its children.
//! Cross-thread structure (a worker's shard attempt under the
//! coordinator's phase span) uses explicit parents via
//! [`Tracer::open_child_of`] / [`Tracer::record_interval`].
//!
//! The exporter ([`Tracer::to_chrome_json`]) writes the Chrome
//! trace-event format — an object with a `traceEvents` array of
//! complete (`"ph": "X"`) events — which loads directly in Perfetto or
//! `chrome://tracing`. On top of the same data,
//! [`Tracer::self_times`] computes per-name total and self time (time
//! not attributed to child spans) and [`Tracer::critical_path`] the
//! longest root-to-leaf chain, both journaled via
//! [`Tracer::summary_event`] so `drybell-doctor` can budget where the
//! wall-clock goes.
//!
//! Tracing is opt-in (`Telemetry::with_trace`) and the tracer is only
//! touched when spans open and close — never per row — so the traced
//! and untraced hot paths are identical.

use crate::journal::Event;
use crate::json::Json;
use crate::metrics::MetricsRegistry;
use std::cell::{Cell, RefCell};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One complete trace interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (a span path like `job/map`, or an aggregate label).
    pub name: String,
    /// Start, microseconds since the tracer was created.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Ordinal of the recording thread (stable within a process run).
    pub tid: u64,
    /// This interval's unique id (dense, from 1).
    pub id: u64,
    /// The enclosing interval's id, if any.
    pub parent: Option<u64>,
}

/// Per-name timing roll-up from [`Tracer::self_times`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfTime {
    /// Intervals recorded under this name.
    pub count: u64,
    /// Summed durations.
    pub total_us: u64,
    /// Summed durations minus time covered by child intervals
    /// (clamped at zero: concurrent children can overlap their
    /// parent's wall-clock).
    pub self_us: u64,
}

struct TracerInner {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
    next_id: AtomicU64,
}

/// A shared, clonable trace collector.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("events", &self.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's trace ordinal (0 = unassigned).
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
    /// Open-span stack: (tracer token, span id), innermost last.
    static OPEN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's trace ordinal, assigned on first use.
pub fn thread_ordinal() -> u64 {
    THREAD_TID.with(|cell| {
        let tid = cell.get();
        if tid != 0 {
            return tid;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        cell.set(tid);
        tid
    })
}

impl Tracer {
    /// A fresh tracer; `ts` values are relative to this moment.
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// This tracer's identity token (distinguishes thread-local stack
    /// entries when multiple tracers coexist in one process).
    fn token(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    fn alloc_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds from tracer creation to `at` (zero if `at`
    /// precedes creation).
    fn ts_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.inner.start)
            .as_micros()
            .min(u64::MAX as u128) as u64
    }

    /// Microseconds elapsed since the tracer was created — the `ts`
    /// base for [`Tracer::record_interval_at`].
    pub fn now_us(&self) -> u64 {
        self.ts_us(Instant::now())
    }

    /// The innermost span this tracer has open on the calling thread.
    pub fn current_parent(&self) -> Option<u64> {
        let token = self.token();
        OPEN_STACK.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == token)
                .map(|(_, id)| *id)
        })
    }

    /// Open a span parented under the calling thread's innermost open
    /// span (if any). The returned handle must be closed with
    /// [`TraceHandle::close`] to record the interval and pop the stack.
    pub fn open(&self) -> TraceHandle {
        let parent = self.current_parent();
        self.open_child_of(parent)
    }

    /// Open a span with an explicit parent (for cross-thread
    /// structure, e.g. a worker interval under a coordinator span).
    pub fn open_child_of(&self, parent: Option<u64>) -> TraceHandle {
        let id = self.alloc_id();
        let token = self.token();
        OPEN_STACK.with(|stack| stack.borrow_mut().push((token, id)));
        TraceHandle {
            tracer: self.clone(),
            id,
            parent,
        }
    }

    /// Record a complete interval directly, without touching the open
    /// stack: `start`..now, under `parent`. Returns the interval's id.
    pub fn record_interval(&self, name: &str, start: Instant, parent: Option<u64>) -> u64 {
        let dur_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.record_interval_at(name, self.ts_us(start), dur_us, parent)
    }

    /// Record a complete interval from explicit timestamps (both in
    /// microseconds relative to the tracer's start). Returns its id.
    pub fn record_interval_at(
        &self,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        parent: Option<u64>,
    ) -> u64 {
        let id = self.alloc_id();
        self.push(TraceEvent {
            name: name.to_string(),
            ts_us,
            dur_us,
            tid: thread_ordinal(),
            id,
            parent,
        });
        id
    }

    fn push(&self, event: TraceEvent) {
        self.inner
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.inner
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded intervals, ordered by (tid, ts, id) so
    /// output is stable regardless of close order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = self
            .inner
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        events.sort_by_key(|e| (e.tid, e.ts_us, e.id));
        events
    }

    /// The full trace as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`, complete `"ph": "X"` events) —
    /// loadable in Perfetto and `chrome://tracing`.
    pub fn to_chrome_json(&self) -> Json {
        let events = self
            .snapshot()
            .into_iter()
            .map(|e| {
                let mut args = vec![("id".to_string(), Json::from(e.id))];
                if let Some(parent) = e.parent {
                    args.push(("parent".to_string(), Json::from(parent)));
                }
                Json::obj(vec![
                    ("name", Json::Str(e.name)),
                    ("cat", Json::from("drybell")),
                    ("ph", Json::from("X")),
                    ("ts", Json::from(e.ts_us)),
                    ("dur", Json::from(e.dur_us)),
                    ("pid", Json::from(1u64)),
                    ("tid", Json::from(e.tid)),
                    ("args", Json::Obj(args)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("displayTimeUnit", Json::from("ms")),
            ("traceEvents", Json::Arr(events)),
        ])
    }

    /// Write [`Tracer::to_chrome_json`] to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_chrome_json().to_pretty().as_bytes())?;
        writeln!(file)?;
        file.flush()
    }

    /// Per-name total and self time, sorted by name.
    ///
    /// Self time subtracts the durations of *direct* children from
    /// each interval before aggregating, so a phase that spends its
    /// life waiting on child work reports near-zero self time.
    pub fn self_times(&self) -> Vec<(String, SelfTime)> {
        let events = self.snapshot();
        let mut child_us: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &events {
            if let Some(parent) = e.parent {
                *child_us.entry(parent).or_insert(0) += e.dur_us;
            }
        }
        let mut by_name: std::collections::BTreeMap<String, SelfTime> =
            std::collections::BTreeMap::new();
        for e in &events {
            let covered = child_us.get(&e.id).copied().unwrap_or(0);
            let entry = by_name.entry(e.name.clone()).or_default();
            entry.count += 1;
            entry.total_us += e.dur_us;
            entry.self_us += e.dur_us.saturating_sub(covered);
        }
        by_name.into_iter().collect()
    }

    /// The longest root-to-leaf chain: at each level, the child with
    /// the largest duration. Returns the chain of names and the root's
    /// duration (the wall-clock the chain accounts for); `None` when
    /// no intervals were recorded.
    pub fn critical_path(&self) -> Option<(Vec<String>, u64)> {
        let events = self.snapshot();
        let longest = |parent: Option<u64>| -> Option<&TraceEvent> {
            events
                .iter()
                .filter(|e| e.parent == parent)
                .max_by_key(|e| (e.dur_us, std::cmp::Reverse(e.id)))
        };
        let root = longest(None)?;
        let critical_us = root.dur_us;
        let mut chain = vec![root.name.clone()];
        let mut cursor = root.id;
        while let Some(child) = longest(Some(cursor)) {
            chain.push(child.name.clone());
            cursor = child.id;
        }
        Some((chain, critical_us))
    }

    /// The `trace_summary` journal event: span count, the critical
    /// path, and per-name self-times (`selftime/<name>` fields, µs).
    pub fn summary_event(&self) -> Event {
        let mut event = Event::new("trace_summary").field("spans", self.len() as u64);
        if let Some((chain, critical_us)) = self.critical_path() {
            event = event
                .field("critical_us", critical_us)
                .field("critical_path", chain.join(" > "));
        }
        for (name, st) in self.self_times() {
            event = event.field(&format!("selftime/{name}"), st.self_us);
        }
        event
    }

    /// Export the summary into `metrics`: one `obs/selftime/{span}`
    /// gauge per name (path separators flattened to `_` so the name
    /// stays one dynamic segment) and the `trace/spans` counter.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        metrics.counter("trace/spans").add(self.len() as u64);
        for (name, st) in self.self_times() {
            let flat = name.replace('/', "_");
            metrics
                .gauge(&format!("obs/selftime/{flat}"))
                .set(st.self_us.min(i64::MAX as u64) as i64);
        }
    }
}

/// An open traced span: records its interval on [`close`].
///
/// [`close`]: TraceHandle::close
#[derive(Debug)]
pub struct TraceHandle {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
}

impl TraceHandle {
    /// This span's id (the parent for explicit children).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Open a child span explicitly parented under this one — correct
    /// even when the child lives on another thread.
    pub fn child(&self) -> TraceHandle {
        self.tracer.open_child_of(Some(self.id))
    }

    /// Close the span: pop it from the calling thread's open stack and
    /// record the `start`..now interval under `name`.
    pub fn close(self, name: &str, start: Instant) {
        let dur_us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let token = self.tracer.token();
        OPEN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == token && id == self.id)
            {
                stack.remove(pos);
            }
        });
        let ts_us = self.tracer.ts_us(start);
        self.tracer.push(TraceEvent {
            name: name.to_string(),
            ts_us,
            dur_us,
            tid: thread_ordinal(),
            id: self.id,
            parent: self.parent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn open_close_nests_by_thread_stack() {
        let tracer = Tracer::new();
        let t0 = Instant::now();
        let outer = tracer.open();
        assert_eq!(tracer.current_parent(), Some(outer.id()));
        let t1 = Instant::now();
        let inner = tracer.open();
        inner.close("run/fit", t1);
        outer.close("run", t0);
        assert_eq!(tracer.current_parent(), None);

        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        let run = events.iter().find(|e| e.name == "run").unwrap();
        let fit = events.iter().find(|e| e.name == "run/fit").unwrap();
        assert_eq!(run.parent, None);
        assert_eq!(fit.parent, Some(run.id));
        assert_eq!(run.tid, fit.tid);
    }

    #[test]
    fn explicit_parents_cross_threads() {
        let tracer = Tracer::new();
        let t0 = Instant::now();
        let phase = tracer.open();
        let phase_id = phase.id();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let started = Instant::now();
                    tracer.record_interval("job/shard_attempt", started, Some(phase_id));
                });
            }
        });
        phase.close("job/map", t0);
        let events = tracer.snapshot();
        assert_eq!(events.len(), 3);
        let attempts: Vec<_> = events
            .iter()
            .filter(|e| e.name == "job/shard_attempt")
            .collect();
        assert_eq!(attempts.len(), 2);
        assert!(attempts.iter().all(|e| e.parent == Some(phase_id)));
        // Worker intervals carry their own thread ordinals.
        let map_tid = events.iter().find(|e| e.name == "job/map").unwrap().tid;
        assert!(attempts.iter().all(|e| e.tid != map_tid));
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let tracer = Tracer::new();
        let t0 = Instant::now();
        let h = tracer.open();
        std::thread::sleep(Duration::from_millis(2));
        h.close("run", t0);
        let doc = tracer.to_chrome_json();
        let events = doc.get("traceEvents").unwrap();
        assert_eq!(events.items().len(), 1);
        let e = &events.items()[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("run"));
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("pid").unwrap().as_i64(), Some(1));
        assert!(e.get("dur").unwrap().as_i64().unwrap() >= 1_000);
        assert!(e.get("tid").unwrap().as_i64().unwrap() >= 1);
        assert_eq!(e.get("args").unwrap().get("id").unwrap().as_i64(), Some(1));
        // Round-trips through our own parser.
        let reparsed = crate::json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(reparsed.get("traceEvents").unwrap().items().len(), 1);
    }

    #[test]
    fn concurrent_export_is_well_formed_and_lossless() {
        // Workers keep opening children while the main thread exports;
        // every intermediate export must parse, and once the workers
        // join, no span may be missing.
        let tracer = Tracer::new();
        let t0 = Instant::now();
        let root = tracer.open();
        let root_id = root.id();
        const WORKERS: usize = 4;
        const SPANS_PER_WORKER: usize = 200;
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for _ in 0..SPANS_PER_WORKER {
                        let started = Instant::now();
                        let child = tracer.open_child_of(Some(root_id));
                        child.close("job/shard_attempt", started);
                    }
                });
            }
            // Export mid-flight, repeatedly, while children are opening.
            for _ in 0..20 {
                let doc = tracer.to_chrome_json();
                let reparsed = crate::json::parse(&doc.to_pretty()).unwrap();
                let events = reparsed.get("traceEvents").unwrap().items();
                assert_eq!(events.len(), doc.get("traceEvents").unwrap().items().len());
                for e in events {
                    assert!(e.get("name").unwrap().as_str().is_some());
                    assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
                    assert!(e.get("args").unwrap().get("id").unwrap().as_i64().is_some());
                }
            }
        });
        root.close("run", t0);
        let doc = tracer.to_chrome_json();
        let reparsed = crate::json::parse(&doc.to_pretty()).unwrap();
        let events = reparsed.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), WORKERS * SPANS_PER_WORKER + 1);
        let attempts = events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("job/shard_attempt"))
            .count();
        assert_eq!(attempts, WORKERS * SPANS_PER_WORKER);
    }

    #[test]
    fn self_times_subtract_children() {
        let tracer = Tracer::new();
        // Build a deterministic tree from explicit timestamps:
        // run [0, 100], with children fit [10, 40) and lfs [50, 90).
        let run = tracer.record_interval_at("run", 0, 100, None);
        tracer.record_interval_at("run/fit", 10, 30, Some(run));
        tracer.record_interval_at("lf_exec/sharded", 50, 40, Some(run));
        let times: std::collections::BTreeMap<_, _> = tracer.self_times().into_iter().collect();
        assert_eq!(times["run"].total_us, 100);
        assert_eq!(times["run"].self_us, 30);
        assert_eq!(times["run/fit"].self_us, 30);
        assert_eq!(times["lf_exec/sharded"].count, 1);
    }

    #[test]
    fn critical_path_follows_longest_children() {
        let tracer = Tracer::new();
        let run = tracer.record_interval_at("run", 0, 100, None);
        tracer.record_interval_at("run/fit", 0, 20, Some(run));
        let lfs = tracer.record_interval_at("lf_exec/sharded", 20, 70, Some(run));
        tracer.record_interval_at("job/map", 20, 60, Some(lfs));
        let (chain, critical_us) = tracer.critical_path().unwrap();
        assert_eq!(chain, vec!["run", "lf_exec/sharded", "job/map"]);
        assert_eq!(critical_us, 100);
    }

    #[test]
    fn summary_event_and_metric_export() {
        let tracer = Tracer::new();
        let run = tracer.record_interval_at("run", 0, 100, None);
        tracer.record_interval_at("job/map", 10, 40, Some(run));
        let event = tracer.summary_event();
        assert_eq!(event.kind(), "trace_summary");
        let (journal, buffer) = crate::journal::RunJournal::in_memory();
        journal.emit(event);
        let json = buffer.parsed_lines().unwrap().remove(0);
        assert_eq!(json.get("spans").unwrap().as_i64(), Some(2));
        assert_eq!(json.get("critical_us").unwrap().as_i64(), Some(100));
        assert_eq!(
            json.get("critical_path").unwrap().as_str(),
            Some("run > job/map")
        );
        assert_eq!(json.get("selftime/run").unwrap().as_i64(), Some(60));

        let metrics = MetricsRegistry::new();
        tracer.export_metrics(&metrics);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("trace/spans"), 2);
        assert_eq!(snap.gauge("obs/selftime/run"), 60);
        assert_eq!(snap.gauge("obs/selftime/job_map"), 40);
    }

    #[test]
    fn empty_tracer_has_no_critical_path() {
        let tracer = Tracer::new();
        assert!(tracer.is_empty());
        assert!(tracer.critical_path().is_none());
        assert_eq!(
            tracer
                .to_chrome_json()
                .get("traceEvents")
                .unwrap()
                .items()
                .len(),
            0
        );
    }
}
