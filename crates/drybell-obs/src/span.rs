//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII timer named by a `/`-separated path; dropping it
//! folds the elapsed time into its [`SpanSet`]. Sibling spans from many
//! threads aggregate into one entry per path (count, total, max), so the
//! same `pipeline/map` span opened by eight workers reports combined busy
//! time. Paths make the hierarchy: rendering indents by depth.
//!
//! Storage is striped: paths hash (FNV-1a) onto a fixed set of
//! independently-locked maps, so concurrent spans at different paths —
//! the common shape, since each worker times its own phase — close
//! without contending on one global lock. Snapshots lock the stripes in
//! order and sort, so the view stays deterministic.
//!
//! When the owning `Telemetry` carries a [`Tracer`], spans opened
//! through it also record a trace interval (id, parent, thread) on
//! drop — see [`Span::with_trace`].
//!
//! [`Tracer`]: crate::trace::Tracer

use crate::flight::FlightRecorder;
use crate::trace::{TraceHandle, Tracer};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Number of independently-locked path maps in a [`SpanSet`].
const STRIPES: usize = 8;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed at this path.
    pub count: u64,
    /// Total microseconds across all of them.
    pub total_us: u64,
    /// The longest single span, microseconds.
    pub max_us: u64,
}

/// Thread-safe collection of span aggregates for one run.
#[derive(Debug, Clone)]
pub struct SpanSet {
    stripes: Arc<[Mutex<HashMap<String, SpanStat>>; STRIPES]>,
}

impl Default for SpanSet {
    fn default() -> SpanSet {
        SpanSet {
            stripes: Arc::new(std::array::from_fn(|_| Mutex::new(HashMap::new()))),
        }
    }
}

/// FNV-1a stripe index for a path.
fn stripe_of(path: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % STRIPES as u64) as usize
}

impl SpanSet {
    /// Create an empty set.
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// Open a span at `path` (e.g. `"pipeline/map"`). Time is recorded
    /// when the returned guard drops.
    pub fn span(&self, path: &str) -> Span {
        Span {
            set: self.clone(),
            path: path.to_string(),
            start: Instant::now(),
            trace: None,
            flight: None,
        }
    }

    fn stripe(&self, path: &str) -> std::sync::MutexGuard<'_, HashMap<String, SpanStat>> {
        // drybell-lint: allow(no-panic-index) — stripe_of is h % STRIPES, always in range
        self.stripes[stripe_of(path)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Fold `elapsed_us` into `path` without an RAII guard — for callers
    /// that already measured the interval themselves.
    pub fn record(&self, path: &str, elapsed_us: u64) {
        self.merge(
            path,
            SpanStat {
                count: 1,
                total_us: elapsed_us,
                max_us: elapsed_us,
            },
        );
    }

    /// Fold a whole pre-aggregated [`SpanStat`] into `path` — the bulk
    /// form thread-local shards use to flush many samples under one
    /// stripe lock.
    pub fn merge(&self, path: &str, stat: SpanStat) {
        let mut map = self.stripe(path);
        let entry = map.entry(path.to_string()).or_default();
        entry.count += stat.count;
        entry.total_us += stat.total_us;
        entry.max_us = entry.max_us.max(stat.max_us);
    }

    /// Snapshot all spans, sorted by path (parents before children).
    pub fn snapshot(&self) -> SpanSnapshot {
        let mut entries: Vec<(String, SpanStat)> = Vec::new();
        for stripe in self.stripes.iter() {
            let map = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            entries.extend(map.iter().map(|(k, v)| (k.clone(), *v)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        SpanSnapshot { entries }
    }
}

/// RAII guard for one timed region. Records on drop.
#[derive(Debug)]
pub struct Span {
    set: SpanSet,
    path: String,
    start: Instant,
    trace: Option<TraceHandle>,
    flight: Option<FlightRecorder>,
}

impl Span {
    /// This span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attach a trace interval: on drop the span also records a
    /// [`TraceEvent`] parented under the calling thread's innermost
    /// open traced span. Used by `Telemetry::span` when a tracer is
    /// configured.
    ///
    /// [`TraceEvent`]: crate::trace::TraceEvent
    pub fn with_trace(mut self, tracer: &Tracer) -> Span {
        self.trace = Some(tracer.open());
        self
    }

    /// Attach a flight recorder: on drop the span also mirrors a
    /// `span_sample` line into the recorder's ring, so fault dumps show
    /// what the process was doing. Used by `Telemetry::span` when a
    /// recorder is configured.
    pub fn with_flight(mut self, flight: FlightRecorder) -> Span {
        self.flight = Some(flight);
        self
    }

    /// The trace id of this span's interval, when traced — the parent
    /// for explicitly-parented child intervals on other threads.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace.as_ref().map(TraceHandle::id)
    }

    /// Open a child span at `<self.path>/<name>`. A traced parent's
    /// child is traced too (the thread-local open stack parents it).
    pub fn child(&self, name: &str) -> Span {
        let mut child = self.set.span(&format!("{}/{}", self.path, name));
        if let Some(trace) = &self.trace {
            child.trace = Some(trace.child());
        }
        child.flight = self.flight.clone();
        child
    }

    /// Elapsed time so far, microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_us();
        self.set.record(&self.path, elapsed);
        if let Some(trace) = self.trace.take() {
            trace.close(&self.path, self.start);
        }
        if let Some(flight) = self.flight.take() {
            flight.span_sample(&self.path, elapsed);
        }
    }
}

/// Sorted, immutable view of a [`SpanSet`].
#[derive(Debug, Clone, Default)]
pub struct SpanSnapshot {
    entries: Vec<(String, SpanStat)>,
}

impl SpanSnapshot {
    /// All `(path, stat)` pairs, sorted by path.
    pub fn entries(&self) -> &[(String, SpanStat)] {
        &self.entries
    }

    /// Stats for one path.
    pub fn get(&self, path: &str) -> Option<SpanStat> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(path))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|(_, stat)| *stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn spans_aggregate_by_path() {
        let set = SpanSet::new();
        for _ in 0..3 {
            let _s = set.span("job/map");
        }
        let _other = set.span("job/reduce");
        drop(_other);
        let snap = set.snapshot();
        assert_eq!(snap.get("job/map").unwrap().count, 3);
        assert_eq!(snap.get("job/reduce").unwrap().count, 1);
        assert!(snap.get("missing").is_none());
        // Sorted: "job/map" < "job/reduce".
        assert_eq!(snap.entries()[0].0, "job/map");
    }

    #[test]
    fn child_paths_nest() {
        let set = SpanSet::new();
        {
            let parent = set.span("run");
            let _child = parent.child("fit");
        }
        let snap = set.snapshot();
        assert_eq!(snap.get("run").unwrap().count, 1);
        assert_eq!(snap.get("run/fit").unwrap().count, 1);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let set = SpanSet::new();
        {
            let _s = set.span("sleepy");
            thread::sleep(Duration::from_millis(5));
        }
        let stat = set.snapshot().get("sleepy").unwrap();
        assert!(stat.total_us >= 4_000, "total {}", stat.total_us);
        assert_eq!(stat.max_us, stat.total_us);
    }

    #[test]
    fn concurrent_spans_are_lossless() {
        let set = SpanSet::new();
        thread::scope(|scope| {
            for _ in 0..8 {
                let set = set.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _s = set.span("worker/busy");
                    }
                });
            }
        });
        assert_eq!(set.snapshot().get("worker/busy").unwrap().count, 800);
    }

    #[test]
    fn manual_record_folds_in() {
        let set = SpanSet::new();
        set.record("x", 10);
        set.record("x", 30);
        let stat = set.snapshot().get("x").unwrap();
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_us, 40);
        assert_eq!(stat.max_us, 30);
    }

    #[test]
    fn merge_folds_pre_aggregated_stats() {
        let set = SpanSet::new();
        set.merge(
            "train/fit",
            SpanStat {
                count: 5,
                total_us: 100,
                max_us: 40,
            },
        );
        set.merge(
            "train/fit",
            SpanStat {
                count: 2,
                total_us: 10,
                max_us: 9,
            },
        );
        let stat = set.snapshot().get("train/fit").unwrap();
        assert_eq!(stat.count, 7);
        assert_eq!(stat.total_us, 110);
        assert_eq!(stat.max_us, 40);
    }

    #[test]
    fn stripes_cover_many_distinct_paths() {
        // Distinct paths land across stripes; the snapshot still sees
        // all of them, sorted.
        let set = SpanSet::new();
        for i in 0..64 {
            set.record(&format!("p{i:02}"), i);
        }
        let snap = set.snapshot();
        assert_eq!(snap.entries().len(), 64);
        assert!(snap.entries().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(snap.get("p63").unwrap().total_us, 63);
    }

    #[test]
    fn traced_spans_record_intervals() {
        let set = SpanSet::new();
        let tracer = Tracer::new();
        {
            let parent = set.span("run").with_trace(&tracer);
            let _child = parent.child("fit");
        }
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        let run = events.iter().find(|e| e.name == "run").unwrap();
        let fit = events.iter().find(|e| e.name == "run/fit").unwrap();
        assert_eq!(fit.parent, Some(run.id));
        assert!(set.snapshot().get("run/fit").is_some());
    }
}
