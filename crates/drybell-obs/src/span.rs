//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII timer named by a `/`-separated path; dropping it
//! folds the elapsed time into its [`SpanSet`]. Sibling spans from many
//! threads aggregate into one entry per path (count, total, max), so the
//! same `pipeline/map` span opened by eight workers reports combined busy
//! time. Paths make the hierarchy: rendering indents by depth.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many spans closed at this path.
    pub count: u64,
    /// Total microseconds across all of them.
    pub total_us: u64,
    /// The longest single span, microseconds.
    pub max_us: u64,
}

/// Thread-safe collection of span aggregates for one run.
#[derive(Debug, Default, Clone)]
pub struct SpanSet {
    inner: Arc<Mutex<HashMap<String, SpanStat>>>,
}

impl SpanSet {
    /// Create an empty set.
    pub fn new() -> SpanSet {
        SpanSet::default()
    }

    /// Open a span at `path` (e.g. `"pipeline/map"`). Time is recorded
    /// when the returned guard drops.
    pub fn span(&self, path: &str) -> Span {
        Span {
            set: self.clone(),
            path: path.to_string(),
            start: Instant::now(),
        }
    }

    /// Fold `elapsed_us` into `path` without an RAII guard — for callers
    /// that already measured the interval themselves.
    pub fn record(&self, path: &str, elapsed_us: u64) {
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let stat = map.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_us += elapsed_us;
        stat.max_us = stat.max_us.max(elapsed_us);
    }

    /// Snapshot all spans, sorted by path (parents before children).
    pub fn snapshot(&self) -> SpanSnapshot {
        let map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<(String, SpanStat)> =
            map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        SpanSnapshot { entries }
    }
}

/// RAII guard for one timed region. Records on drop.
#[derive(Debug)]
pub struct Span {
    set: SpanSet,
    path: String,
    start: Instant,
}

impl Span {
    /// This span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Open a child span at `<self.path>/<name>`.
    pub fn child(&self, name: &str) -> Span {
        self.set.span(&format!("{}/{}", self.path, name))
    }

    /// Elapsed time so far, microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_us();
        self.set.record(&self.path, elapsed);
    }
}

/// Sorted, immutable view of a [`SpanSet`].
#[derive(Debug, Clone, Default)]
pub struct SpanSnapshot {
    entries: Vec<(String, SpanStat)>,
}

impl SpanSnapshot {
    /// All `(path, stat)` pairs, sorted by path.
    pub fn entries(&self) -> &[(String, SpanStat)] {
        &self.entries
    }

    /// Stats for one path.
    pub fn get(&self, path: &str) -> Option<SpanStat> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(path))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|(_, stat)| *stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn spans_aggregate_by_path() {
        let set = SpanSet::new();
        for _ in 0..3 {
            let _s = set.span("job/map");
        }
        let _other = set.span("job/reduce");
        drop(_other);
        let snap = set.snapshot();
        assert_eq!(snap.get("job/map").unwrap().count, 3);
        assert_eq!(snap.get("job/reduce").unwrap().count, 1);
        assert!(snap.get("missing").is_none());
        // Sorted: "job/map" < "job/reduce".
        assert_eq!(snap.entries()[0].0, "job/map");
    }

    #[test]
    fn child_paths_nest() {
        let set = SpanSet::new();
        {
            let parent = set.span("run");
            let _child = parent.child("fit");
        }
        let snap = set.snapshot();
        assert_eq!(snap.get("run").unwrap().count, 1);
        assert_eq!(snap.get("run/fit").unwrap().count, 1);
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let set = SpanSet::new();
        {
            let _s = set.span("sleepy");
            thread::sleep(Duration::from_millis(5));
        }
        let stat = set.snapshot().get("sleepy").unwrap();
        assert!(stat.total_us >= 4_000, "total {}", stat.total_us);
        assert_eq!(stat.max_us, stat.total_us);
    }

    #[test]
    fn concurrent_spans_are_lossless() {
        let set = SpanSet::new();
        thread::scope(|scope| {
            for _ in 0..8 {
                let set = set.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _s = set.span("worker/busy");
                    }
                });
            }
        });
        assert_eq!(set.snapshot().get("worker/busy").unwrap().count, 800);
    }

    #[test]
    fn manual_record_folds_in() {
        let set = SpanSet::new();
        set.record("x", 10);
        set.record("x", 30);
        let stat = set.snapshot().get("x").unwrap();
        assert_eq!(stat.count, 2);
        assert_eq!(stat.total_us, 40);
        assert_eq!(stat.max_us, 30);
    }
}
