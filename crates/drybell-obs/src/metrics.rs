//! The metrics registry: counters, gauges, and log-bucketed latency
//! histograms.
//!
//! All instruments are lock-free atomics once created, so recording on a
//! hot path costs a few relaxed atomic ops. Creation (name lookup) takes
//! a registry lock — callers on hot paths should look an instrument up
//! once and hold the `Arc`.
//!
//! Histograms bucket by the bit width of the recorded value: value `v`
//! lands in bucket `⌊log2 v⌋ + 1` (zero in bucket 0), so 64 buckets cover
//! the full `u64` range with ≤2× relative error, and percentile estimates
//! are clamped to the exactly-tracked min/max. By convention histogram
//! values are **microseconds** and names end in `_us`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (cache occupancy, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of `u64` samples (conventionally µs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `⌊log2 v⌋ + 1`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        // drybell-lint: allow(no-panic-index) — bucket_of(v) ≤ 64 < HISTOGRAM_BUCKETS; per-sample hot path
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (saturating on overflow).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Merge a batch of locally-buffered samples in O(buckets) atomic
    /// operations. Merging is commutative, so any interleaving of
    /// flushes from many threads produces the same totals as recording
    /// every sample directly.
    pub fn merge_local(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                // drybell-lint: allow(no-panic-index) — both bucket arrays share HISTOGRAM_BUCKETS length
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.min.fetch_min(local.min, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }
}

/// An unsynchronized histogram buffer for one thread's samples.
///
/// Same bucketing as [`Histogram`], but plain integers: recording is a
/// couple of ordinary memory writes, with the whole buffer folded into
/// a shared [`Histogram`] at flush time via [`Histogram::merge_local`]
/// (through [`LocalHistogram::drain_into`]). This is what the
/// thread-local telemetry shards (`crate::shard`) buffer latency
/// samples in.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// An empty buffer.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Buffer one sample (no synchronization).
    #[inline]
    pub fn observe(&mut self, v: u64) {
        // drybell-lint: allow(no-panic-index) — bucket_of(v) ≤ 64 < HISTOGRAM_BUCKETS; per-sample hot path
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Buffer a duration sample (microseconds, saturating).
    #[inline]
    pub fn observe_duration(&mut self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Samples buffered since the last drain.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold everything buffered into `shared` and reset this buffer.
    pub fn drain_into(&mut self, shared: &Histogram) {
        shared.merge_local(self);
        *self = LocalHistogram::default();
    }

    /// Fold another local buffer into this one and reset it.
    pub fn absorb(&mut self, other: &mut LocalHistogram) {
        if other.count == 0 {
            return;
        }
        for (i, n) in other.buckets.iter().enumerate() {
            // drybell-lint: allow(no-panic-index) — both bucket arrays share HISTOGRAM_BUCKETS length
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        *other = LocalHistogram::default();
    }
}

impl Histogram {
    /// Copy out an immutable view for percentile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // drybell-lint: allow(no-panic-index) — from_fn passes i in 0..HISTOGRAM_BUCKETS, the array's own length
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`] supporting percentile queries.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw log-bucket counts (index `i` holds values whose bit width
    /// is `i`; see the module docs). Exposed so cross-run tooling can
    /// compare whole distributions (e.g. a population-stability index),
    /// not just the percentile ladder.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form
    /// reports and journals serialize.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// The estimate is the upper edge of the bucket holding the ranked
    /// sample, clamped into `[min, max]` — so a single-sample histogram
    /// reports that sample exactly, and the open-ended top bucket can
    /// never report beyond the observed maximum. Returns `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample we want.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i - 1]; its upper
                // edge over-estimates by at most 2×.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return Some(upper.clamp(self.min, self.max));
            }
        }
        // Unreachable when counts are consistent; fall back to max.
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// A shared, clonable registry of named instruments.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up (or create) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.locked();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// Look up (or create) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.locked();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::default());
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// Look up (or create) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.locked();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Snapshot every instrument, each section sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            // drybell-lint: allow(determinism) — collected into a Vec and sorted two lines down
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            // drybell-lint: allow(determinism) — collected into a Vec and sorted two lines down
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            // drybell-lint: allow(determinism) — collected into a Vec and sorted two lines down
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A point-in-time copy of every instrument in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Counter value by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .and_then(|i| self.counters.get(i))
            .map_or(0, |(_, v)| *v)
    }

    /// Gauge value by name (zero if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .and_then(|i| self.gauges.get(i))
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .and_then(|i| self.histograms.get(i))
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        reg.counter("nlp_calls").add(3);
        reg.counter("nlp_calls").inc();
        reg.gauge("nlp_cache/size").set(7);
        reg.gauge("nlp_cache/size").add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("nlp_calls"), 4);
        assert_eq!(snap.gauge("nlp_cache/size"), 5);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn histogram_empty_has_no_percentiles() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn histogram_single_sample_is_exact() {
        let h = Histogram::default();
        h.record(777);
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(777));
        assert_eq!(s.p99(), Some(777));
        assert_eq!(s.quantile(0.0), Some(777));
        assert_eq!(s.quantile(1.0), Some(777));
        assert_eq!(s.min(), Some(777));
        assert_eq!(s.max(), Some(777));
        assert_eq!(s.mean(), Some(777.0));
    }

    #[test]
    fn histogram_zero_goes_in_bucket_zero() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.p50(), Some(0));
        assert_eq!(s.max(), Some(0));
    }

    #[test]
    fn histogram_overflow_bucket_clamps_to_max() {
        let h = Histogram::default();
        // Top bucket is open-ended [2^63, u64::MAX]; estimates must not
        // exceed the observed maximum.
        h.record(u64::MAX - 3);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(s.p99(), Some(u64::MAX - 3));
        assert_eq!(s.p50(), Some(u64::MAX - 3));
    }

    #[test]
    fn histogram_percentiles_are_order_of_magnitude_right() {
        let h = Histogram::default();
        // 90 fast samples around 100µs, 10 slow around 100_000µs.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap();
        assert!((64..=256).contains(&p50), "p50 {p50}");
        let p99 = s.p99().unwrap();
        assert!((65_536..=100_000).contains(&p99), "p99 {p99}");
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn local_histogram_merges_like_direct_recording() {
        let direct = Histogram::default();
        let shared = Histogram::default();
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for v in [0u64, 1, 100, 777, 100_000] {
            direct.record(v);
            a.observe(v);
        }
        for v in [3u64, 9] {
            direct.record(v);
            b.observe(v);
        }
        a.absorb(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.count(), 7);
        a.drain_into(&shared);
        assert!(a.is_empty());
        let d = direct.snapshot();
        let s = shared.snapshot();
        assert_eq!(d.buckets(), s.buckets());
        assert_eq!(d.sum(), s.sum());
        assert_eq!(d.min(), s.min());
        assert_eq!(d.max(), s.max());
        assert_eq!(d.p50(), s.p50());
        assert_eq!(d.p99(), s.p99());
    }

    #[test]
    fn empty_local_merge_leaves_min_max_untouched() {
        let shared = Histogram::default();
        shared.record(5);
        shared.merge_local(&LocalHistogram::new());
        let s = shared.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), Some(5));
        assert_eq!(s.max(), Some(5));
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Arc::new(Histogram::default());
        thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
