//! The structured run journal: one JSON object per line, one line per
//! event (a pipeline phase finishing, a training epoch, a shard written,
//! a shadow-eval verdict, …).
//!
//! Every line carries a monotonic sequence number and seconds since the
//! journal opened, so events order and align even when emitted from many
//! threads. The format is append-only JSONL — greppable, and parseable
//! line-by-line with [`crate::json::parse`].

use crate::json::Json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Journal schema version stamped by [`RunJournal::emit_header`].
///
/// Journals written before the header existed carry no version; readers
/// (e.g. `drybell-doctor`) treat them as schema `0`.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a over the given parts (each terminated by a NUL so `["ab"]`
/// and `["a", "b"]` hash differently), rendered as 16 hex digits.
///
/// This is the stable config fingerprint callers put in the journal
/// header: hash the knobs that define the run's configuration (scale,
/// seed, worker count, …) and two runs are comparable iff the digests
/// match.
pub fn config_fingerprint<'a>(parts: impl IntoIterator<Item = &'a str>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for part in parts {
        for b in part.bytes() {
            step(b);
        }
        step(0);
    }
    format!("{h:016x}")
}

/// One journal event under construction.
#[derive(Debug, Clone)]
pub struct Event {
    kind: String,
    fields: Vec<(String, Json)>,
}

impl Event {
    /// Start an event of the given kind (e.g. `"phase"`, `"epoch"`).
    pub fn new(kind: &str) -> Event {
        Event {
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Attach a field. Order is preserved in the output line.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Event {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The event kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The event as a standalone JSON object: `kind` plus the fields in
    /// attachment order, without the journal's `seq`/`t` envelope (those
    /// are assigned at emit time). Used by side channels that observe
    /// events without owning them — e.g. the flight recorder's ring.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::with_capacity(self.fields.len() + 1);
        fields.push(("kind".to_string(), Json::Str(self.kind.clone())));
        fields.extend(self.fields.iter().cloned());
        Json::Obj(fields)
    }

    fn into_json(self, seq: u64, t_seconds: f64) -> Json {
        let mut fields = Vec::with_capacity(self.fields.len() + 3);
        fields.push(("seq".to_string(), Json::from(seq)));
        fields.push(("t".to_string(), Json::Num(t_seconds)));
        fields.push(("kind".to_string(), Json::Str(self.kind)));
        fields.extend(self.fields);
        Json::Obj(fields)
    }
}

/// Everything a write needs, under one lock: assigning the sequence
/// number and appending the line are a single critical section, so a
/// line's position in the file always matches its `seq` field.
struct JournalState {
    sink: Box<dyn Write + Send>,
    seq: u64,
}

struct JournalInner {
    state: Mutex<JournalState>,
    start: Instant,
}

/// A shared, clonable handle to one append-only JSONL journal.
#[derive(Clone)]
pub struct RunJournal {
    inner: Arc<JournalInner>,
}

impl std::fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunJournal")
            .field("events", &self.events())
            .finish()
    }
}

impl RunJournal {
    /// Journal into a buffered file at `path` (truncating).
    pub fn to_path(path: &Path) -> io::Result<RunJournal> {
        let file = File::create(path)?;
        Ok(RunJournal::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Journal into any writer.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> RunJournal {
        RunJournal {
            inner: Arc::new(JournalInner {
                state: Mutex::new(JournalState { sink, seq: 0 }),
                start: Instant::now(),
            }),
        }
    }

    /// Journal into a shared in-memory buffer, returned alongside the
    /// handle — the natural choice in tests.
    pub fn in_memory() -> (RunJournal, JournalBuffer) {
        let buffer = JournalBuffer::default();
        (RunJournal::to_writer(Box::new(buffer.clone())), buffer)
    }

    /// Emit the run-identity header: one `run_header` event carrying the
    /// journal [`SCHEMA_VERSION`], a caller-chosen run id, and a config
    /// fingerprint (see [`config_fingerprint`]). By convention this is
    /// the first event of a journal; readers must tolerate journals
    /// without one (older artifacts are schema `0`).
    pub fn emit_header(&self, run_id: &str, config_fingerprint: &str) {
        self.emit(
            Event::new("run_header")
                .field("schema_version", SCHEMA_VERSION)
                .field("run_id", run_id)
                .field("config_fingerprint", config_fingerprint),
        );
    }

    /// Append one event. The journal lock is taken exactly once per
    /// event — sequence assignment and the write are one critical
    /// section. Write errors are deliberately swallowed: telemetry
    /// must never take down the pipeline it observes.
    pub fn emit(&self, event: Event) {
        let t = self.inner.start.elapsed().as_secs_f64();
        let mut state = self.locked();
        let seq = state.seq;
        state.seq += 1;
        let line = event.into_json(seq, t).to_line();
        let _ = writeln!(state.sink, "{line}");
    }

    /// Append a batch of events under one lock acquisition, with
    /// consecutive sequence numbers and a shared timestamp — the flush
    /// path for thread-local telemetry shards (`crate::shard`), where
    /// buffered events must land contiguously rather than interleaved
    /// with other threads' flushes.
    pub fn emit_batch(&self, events: impl IntoIterator<Item = Event>) {
        let t = self.inner.start.elapsed().as_secs_f64();
        let mut state = self.locked();
        for event in events {
            let seq = state.seq;
            state.seq += 1;
            let line = event.into_json(seq, t).to_line();
            let _ = writeln!(state.sink, "{line}");
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, JournalState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of events emitted so far.
    pub fn events(&self) -> u64 {
        self.locked().seq
    }

    /// Flush the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.locked().sink.flush()
    }
}

/// A clonable in-memory sink for [`RunJournal::in_memory`].
#[derive(Debug, Default, Clone)]
pub struct JournalBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl JournalBuffer {
    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        let bytes = self.bytes.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Parse each non-empty line as JSON.
    pub fn parsed_lines(&self) -> Result<Vec<Json>, crate::json::JsonError> {
        self.contents()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(crate::json::parse)
            .collect()
    }
}

impl Write for JournalBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_seq_time_and_fields() {
        let (journal, buffer) = RunJournal::in_memory();
        journal.emit(
            Event::new("phase")
                .field("name", "map")
                .field("seconds", 0.5)
                .field("records", 12u64),
        );
        journal.emit(Event::new("done"));
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].get("seq").unwrap().as_i64(), Some(0));
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("phase"));
        assert_eq!(lines[0].get("name").unwrap().as_str(), Some("map"));
        assert_eq!(lines[0].get("records").unwrap().as_i64(), Some(12));
        assert!(lines[0].get("t").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(lines[1].get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(journal.events(), 2);
    }

    #[test]
    fn concurrent_emits_produce_distinct_whole_lines() {
        let (journal, buffer) = RunJournal::in_memory();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let journal = journal.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        journal.emit(
                            Event::new("tick")
                                .field("worker", t as u64)
                                .field("i", i as u64),
                        );
                    }
                });
            }
        });
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines.len(), 200);
        // All sequence numbers present exactly once.
        let mut seqs: Vec<i64> = lines
            .iter()
            .map(|l| l.get("seq").unwrap().as_i64().unwrap())
            .collect();
        seqs.sort();
        assert_eq!(seqs, (0..200).collect::<Vec<i64>>());
    }

    #[test]
    fn batches_are_contiguous_under_interleaved_writers() {
        let (journal, buffer) = RunJournal::in_memory();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let journal = journal.clone();
                scope.spawn(move || {
                    for batch in 0..10 {
                        journal.emit_batch((0..5).map(|i| {
                            Event::new("tick")
                                .field("worker", t as u64)
                                .field("batch", batch as u64)
                                .field("i", i as u64)
                        }));
                    }
                });
            }
        });
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines.len(), 200);
        assert_eq!(journal.events(), 200);
        // Sequence numbers are dense and in file order...
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(line.get("seq").unwrap().as_i64(), Some(i as i64));
        }
        // ...and each 5-event batch landed contiguously.
        for window in lines.chunks(5) {
            let worker = window[0].get("worker").unwrap().as_i64();
            let batch = window[0].get("batch").unwrap().as_i64();
            for (i, line) in window.iter().enumerate() {
                assert_eq!(line.get("worker").unwrap().as_i64(), worker);
                assert_eq!(line.get("batch").unwrap().as_i64(), batch);
                assert_eq!(line.get("i").unwrap().as_i64(), Some(i as i64));
            }
        }
    }

    #[test]
    fn header_event_carries_schema_and_identity() {
        let (journal, buffer) = RunJournal::in_memory();
        journal.emit_header("run-7", "deadbeefdeadbeef");
        journal.emit(Event::new("phase").field("name", "map"));
        let lines = buffer.parsed_lines().unwrap();
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("run_header"));
        assert_eq!(
            lines[0].get("schema_version").unwrap().as_i64(),
            Some(i64::from(SCHEMA_VERSION))
        );
        assert_eq!(lines[0].get("run_id").unwrap().as_str(), Some("run-7"));
        assert_eq!(
            lines[0].get("config_fingerprint").unwrap().as_str(),
            Some("deadbeefdeadbeef")
        );
        assert_eq!(lines[0].get("seq").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn config_fingerprint_is_stable_and_boundary_sensitive() {
        let a = config_fingerprint(["scale=0.1", "seed=7"]);
        assert_eq!(a, config_fingerprint(["scale=0.1", "seed=7"]));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, config_fingerprint(["scale=0.1", "seed=8"]));
        // Part boundaries matter: ["ab"] and ["a","b"] differ.
        assert_ne!(config_fingerprint(["ab"]), config_fingerprint(["a", "b"]));
        assert_ne!(
            config_fingerprint(std::iter::empty::<&str>()),
            config_fingerprint([""])
        );
    }

    #[test]
    fn file_journal_round_trips() {
        let dir = std::env::temp_dir().join(format!("obs-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let journal = RunJournal::to_path(&path).unwrap();
        journal.emit(Event::new("phase").field("name", "reduce"));
        journal.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let line = crate::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(line.get("name").unwrap().as_str(), Some("reduce"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
