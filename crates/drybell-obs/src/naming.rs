//! The canonical telemetry-name registry.
//!
//! Every metric, span path, and journal event kind that production code
//! may emit is declared here, once, as a [`NameSpec`]. The crate-level
//! convention (see the [crate] docs) is that job-level counters keep
//! their MapReduce names (`votes/<lf>`, `nlp_calls`, `nlp_cache/hits`)
//! while instruments owned by the observability layer are namespaced
//! `obs/<area>/<metric>`, with `_us` suffixing microsecond-latency
//! histograms. This module turns that prose into data so that:
//!
//! * `drybell-lint`'s `telemetry-conventions` rule can check the string
//!   literal at every `counter(..)` / `gauge(..)` / `histogram(..)` /
//!   `span(..)` / `Event::new(..)` call site against the registry, and
//! * dashboards and journal consumers have a single source of truth for
//!   what a run can emit.
//!
//! Templates may contain `{placeholder}` segments standing for one
//! dynamic `/`-separated segment — `votes/{lf}` matches the per-LF
//! counter family built with `format!("votes/{}", name)`. Adding a new
//! instrument means adding a row here first; the lint fails otherwise.

/// Which instrument family a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Monotonic counters in a `MetricsRegistry` (or job-level
    /// `Counters` merged into reports).
    Counter,
    /// Point-in-time gauges.
    Gauge,
    /// Log-bucketed latency histograms.
    Histogram,
    /// `/`-separated wall-clock span paths.
    Span,
    /// `kind` values of journal events.
    JournalKind,
}

impl Family {
    /// Stable lower-case name, used in lint diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Counter => "counter",
            Family::Gauge => "gauge",
            Family::Histogram => "histogram",
            Family::Span => "span",
            Family::JournalKind => "journal-kind",
        }
    }
}

/// One registered telemetry name (or name family, when the template has
/// `{placeholder}` segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameSpec {
    /// The instrument family the name belongs to.
    pub family: Family,
    /// The canonical name; `{placeholder}` stands for one dynamic
    /// `/`-separated segment.
    pub template: &'static str,
    /// What the instrument measures and who emits it.
    pub doc: &'static str,
}

/// Every name production code may emit, grouped by family.
pub const REGISTRY: &[NameSpec] = &[
    // ---- Counters (MapReduce-era job names, un-prefixed) ----
    NameSpec {
        family: Family::Counter,
        template: "votes/{lf}",
        doc: "non-abstain votes per labeling function (LF executor)",
    },
    NameSpec {
        family: Family::Counter,
        template: "nlp_calls",
        doc: "annotate requests reaching the NLP model server",
    },
    NameSpec {
        family: Family::Counter,
        template: "nlp_cache/hits",
        doc: "NLP memo-table hits (sharded job counters)",
    },
    NameSpec {
        family: Family::Counter,
        template: "nlp_cache/misses",
        doc: "NLP memo-table misses (sharded job counters)",
    },
    NameSpec {
        family: Family::Counter,
        template: "nlp_cache/evictions",
        doc: "NLP memo-table evictions (sharded job counters)",
    },
    NameSpec {
        family: Family::Counter,
        template: "dataflow/retries",
        doc: "shard/partition attempts that failed and were requeued (MapReduce engine)",
    },
    NameSpec {
        family: Family::Counter,
        template: "dataflow/skipped_records",
        doc: "records dropped under skip_bad_record_budget instead of failing the shard",
    },
    NameSpec {
        family: Family::Counter,
        template: "dataflow/backoff_deferrals",
        doc: "not-yet-due retry tasks a worker requeued instead of sleeping their backoff",
    },
    NameSpec {
        family: Family::Counter,
        template: "serving/rejected",
        doc: "requests rejected because the front-end admission queue was full",
    },
    NameSpec {
        family: Family::Counter,
        template: "serving/degraded",
        doc: "requests answered with the declared default score after their latency budget lapsed",
    },
    NameSpec {
        family: Family::Counter,
        template: "lf/{lf}/degraded",
        doc: "examples where the LF abstained because its backing service errored",
    },
    NameSpec {
        family: Family::Counter,
        template: "obs/train/rows",
        doc: "example rows consumed by generative-model gradient accumulation",
    },
    NameSpec {
        family: Family::Counter,
        template: "obs/train/posterior_rows",
        doc: "rows scored by observed posterior inference (predict_proba_observed)",
    },
    NameSpec {
        family: Family::Counter,
        template: "trace/spans",
        doc: "trace intervals recorded by the tracer (exported at trace write time)",
    },
    NameSpec {
        family: Family::Counter,
        template: "stream/shards_seen",
        doc: "committed shards delivered by the streaming ingestor (exactly once each)",
    },
    NameSpec {
        family: Family::Counter,
        template: "stream/events",
        doc: "journal events folded by the in-stream drift monitor (StreamMonitor)",
    },
    NameSpec {
        family: Family::Counter,
        template: "stream/counter_resets",
        doc: "cumulative-counter resets observed by WindowFolder (a producer restarted)",
    },
    NameSpec {
        family: Family::Counter,
        template: "live/requests",
        doc: "HTTP requests answered by the in-process live snapshot server",
    },
    // ---- Gauges (point-in-time exports of absolute levels) ----
    NameSpec {
        family: Family::Gauge,
        template: "stream/lag_us",
        doc: "commit-to-delivery lag of the most recent shard, microseconds (StreamIngestor)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "nlp_cache/hits",
        doc: "cumulative cache hits at export time (CachedNlpServer)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "nlp_cache/misses",
        doc: "cumulative cache misses at export time (CachedNlpServer)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "nlp_cache/evictions",
        doc: "cumulative evictions at export time (CachedNlpServer)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "nlp_cache/size",
        doc: "resident memo-table entries at export time (CachedNlpServer)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "obs/train/threads",
        doc: "worker-pool size in effect for the current generative-model fit",
    },
    NameSpec {
        family: Family::Gauge,
        template: "lf/{lf}/coverage_ppm",
        doc: "LfReport coverage export, parts-per-million fixed point (export_to)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "lf/{lf}/overlap_ppm",
        doc: "LfReport overlap export, parts-per-million fixed point (export_to)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "lf/{lf}/conflict_ppm",
        doc: "LfReport conflict export, parts-per-million fixed point (export_to)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "lf/{lf}/learned_accuracy_ppm",
        doc: "LfReport learned-accuracy export, parts-per-million fixed point (export_to)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "obs/selftime/{span}",
        doc: "per-span self time from the trace summary, µs (span path slashes flattened to _)",
    },
    NameSpec {
        family: Family::Gauge,
        template: "serving/queue_depth",
        doc: "front-end admission-queue depth sampled at each batch drain",
    },
    NameSpec {
        family: Family::Gauge,
        template: "serving/batch_size",
        doc: "size of the most recent micro-batch drained by a scoring worker",
    },
    NameSpec {
        family: Family::Gauge,
        template: "slo/{window}/p99_us",
        doc: "rolling-window p99 request latency per SLO window (fast/slow), µs",
    },
    NameSpec {
        family: Family::Gauge,
        template: "slo/{window}/error_ppm",
        doc: "rolling-window degraded/error rate per SLO window, parts-per-million",
    },
    NameSpec {
        family: Family::Gauge,
        template: "slo/{window}/p99_burn_ppm",
        doc: "latency burn rate per SLO window: window p99 over budget, ppm fixed point",
    },
    NameSpec {
        family: Family::Gauge,
        template: "slo/{window}/error_burn_ppm",
        doc: "error burn rate per SLO window: window error rate over budget, ppm fixed point",
    },
    // ---- Histograms (obs-layer, microseconds, `_us` suffix) ----
    NameSpec {
        family: Family::Histogram,
        template: "obs/lf/{lf}/eval_us",
        doc: "per-LF evaluation latency (LF executor)",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/train/step_us",
        doc: "generative-model training step latency",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/train/predict_us",
        doc: "full-matrix posterior inference latency (predict_proba_observed)",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/nlp/annotate_us",
        doc: "NLP annotate latency (instrumented server)",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/serving/score_us",
        doc: "serving-path score latency",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/serving/shadow_score_us",
        doc: "shadow-path dual-score latency",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/serving/batch_us",
        doc: "front-end micro-batch drain+score latency (per batch)",
    },
    NameSpec {
        family: Family::Histogram,
        template: "obs/serving/request_us",
        doc: "front-end end-to-end request latency, enqueue to response",
    },
    // ---- Span paths ----
    NameSpec {
        family: Family::Span,
        template: "run",
        doc: "whole-run root span",
    },
    NameSpec {
        family: Family::Span,
        template: "run/fit",
        doc: "model fitting within a run",
    },
    NameSpec {
        family: Family::Span,
        template: "train/fit",
        doc: "generative-model fit",
    },
    NameSpec {
        family: Family::Span,
        template: "lf_exec/in_memory",
        doc: "in-memory LF execution pass",
    },
    NameSpec {
        family: Family::Span,
        template: "lf_exec/sharded",
        doc: "sharded (MapReduce) LF execution pass",
    },
    NameSpec {
        family: Family::Span,
        template: "job/map",
        doc: "map phase of a MapReduce job",
    },
    NameSpec {
        family: Family::Span,
        template: "job/reduce",
        doc: "reduce phase of a MapReduce job",
    },
    NameSpec {
        family: Family::Span,
        template: "worker/busy",
        doc: "per-worker busy time",
    },
    NameSpec {
        family: Family::Span,
        template: "job/shard_attempt",
        doc: "one attempt at one shard/partition task (retries record one span each)",
    },
    NameSpec {
        family: Family::Span,
        template: "lf/{lf}",
        doc: "per-LF aggregate trace block within one shard attempt (trace exporter only)",
    },
    // ---- Journal event kinds ----
    NameSpec {
        family: Family::JournalKind,
        template: "phase",
        doc: "a MapReduce phase started or finished",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "job",
        doc: "one MapReduce job completed, with its counters",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "pipeline",
        doc: "a multi-job pipeline completed",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "lf_execution",
        doc: "one LF-matrix materialization, with vote/cache stats",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "train",
        doc: "generative-model training completed",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "train_epoch",
        doc: "one generative-model training epoch",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "content_report",
        doc: "end-of-run content-pipeline quality report",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "scaling",
        doc: "one point of a worker-scaling experiment",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "shadow",
        doc: "a shadow-evaluation report (serving layer)",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "shard_attempt",
        doc: "one shard/partition attempt finished (outcome: ok, retry, or failed)",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "run_header",
        doc: "journal schema version + run id + config fingerprint (first event)",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "lf_report",
        doc: "full per-LF diagnostics (coverage/overlap/conflict/learned accuracy)",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "trace_summary",
        doc: "self-profiling digest: span count, critical path, per-span self-times",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "serving_bench",
        doc: "one exp_serving load-generator run: throughput, tail latencies, degrade counts",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "streaming_bench",
        doc: "one exp_streaming run: detection latency, incremental-vs-refit gap, replay check",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "slo_breach",
        doc: "both SLO burn-rate windows exceeded budget (front-end, edge-triggered)",
    },
    NameSpec {
        family: Family::JournalKind,
        template: "flight_dump",
        doc: "the flight recorder dumped its ring to flight-<ts>.jsonl, with the trigger reason",
    },
];

/// Whether `segment` is a `{placeholder}` (dynamic) segment. `{}` — the
/// shape a `format!` literal leaves at a call site — counts.
fn is_placeholder(segment: &str) -> bool {
    segment.starts_with('{') && segment.ends_with('}')
}

/// Whether `name` matches `template`, segment-wise: a literal template
/// segment must match exactly; a `{placeholder}` template segment
/// matches any non-empty segment, including a `{}`-style placeholder
/// extracted from a `format!` call site.
pub fn template_matches(template: &str, name: &str) -> bool {
    let mut t = template.split('/');
    let mut n = name.split('/');
    loop {
        match (t.next(), n.next()) {
            (None, None) => return true,
            (Some(ts), Some(ns)) => {
                if is_placeholder(ts) {
                    if ns.is_empty() {
                        return false;
                    }
                } else if ts != ns {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// Whether every segment of `template` is dynamic. A lint cannot judge
/// such a name statically (e.g. the `{parent}/{child}` path a child
/// span builds), so callers treat it as out of scope.
pub fn is_fully_dynamic(template: &str) -> bool {
    template.split('/').all(is_placeholder)
}

/// The registry row matching `name` in `family`, if any.
pub fn lookup(family: Family, name: &str) -> Option<&'static NameSpec> {
    REGISTRY
        .iter()
        .find(|spec| spec.family == family && template_matches(spec.template, name))
}

/// Whether `name` is a registered `family` name.
pub fn is_registered(family: Family, name: &str) -> bool {
    lookup(family, name).is_some()
}

/// All registered templates in `family` (for diagnostics: "did you mean
/// one of ...").
pub fn templates(family: Family) -> impl Iterator<Item = &'static str> {
    REGISTRY
        .iter()
        .filter(move |spec| spec.family == family)
        .map(|spec| spec.template)
}

/// Check the registry's own invariants, returning every violation.
/// Empty means well-formed. Exercised by unit tests and by
/// `drybell-lint` at startup so a malformed registry fails loudly
/// instead of silently accepting everything.
pub fn validate() -> Vec<String> {
    let mut problems = Vec::new();
    for spec in REGISTRY {
        let t = spec.template;
        if t.is_empty() {
            problems.push(format!("{}: empty template", spec.family.as_str()));
            continue;
        }
        for segment in t.split('/') {
            let ok = if is_placeholder(segment) {
                segment.len() > 2
                    && segment
                        .strip_prefix('{')
                        .and_then(|s| s.strip_suffix('}'))
                        .is_some_and(|inner| {
                            inner.chars().all(|c| c.is_ascii_lowercase() || c == '_')
                        })
            } else {
                !segment.is_empty()
                    && segment
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            };
            if !ok {
                problems.push(format!("{t}: bad segment {segment:?}"));
            }
        }
        if spec.family == Family::Histogram {
            if !t.starts_with("obs/") {
                problems.push(format!("{t}: histograms must be namespaced obs/"));
            }
            if !t.ends_with("_us") {
                problems.push(format!("{t}: latency histograms must end in _us"));
            }
        }
        if spec.family == Family::JournalKind && t.contains('/') {
            problems.push(format!("{t}: journal kinds are single segments"));
        }
        if spec.doc.is_empty() {
            problems.push(format!("{t}: missing doc"));
        }
        if is_fully_dynamic(t) {
            problems.push(format!("{t}: fully dynamic template is unauditable"));
        }
    }
    for (i, a) in REGISTRY.iter().enumerate() {
        for b in REGISTRY.iter().skip(i + 1) {
            if a.family == b.family && a.template == b.template {
                problems.push(format!("{}: duplicate template", a.template));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        let problems = validate();
        assert!(problems.is_empty(), "registry problems: {problems:?}");
    }

    #[test]
    fn literal_names_match_exactly() {
        assert!(is_registered(Family::Counter, "nlp_calls"));
        assert!(is_registered(Family::Gauge, "nlp_cache/size"));
        assert!(is_registered(Family::Histogram, "obs/train/step_us"));
        assert!(is_registered(Family::Histogram, "obs/train/predict_us"));
        assert!(is_registered(Family::Counter, "obs/train/rows"));
        assert!(is_registered(Family::Counter, "obs/train/posterior_rows"));
        assert!(is_registered(Family::Gauge, "obs/train/threads"));
        assert!(is_registered(Family::Span, "lf_exec/sharded"));
        assert!(is_registered(Family::JournalKind, "shadow"));
        assert!(is_registered(Family::JournalKind, "run_header"));
        assert!(is_registered(Family::JournalKind, "lf_report"));
        assert!(is_registered(Family::JournalKind, "trace_summary"));
        assert!(is_registered(Family::Counter, "trace/spans"));
        assert!(is_registered(Family::Counter, "stream/counter_resets"));
        assert!(is_registered(Family::Counter, "live/requests"));
        assert!(is_registered(Family::Gauge, "slo/fast/p99_us"));
        assert!(is_registered(Family::Gauge, "slo/slow/error_burn_ppm"));
        assert!(!is_registered(Family::Gauge, "slo/fast/p99"));
        assert!(is_registered(Family::JournalKind, "slo_breach"));
        assert!(is_registered(Family::JournalKind, "flight_dump"));
        assert!(is_registered(Family::Gauge, "obs/selftime/run"));
        assert!(is_registered(Family::Gauge, "obs/selftime/job_map"));
        assert!(!is_registered(Family::Gauge, "obs/selftime/job/map"));
        assert!(is_registered(Family::Gauge, "lf/kw_gossip/coverage_ppm"));
        assert!(is_registered(Family::Gauge, "lf/{}/learned_accuracy_ppm"));
        assert!(!is_registered(Family::Gauge, "lf/kw_gossip/coverage"));
        assert!(!is_registered(Family::Counter, "nlp_call"));
        assert!(!is_registered(Family::Gauge, "cache_size"));
        assert!(!is_registered(Family::JournalKind, "probe"));
    }

    #[test]
    fn placeholders_match_dynamic_segments() {
        assert!(is_registered(Family::Counter, "votes/has_person"));
        // A format! literal's `{}` placeholder also matches.
        assert!(is_registered(Family::Counter, "votes/{}"));
        assert!(is_registered(Family::Histogram, "obs/lf/{}/eval_us"));
        assert!(is_registered(
            Family::Histogram,
            "obs/lf/nlp_person/eval_us"
        ));
        // Segment counts must line up.
        assert!(!is_registered(Family::Counter, "votes/a/b"));
        assert!(!is_registered(Family::Counter, "votes"));
        assert!(!is_registered(Family::Histogram, "obs/lf/eval_us"));
    }

    #[test]
    fn families_are_distinct_namespaces() {
        // nlp_cache/hits is both a job counter and an export gauge, but
        // not a histogram.
        assert!(is_registered(Family::Counter, "nlp_cache/hits"));
        assert!(is_registered(Family::Gauge, "nlp_cache/hits"));
        assert!(!is_registered(Family::Histogram, "nlp_cache/hits"));
        assert!(!is_registered(Family::Span, "nlp_calls"));
    }

    #[test]
    fn fully_dynamic_templates_are_detected() {
        assert!(is_fully_dynamic("{}/{}"));
        assert!(is_fully_dynamic("{parent}/{child}"));
        assert!(!is_fully_dynamic("votes/{lf}"));
    }

    #[test]
    fn lookup_surfaces_docs_and_templates() {
        let spec = lookup(Family::Histogram, "obs/nlp/annotate_us").unwrap();
        assert!(spec.doc.contains("annotate"));
        let spans: Vec<_> = templates(Family::Span).collect();
        assert!(spans.contains(&"job/map"));
        assert!(spans.len() >= 8);
    }
}
