//! A minimal JSON value: enough to write journal lines and `--json`
//! reports, and to parse them back in tests — without pulling a
//! serialization framework into every crate that emits telemetry.
//!
//! Integers and floats are kept distinct so counter values survive a
//! round trip exactly; object keys keep insertion order so rendered
//! reports are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits in `i64` (covers every counter we emit).
    Int(i64),
    /// Any other finite number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer value (floats do not convert).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render as a compact single line (journal format).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation (report format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format_f64(*v));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    // drybell-lint: allow(no-panic-index) — write_seq only passes i in 0..items.len()
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    // drybell-lint: allow(no-panic-index) — write_seq only passes i in 0..fields.len()
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    // drybell-lint: allow(no-panic-index) — write_seq only passes i in 0..fields.len()
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

/// Shortest representation that round-trips; always keeps a decimal point
/// or exponent so the value parses back as a float.
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Num(v as f64)
        }
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Error from [`parse`]: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; the journal
                            // never emits them, so map to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Only ASCII digits/sign/exponent bytes were consumed, so the
        // slice is valid UTF-8; lossy conversion avoids the panic path.
        let text = String::from_utf8_lossy(self.bytes.get(start..self.pos).unwrap_or(&[]));
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_stable() {
        let v = Json::obj(vec![
            ("kind", Json::from("phase")),
            ("seconds", Json::from(0.25)),
            ("records", Json::from(1234u64)),
            ("note", Json::from("a\"b\\c\nd")),
        ]);
        assert_eq!(
            v.to_line(),
            r#"{"kind":"phase","seconds":0.25,"records":1234,"note":"a\"b\\c\nd"}"#
        );
    }

    #[test]
    fn parses_what_it_renders() {
        let v = Json::obj(vec![
            (
                "a",
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Null]),
            ),
            ("b", Json::Bool(true)),
            ("s", Json::from("héllo\tworld")),
            ("neg", Json::Int(-42)),
        ]);
        assert_eq!(parse(&v.to_line()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let big = i64::MAX - 7;
        let line = Json::Int(big).to_line();
        assert_eq!(parse(&line).unwrap().as_i64(), Some(big));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let v = parse(r#"{"xs":[{"n":3}],"ok":true}"#).unwrap();
        assert_eq!(
            v.get("xs")
                .and_then(|a| a.at(0))
                .and_then(|o| o.get("n"))
                .and_then(Json::as_i64),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }
}
