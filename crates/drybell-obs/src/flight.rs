//! The flight recorder: a fixed-capacity ring of recent journal events
//! and span samples, dumped to disk when something goes wrong.
//!
//! The append-only journal records everything, but a post-mortem wants
//! the *last* N events before a fault — which a multi-gigabyte journal
//! buries. A [`FlightRecorder`] keeps that context resident: every
//! journal event emitted through a [`Telemetry`] bundle with a recorder
//! attached (and every closed span, as a `span_sample` line) is mirrored
//! into a bounded ring, and a trigger — a `DRIFT` window verdict, an SLO
//! breach, a dataflow fault-budget exhaustion — calls [`dump`] to write
//! the ring to `flight-<ts>.jsonl` in the recorder's directory.
//!
//! Recording takes one short mutex over a `VecDeque` push; triggers are
//! rare (journal events fire at phase/window boundaries, spans close at
//! computation boundaries — never per row), so the ring never sits on a
//! scoring path. When no recorder is attached, the cost is an `Option`
//! check. Dumping drains the ring, so consecutive dumps partition the
//! event history instead of repeating it.
//!
//! [`Telemetry`]: crate::Telemetry
//! [`dump`]: FlightRecorder::dump

use crate::json::Json;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// Default ring capacity: enough for the last few windows of events.
pub const DEFAULT_CAPACITY: usize = 256;

struct RingState {
    entries: VecDeque<Json>,
    dropped: u64,
    dumps: u64,
}

struct FlightInner {
    dir: PathBuf,
    capacity: usize,
    ring: Mutex<RingState>,
}

/// A shared, clonable flight-recorder handle.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("dir", &self.inner.dir)
            .field("capacity", &self.inner.capacity)
            .field("entries", &self.len())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder dumping into `dir` with the default ring capacity.
    pub fn new(dir: impl Into<PathBuf>) -> FlightRecorder {
        FlightRecorder::with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// A recorder with an explicit ring capacity (clamped to ≥ 1).
    pub fn with_capacity(dir: impl Into<PathBuf>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                dir: dir.into(),
                capacity: capacity.max(1),
                ring: Mutex::new(RingState {
                    entries: VecDeque::new(),
                    dropped: 0,
                    dumps: 0,
                }),
            }),
        }
    }

    /// Whether the recorder is live. A plain field read — the check a
    /// hot path makes before handing an event to [`record`] costs
    /// nothing.
    ///
    /// [`record`]: FlightRecorder::record
    pub fn armed(&self) -> bool {
        self.inner.capacity > 0
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, RingState> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirror one line into the ring, evicting the oldest when full.
    pub fn record(&self, line: Json) {
        let mut ring = self.locked();
        if ring.entries.len() >= self.inner.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(line);
    }

    /// Mirror a closed span as a `span_sample` line.
    pub fn span_sample(&self, path: &str, dur_us: u64) {
        self.record(Json::obj(vec![
            ("kind", Json::from("span_sample")),
            ("path", Json::from(path)),
            ("dur_us", Json::from(dur_us)),
        ]));
    }

    /// Lines currently resident in the ring.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted since the last dump (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.locked().dropped
    }

    /// Drain the ring to `flight-<ts>.jsonl` in the recorder's
    /// directory and return the path. The trigger's own event should be
    /// recorded *before* dumping so it lands as the file's last line.
    /// The dump ordinal is appended to the timestamp so rapid
    /// consecutive triggers never collide.
    pub fn dump(&self, reason: &str) -> io::Result<PathBuf> {
        let (lines, dropped, seq) = {
            let mut ring = self.locked();
            let lines: Vec<Json> = ring.entries.drain(..).collect();
            let dropped = std::mem::take(&mut ring.dropped);
            ring.dumps += 1;
            (lines, dropped, ring.dumps)
        };
        // drybell-lint: allow(determinism) — flight dumps are post-mortem artifacts named by wall-clock time, never replayed
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        std::fs::create_dir_all(&self.inner.dir)?;
        let path = self.inner.dir.join(format!("flight-{ts}-{seq}.jsonl"));
        let mut file = io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(
            file,
            "{}",
            Json::obj(vec![
                ("kind", Json::from("flight_header")),
                ("reason", Json::from(reason)),
                ("events", Json::from(lines.len())),
                ("dropped", Json::from(dropped)),
            ])
            .to_line()
        )?;
        for line in &lines {
            writeln!(file, "{}", line.to_line())?;
        }
        file.flush()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(temp_dir("evict"), 3);
        assert!(rec.armed());
        for i in 0..5u64 {
            rec.record(Json::obj(vec![("i", Json::from(i))]));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn dump_writes_ring_in_order_with_trigger_last() {
        let dir = temp_dir("dump");
        let rec = FlightRecorder::with_capacity(&dir, 8);
        rec.span_sample("run/fit", 42);
        rec.record(Json::obj(vec![("kind", Json::from("phase"))]));
        rec.record(Json::obj(vec![("kind", Json::from("slo_breach"))]));
        let path = rec.dump("slo_breach").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0].get("kind").unwrap().as_str(),
            Some("flight_header")
        );
        assert_eq!(lines[0].get("reason").unwrap().as_str(), Some("slo_breach"));
        assert_eq!(lines[0].get("events").unwrap().as_i64(), Some(3));
        assert_eq!(lines[1].get("kind").unwrap().as_str(), Some("span_sample"));
        assert_eq!(lines[1].get("path").unwrap().as_str(), Some("run/fit"));
        assert_eq!(lines[1].get("dur_us").unwrap().as_i64(), Some(42));
        // The trigger's event is the last line of the dump.
        assert_eq!(
            lines.last().unwrap().get("kind").unwrap().as_str(),
            Some("slo_breach")
        );
        // Dumping drained the ring.
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consecutive_dumps_get_distinct_paths() {
        let dir = temp_dir("seq");
        let rec = FlightRecorder::with_capacity(&dir, 4);
        rec.record(Json::obj(vec![("kind", Json::from("phase"))]));
        let a = rec.dump("first").unwrap();
        rec.record(Json::obj(vec![("kind", Json::from("phase"))]));
        let b = rec.dump("second").unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
