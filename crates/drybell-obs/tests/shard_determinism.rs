//! Property: the sharded telemetry path reproduces the sequential one
//! byte-for-byte.
//!
//! Random op sequences are applied two ways: once through a single
//! [`LocalShard`] in order (the sequential reference), and once
//! chunked contiguously across N shards that real threads fill and
//! commit to a [`ShardGroup`] in whatever order the scheduler
//! produces. After the ordinal-ordered fold, the metrics report must
//! be byte-identical and the journal line-identical (modulo the wall
//! clock `t` field) — the determinism contract the bench binaries'
//! instrumentation relies on at any `--workers` count.

use drybell_obs::{
    CounterSlot, Event, GaugeSlot, HistogramSlot, JournalBuffer, Json, LocalShard, RunJournal,
    ShardGroup, ShardLayout, Telemetry,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One buffered telemetry action.
#[derive(Debug, Clone)]
enum Op {
    /// Add to one of two counters.
    Tally(usize, u64),
    /// Set the gauge.
    Level(i64),
    /// Record a histogram sample.
    Observe(u64),
    /// Aggregate a span sample.
    SpanSample(u64),
    /// Buffer a journal event.
    PushEvent(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // (variant selector, payload) — the vendored proptest has no
    // `prop_oneof`, so dispatch in a map.
    (0..5usize, 0..10_000u64).prop_map(|(kind, v)| match kind {
        0 => Op::Tally(v as usize % 2, v % 99 + 1),
        1 => Op::Level((v % 100) as i64 - 50),
        2 => Op::Observe(v),
        3 => Op::SpanSample(v % 5_000 + 1),
        _ => Op::PushEvent(v % 1_000),
    })
}

/// A telemetry bundle with an in-memory journal and a shard layout
/// over two counters, a gauge, and a histogram (registered names, so
/// the fixture mirrors production call sites).
struct Rig {
    telemetry: Telemetry,
    buffer: JournalBuffer,
    layout: Arc<ShardLayout>,
    counters: [CounterSlot; 2],
    gauge: GaugeSlot,
    hist: HistogramSlot,
}

fn rig() -> Rig {
    let (journal, buffer) = RunJournal::in_memory();
    let telemetry = Telemetry::with_journal(journal);
    let mut layout = ShardLayout::new();
    let c0 = layout.slot_counter(telemetry.metrics().counter("nlp_calls"));
    let c1 = layout.slot_counter(telemetry.metrics().counter("trace/spans"));
    let gauge = layout.slot_gauge(telemetry.metrics().gauge("nlp_cache/size"));
    let hist = layout.slot_histogram(telemetry.metrics().histogram("obs/nlp/annotate_us"));
    Rig {
        telemetry,
        buffer,
        layout: Arc::new(layout),
        counters: [c0, c1],
        gauge,
        hist,
    }
}

fn apply(shard: &mut LocalShard, rig: &Rig, op: &Op) {
    match *op {
        Op::Tally(i, n) => shard.tally(rig.counters[i], n),
        Op::Level(v) => shard.level(rig.gauge, v),
        Op::Observe(v) => shard.observe(rig.hist, v),
        Op::SpanSample(us) => shard.span_sample("lf_exec/in_memory", us),
        Op::PushEvent(v) => shard.push_event(Event::new("lf_execution").field("op", v)),
    }
}

/// A journal line with its wall-clock field removed — the only part
/// of a line that may differ between the two executions.
fn scrub(line: &Json) -> Json {
    match line {
        Json::Obj(pairs) => Json::Obj(pairs.iter().filter(|(k, _)| k != "t").cloned().collect()),
        other => other.clone(),
    }
}

fn journal_lines(rig: &Rig) -> Vec<Json> {
    rig.telemetry
        .journal()
        .expect("rig has a journal")
        .flush()
        .expect("in-memory flush");
    rig.buffer
        .parsed_lines()
        .expect("journal lines parse")
        .iter()
        .map(scrub)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_flushes_match_sequential(
        ops in proptest::collection::vec(op_strategy(), 0..60),
        shards in 1..5usize,
    ) {
        // Sequential reference: one shard, ops in order.
        let seq = rig();
        let mut shard = seq.layout.shard();
        for op in &ops {
            apply(&mut shard, &seq, op);
        }
        shard.flush_into(&seq.telemetry);
        let want_report = seq.telemetry.report_json().to_pretty();
        let want_journal = journal_lines(&seq);

        // Sharded: contiguous chunks, filled and committed from real
        // threads in scheduler order, folded by ordinal.
        let par = rig();
        let group = ShardGroup::new(par.layout.clone());
        let per = ops.len().div_ceil(shards).max(1);
        std::thread::scope(|scope| {
            for (ordinal, chunk) in ops.chunks(per).enumerate() {
                let group = &group;
                let par = &par;
                scope.spawn(move || {
                    let mut s = group.shard();
                    for op in chunk {
                        apply(&mut s, par, op);
                    }
                    group.commit(ordinal, s);
                });
            }
        });
        group.fold_into(&par.telemetry);

        prop_assert_eq!(par.telemetry.report_json().to_pretty(), want_report);
        prop_assert_eq!(journal_lines(&par), want_journal);
    }
}
