//! Chaos suite: seeded, deterministic fault injection against the
//! dataflow engine.
//!
//! Every test here drives `par_map_shards` / `map_reduce` through a
//! [`FaultPlan`] that injects worker panics, shard errors, and record
//! errors, and asserts the engine's two fault-tolerance invariants:
//!
//! 1. a job that completes produces output *byte-identical* to a
//!    fault-free run (atomic shard commits + idempotent retries), and
//! 2. a job that dies never exposes a partial shard at its final path.
//!
//! All plans are seeded, so failures reproduce exactly; nothing in this
//! file is timing-dependent.

use drybell_dataflow::{
    map_reduce, par_map_shards, read_all, reference_map_reduce, write_all, CounterHandle,
    DataflowError, FaultPlan, FaultSite, JobConfig, ShardReader, ShardSpec,
};

type Rec = (u64, String);
type CountSink<'a> = &'a mut dyn FnMut(&(String, i64)) -> Result<(), DataflowError>;

fn write_input(dir: &std::path::Path, shards: usize, records: &[Rec]) -> ShardSpec {
    let spec = ShardSpec::new(dir, "input", shards);
    write_all(&spec, records).unwrap();
    spec
}

fn docs(n: u64) -> Vec<Rec> {
    (0..n)
        .map(|i| (i, format!("w{} w{} doc", i % 7, i % 3)))
        .collect()
}

/// Byte-level contents of every shard file in a spec, in shard order.
fn shard_bytes(spec: &ShardSpec) -> Vec<Vec<u8>> {
    (0..spec.num_shards())
        .map(|s| std::fs::read(spec.shard_path(s)).unwrap())
        .collect()
}

fn identity_map(
    _s: &mut (),
    rec: Rec,
    emit: &mut drybell_dataflow::Emit<'_, Rec>,
    _c: &mut CounterHandle,
) -> Result<(), DataflowError> {
    emit.emit(&rec)
}

/// ≥10% injected error + panic rates across 12 shards: the job must
/// still complete, with output byte-identical to a fault-free run.
#[test]
fn par_map_survives_chaos_with_byte_identical_output() {
    let records = docs(600);

    let clean_dir = tempfile::tempdir().unwrap();
    let clean_in = write_input(clean_dir.path(), 12, &records);
    let clean_out = clean_in.derive("out");
    par_map_shards(
        &clean_in,
        &clean_out,
        &JobConfig::new("clean").with_workers(4),
        |_ctx| Ok(()),
        identity_map,
    )
    .unwrap();

    let chaos_dir = tempfile::tempdir().unwrap();
    let chaos_in = write_input(chaos_dir.path(), 12, &records);
    let chaos_out = chaos_in.derive("out");
    let plan = FaultPlan::seeded(0xC0FFEE)
        .with_map_error_rate(0.15)
        .with_map_panic_rate(0.10)
        .fail_task(FaultSite::Map, 3, 0)
        .panic_task(FaultSite::Map, 8, 0);
    let cfg = JobConfig::new("chaos")
        .with_workers(4)
        .with_max_attempts(4)
        .with_retry_backoff_ms(0)
        .with_fault_plan(plan);
    let stats = par_map_shards(&chaos_in, &chaos_out, &cfg, |_ctx| Ok(()), identity_map).unwrap();

    assert!(
        stats.counters.get("dataflow/retries") >= 2,
        "chaos run must actually have retried: {:?}",
        stats.counters
    );
    assert_eq!(
        stats.records_in, 600,
        "retries must not double-count records"
    );
    assert_eq!(stats.records_out, 600);
    assert_eq!(
        shard_bytes(&clean_out),
        shard_bytes(&chaos_out),
        "chaos output must be byte-identical to the fault-free run"
    );
}

/// Full shuffle under chaos in both phases: results must match both the
/// in-memory reference fold and a fault-free distributed run, byte for
/// byte.
#[test]
fn map_reduce_survives_chaos_in_both_phases() {
    let records = docs(400);
    let map = |(_, text): Rec, emit: &mut dyn FnMut(String, i64)| {
        for w in text.split_whitespace() {
            emit(w.to_owned(), 1);
        }
        Ok(())
    };
    let reduce =
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.into_iter().sum()));

    let mut want: Vec<(String, i64)> = reference_map_reduce(&records, map, reduce).unwrap();
    want.sort();

    let clean_dir = tempfile::tempdir().unwrap();
    let clean_in = write_input(clean_dir.path(), 8, &records);
    let clean_out = ShardSpec::new(clean_dir.path(), "counts", 3);
    map_reduce(
        &clean_in,
        &clean_out,
        clean_dir.path(),
        &JobConfig::new("clean").with_workers(3),
        map,
        None::<fn(&String, Vec<i64>) -> i64>,
        reduce,
    )
    .unwrap();

    let chaos_dir = tempfile::tempdir().unwrap();
    let chaos_in = write_input(chaos_dir.path(), 8, &records);
    let chaos_out = ShardSpec::new(chaos_dir.path(), "counts", 3);
    let plan = FaultPlan::seeded(42)
        .with_map_error_rate(0.20)
        .with_map_panic_rate(0.10)
        .with_reduce_error_rate(0.25)
        .with_reduce_panic_rate(0.10)
        .fail_task(FaultSite::Reduce, 1, 0);
    let cfg = JobConfig::new("chaos")
        .with_workers(3)
        .with_max_attempts(5)
        .with_retry_backoff_ms(0)
        .with_fault_plan(plan);
    let stats = map_reduce(
        &chaos_in,
        &chaos_out,
        chaos_dir.path(),
        &cfg,
        map,
        None::<fn(&String, Vec<i64>) -> i64>,
        reduce,
    )
    .unwrap();

    assert!(stats.counters.get("dataflow/retries") >= 1);
    let mut got: Vec<(String, i64)> = read_all(&chaos_out).unwrap();
    got.sort();
    assert_eq!(got, want, "chaos shuffle must match the reference fold");
    assert_eq!(
        shard_bytes(&clean_out),
        shard_bytes(&chaos_out),
        "chaos shuffle output must be byte-identical to the fault-free run"
    );
    // Chaos or not, no spill files may survive the job.
    let leftover = std::fs::read_dir(chaos_dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("spill-"))
        .count();
    assert_eq!(leftover, 0, "chaos run leaked spill files");
}

/// Kill-mid-job: a fail-stop job that dies partway through must never
/// expose a torn shard at its final path — every output shard either
/// does not exist or is fully committed and readable.
#[test]
fn killed_job_never_exposes_partial_shards() {
    let records = docs(500);
    let dir = tempfile::tempdir().unwrap();
    let input = write_input(dir.path(), 10, &records);
    let output = input.derive("out");
    // Panic one mid-pack shard with no retries: some shards commit,
    // some never run, shard 5's attempt dies mid-write.
    let plan = FaultPlan::seeded(9).panic_task(FaultSite::Map, 5, 0);
    let cfg = JobConfig::new("killed")
        .with_workers(3)
        .with_fault_plan(plan);
    let result = par_map_shards(&input, &output, &cfg, |_ctx| Ok(()), identity_map);
    assert!(
        matches!(result, Err(DataflowError::WorkerPanicked { .. })),
        "got {result:?}"
    );

    assert!(
        !output.is_complete(),
        "a killed job must not look committed"
    );
    for s in 0..output.num_shards() {
        let path = output.shard_path(s);
        if !path.exists() {
            continue;
        }
        // Anything at the final path must be a complete, committed shard.
        let reader = ShardReader::<Rec>::open(&path)
            .unwrap_or_else(|e| panic!("shard {s} present but torn: {e}"));
        for rec in reader {
            rec.unwrap_or_else(|e| panic!("shard {s} present but unreadable: {e}"));
        }
    }
    // No stage files may linger at tmp siblings either once the spec is
    // removed (the cleanup path used by retries and re-runs).
    output.remove().unwrap();
    let stray = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .count();
    assert_eq!(stray, 0, "remove() must clear .tmp stage files");
}

/// The retry budget is exact: a task that fails its first three attempts
/// fails a `max_attempts = 3` job and completes a `max_attempts = 4` one.
#[test]
fn retry_budget_boundary_is_exact() {
    let records = docs(60);
    let plan = FaultPlan::seeded(3)
        .fail_task(FaultSite::Map, 2, 0)
        .panic_task(FaultSite::Map, 2, 1)
        .fail_task(FaultSite::Map, 2, 2);
    let run = |attempts: u32| {
        let dir = tempfile::tempdir().unwrap();
        let input = write_input(dir.path(), 6, &records);
        let output = input.derive("out");
        let cfg = JobConfig::new("boundary")
            .with_workers(2)
            .with_max_attempts(attempts)
            .with_retry_backoff_ms(0)
            .with_fault_plan(plan.clone());
        par_map_shards(&input, &output, &cfg, |_ctx| Ok(()), identity_map)
            .map(|stats| stats.counters.get("dataflow/retries"))
    };
    assert!(run(3).is_err(), "three faults must exhaust three attempts");
    assert_eq!(
        run(4).unwrap(),
        3,
        "fourth attempt must succeed after 3 retries"
    );
}

/// Record-level faults consume exactly the skip budget the plan implies,
/// and the surviving records are exactly the non-faulted ones.
#[test]
fn skip_budget_counts_are_exact() {
    let records = docs(300);
    let dir = tempfile::tempdir().unwrap();
    let shards = 5;
    let input = write_input(dir.path(), shards, &records);
    let output = input.derive("out");
    let plan = FaultPlan::seeded(11).with_record_error_rate(0.10);

    // The plan is pure: compute the expected skip count from the input
    // layout itself.
    let mut expected_skips = 0u64;
    for s in 0..shards {
        let in_shard = ShardReader::<Rec>::open(&input.shard_path(s))
            .unwrap()
            .count() as u64;
        for idx in 0..in_shard {
            if plan.record_fault(s, idx) {
                expected_skips += 1;
            }
        }
    }
    assert!(
        expected_skips > 0,
        "seed must inject at least one record fault"
    );

    let cfg = JobConfig::new("skips")
        .with_workers(3)
        .with_skip_bad_record_budget(expected_skips)
        .with_fault_plan(plan);
    let stats = par_map_shards(&input, &output, &cfg, |_ctx| Ok(()), identity_map).unwrap();
    assert_eq!(
        stats.counters.get("dataflow/skipped_records"),
        expected_skips
    );
    assert_eq!(stats.records_in, 300);
    assert_eq!(stats.records_out, 300 - expected_skips);

    // One fewer unit of budget and the same plan must fail the job.
    let strict = JobConfig::new("strict")
        .with_workers(3)
        .with_skip_bad_record_budget(expected_skips - 1)
        .with_fault_plan(FaultPlan::seeded(11).with_record_error_rate(0.10));
    let out2 = input.derive("out2");
    assert!(par_map_shards(&input, &out2, &strict, |_ctx| Ok(()), identity_map).is_err());
}

/// Every attempt — success, retry, and terminal failure — lands in the
/// telemetry sink as a `job/shard_attempt` span and a `shard_attempt`
/// journal event.
#[test]
fn shard_attempts_are_journaled() {
    let records = docs(80);
    let dir = tempfile::tempdir().unwrap();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let (journal, buffer) = drybell_obs::RunJournal::in_memory();
    let telemetry = drybell_obs::Telemetry::with_journal(journal);
    let cfg = JobConfig::new("observed")
        .with_workers(2)
        .with_max_attempts(2)
        .with_retry_backoff_ms(0)
        .with_fault_plan(FaultPlan::seeded(5).fail_task(FaultSite::Map, 1, 0))
        .with_telemetry(telemetry.clone());
    par_map_shards(&input, &output, &cfg, |_ctx| Ok(()), identity_map).unwrap();

    // 4 shards + 1 retry = 5 attempts.
    let stat = telemetry
        .spans()
        .snapshot()
        .get("job/shard_attempt")
        .expect("span must be recorded");
    assert_eq!(stat.count, 5);

    let lines = buffer.parsed_lines().unwrap();
    let attempts: Vec<_> = lines
        .iter()
        .filter(|l| l.get("kind").and_then(|k| k.as_str()) == Some("shard_attempt"))
        .collect();
    assert_eq!(attempts.len(), 5);
    let retried: Vec<_> = attempts
        .iter()
        .filter(|l| l.get("outcome").and_then(|o| o.as_str()) == Some("retry"))
        .collect();
    assert_eq!(retried.len(), 1);
    let retry = retried[0];
    assert_eq!(retry.get("phase").and_then(|p| p.as_str()), Some("map"));
    assert_eq!(retry.get("task").and_then(|t| t.as_i64()), Some(1));
    assert_eq!(retry.get("attempt").and_then(|a| a.as_i64()), Some(0));
    assert!(retry
        .get("error")
        .and_then(|e| e.as_str())
        .unwrap()
        .contains("injected fault"));
    assert_eq!(
        attempts
            .iter()
            .filter(|l| l.get("outcome").and_then(|o| o.as_str()) == Some("ok"))
            .count(),
        4
    );
}
