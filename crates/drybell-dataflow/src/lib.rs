//! # drybell-dataflow
//!
//! The distributed-execution substrate for the Snorkel DryBell
//! reproduction: a local, multi-threaded stand-in for Google's MapReduce
//! framework and distributed filesystem (§5.1, §5.4 of the paper).
//!
//! Components:
//!
//! * [`codec`] — checksummed binary record framing (varints, CRC-32,
//!   field helpers) and the [`Record`] trait.
//! * [`shard`] — sharded record files (`name-00007-of-00032.rec`), the
//!   interchange format between pipeline stages, mirroring how the paper's
//!   labeling-function binaries "use a distributed filesystem to share
//!   data".
//! * [`mapreduce`] — the job engine: shard-parallel maps with per-worker
//!   state (the hook DryBell uses to launch an NLP model server per
//!   compute node), a full map-shuffle-reduce with optional combining,
//!   job counters, and per-shard retry with atomic shard commits.
//! * [`counters`] — named job counters in the MapReduce tradition.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) used by the
//!   chaos test suite to exercise the retry and skip paths.
//! * [`stream`] — streaming ingestion: a [`stream::StreamIngestor`] that
//!   watches a spool directory for atomically-committed shards and
//!   delivers each exactly once, in a deterministic order (the paper's
//!   *real-time events* workload).
//!
//! The engine is deliberately synchronous and thread-based: the paper's
//! scalability claims are about *architecture* (decoupled LF execution,
//! shard-at-a-time streaming, per-node services), all of which are
//! exercised identically by threads over local files.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod counters;
pub mod error;
pub mod fault;
pub mod mapreduce;
pub mod pipeline;
pub mod shard;
pub mod stream;

#[cfg(test)]
mod tests_mapreduce;

pub use codec::{CodecError, Record};
pub use counters::{CounterHandle, CounterSnapshot, Counters};
pub use error::DataflowError;
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use mapreduce::{
    map_reduce, par_map_shards, par_map_vec, reference_map_reduce, Emit, JobConfig, JobStats,
    PhaseStats, Service, WorkerContext,
};
pub use pipeline::{Pipeline, PipelineRun};
pub use shard::{read_all, write_all, ShardReader, ShardSpec, ShardWriter, ShardWriterSet};
pub use stream::{ArrivedShard, StreamIngestor};
