//! The MapReduce-style execution engine.
//!
//! Snorkel DryBell executes every labeling function as a MapReduce pipeline
//! over Google's distributed compute environment (§5.1). This module is the
//! local substitute: a thread-per-worker engine over [`crate::shard`]
//! datasets that preserves the architectural properties the paper relies
//! on —
//!
//! * workers process whole shards and may hold per-worker state (the hook
//!   used to "launch a model server on each compute node"),
//! * jobs expose named counters and wall-clock stats,
//! * a full shuffle ([`map_reduce`]) with optional map-side combining is
//!   available for aggregation pipelines,
//! * failures are handled the way production MapReduce handles them
//!   (§5.4's pipelines assume workers die routinely): a failed or
//!   panicked shard attempt is retried on whichever worker is free, up
//!   to [`JobConfig::max_attempts`], with shard outputs committed
//!   atomically so retries are idempotent; only exhausted retries (or
//!   unrecoverable configuration errors) abort the job and surface as
//!   [`DataflowError`]s rather than hanging.

use crate::counters::{CounterHandle, CounterSnapshot, Counters};
use crate::error::DataflowError;
use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::shard::{ShardReader, ShardSpec, ShardWriter};
use crate::Record;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration shared by all job types.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name used in stats and error messages.
    pub name: String,
    /// Number of worker threads (both map and reduce phases).
    pub workers: usize,
    /// Map-side buffer size (in key-value pairs) before a spill flush;
    /// only used by [`map_reduce`].
    pub spill_buffer: usize,
    /// Maximum executions of any one shard/partition task before the job
    /// fails. `1` (the default) is fail-stop: the first failed attempt
    /// aborts the job. Higher values requeue a failed task for another
    /// worker, with [`JobConfig::retry_backoff_ms`] between attempts.
    pub max_attempts: u32,
    /// Job-wide budget of input records whose map-function errors are
    /// *skipped* (dropped, with the `dataflow/skipped_records` counter
    /// bumped) instead of failing the shard. `0` (the default) disables
    /// skipping entirely. The budget is best-effort across retries: a
    /// shard attempt that skips records and later fails anyway does not
    /// refund them.
    pub skip_bad_record_budget: u64,
    /// Base backoff between attempts of one task, in milliseconds; the
    /// k-th retry becomes eligible `k * retry_backoff_ms` after the
    /// failure. The delay is carried on the requeued task as a
    /// not-before timestamp — the failing worker never sleeps it off,
    /// so a single flaky shard cannot serialize the rest of the queue
    /// behind its backoff. A worker that pops a not-yet-due task
    /// requeues it (counted by `dataflow/backoff_deferrals`) and naps
    /// only a short slice before looking for ready work.
    pub retry_backoff_ms: u64,
    /// Deterministic fault-injection schedule (chaos tests). `None` in
    /// production.
    pub fault_plan: Option<FaultPlan>,
    /// Optional telemetry sink: one `job/shard_attempt` span sample and
    /// one `shard_attempt` journal event per task attempt.
    pub telemetry: Option<drybell_obs::Telemetry>,
}

impl JobConfig {
    /// A job named `name` using all available parallelism.
    pub fn new(name: impl Into<String>) -> JobConfig {
        JobConfig {
            name: name.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            spill_buffer: 64 * 1024,
            max_attempts: 1,
            skip_bad_record_budget: 0,
            retry_backoff_ms: 1,
            fault_plan: None,
            telemetry: None,
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> JobConfig {
        self.workers = workers.max(1);
        self
    }

    /// Allow up to `attempts` executions per shard/partition task.
    pub fn with_max_attempts(mut self, attempts: u32) -> JobConfig {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Allow up to `budget` bad records to be skipped job-wide.
    pub fn with_skip_bad_record_budget(mut self, budget: u64) -> JobConfig {
        self.skip_bad_record_budget = budget;
        self
    }

    /// Override the base retry backoff in milliseconds.
    pub fn with_retry_backoff_ms(mut self, ms: u64) -> JobConfig {
        self.retry_backoff_ms = ms;
        self
    }

    /// Attach a deterministic fault-injection plan (chaos tests).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> JobConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Attach a telemetry sink for per-attempt spans/journal events.
    pub fn with_telemetry(mut self, telemetry: drybell_obs::Telemetry) -> JobConfig {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Wall-clock accounting for one phase of a job (`map`, `reduce`).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// Wall-clock seconds spent in this phase.
    pub seconds: f64,
    /// Records entering the phase.
    pub records_in: u64,
    /// Records leaving the phase (spilled pairs for a map phase feeding
    /// a shuffle, final records for a reduce phase).
    pub records_out: u64,
}

/// Wall-clock and throughput accounting for a finished job.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Records read from the input dataset.
    pub records_in: u64,
    /// Records written to the output dataset.
    pub records_out: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Per-phase wall-clock breakdown, in execution order. Phase times
    /// sum to (slightly less than) `seconds`; the gap is setup/cleanup.
    pub phases: Vec<PhaseStats>,
    /// Seconds each worker spent executing tasks (indexed by worker id,
    /// summed across phases). Time blocked on the work queue and worker
    /// startup are *not* charged, so a worker that received no shards
    /// reads exactly zero. Uneven values reveal stragglers.
    pub worker_busy: Vec<f64>,
    /// Bytes spilled to intermediate shuffle files (zero for pure maps).
    pub spill_bytes: u64,
}

impl JobStats {
    /// Input records per second.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.seconds.max(1e-12)
    }

    /// Slowest worker's busy time over the mean busy time — 1.0 means a
    /// perfectly balanced job, 2.0 means one worker carried twice the
    /// average load.
    pub fn straggler_ratio(&self) -> f64 {
        if self.worker_busy.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.worker_busy.iter().sum();
        let mean = sum / self.worker_busy.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.worker_busy.iter().cloned().fold(0.0, f64::max);
        max / mean
    }

    /// Emit this job to a run journal: one `job` event carrying the
    /// totals, preceded by one `phase` event per phase.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        for phase in &self.phases {
            journal.emit(
                drybell_obs::Event::new("phase")
                    .field("job", self.name.as_str())
                    .field("name", phase.name.as_str())
                    .field("seconds", phase.seconds)
                    .field("records_in", phase.records_in)
                    .field("records_out", phase.records_out),
            );
        }
        let mut event = drybell_obs::Event::new("job")
            .field("name", self.name.as_str())
            .field("records_in", self.records_in)
            .field("records_out", self.records_out)
            .field("seconds", self.seconds)
            .field("workers", self.workers)
            .field("straggler_ratio", self.straggler_ratio())
            .field("spill_bytes", self.spill_bytes)
            .field(
                "worker_busy",
                drybell_obs::Json::Arr(
                    self.worker_busy
                        .iter()
                        .map(|&s| drybell_obs::Json::Num(s))
                        .collect(),
                ),
            );
        for (name, value) in self.counters.entries() {
            event = event.field(&format!("counters/{name}"), *value);
        }
        journal.emit(event);
    }
}

/// Per-worker busy-time accumulator, microseconds.
struct BusyClock {
    micros: Vec<AtomicU64>,
}

impl BusyClock {
    fn new(workers: usize) -> BusyClock {
        BusyClock {
            micros: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn charge(&self, worker_id: usize, since: Instant) {
        let us = since.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if let Some(m) = self.micros.get(worker_id) {
            m.fetch_add(us, Ordering::Relaxed);
        }
    }

    fn seconds(&self) -> Vec<f64> {
        self.micros
            .iter()
            .map(|m| m.load(Ordering::Relaxed) as f64 / 1e6)
            .collect()
    }
}

/// Per-worker context passed to worker-state initializers.
pub struct WorkerContext {
    /// Worker index in `0..workers`.
    pub worker_id: usize,
    /// Batched counter handle for this worker.
    pub counters: CounterHandle,
}

/// Long-lived per-worker helper (e.g. an NLP model server) that jobs can
/// start once per worker and reuse across every record the worker maps —
/// the paper's "launch a model server on each compute node" pattern.
pub trait Service: Send {
    /// Service name for logging and counters.
    fn name(&self) -> &str;
    /// One-time startup (load models, open sockets, ...).
    fn warm_up(&mut self) -> Result<(), DataflowError> {
        Ok(())
    }
}

/// Emits output records from a map function into the worker's output shard.
pub struct Emit<'a, O: Record> {
    writer: &'a mut ShardWriter<O>,
    emitted: u64,
}

impl<'a, O: Record> Emit<'a, O> {
    /// Write one output record.
    pub fn emit(&mut self, record: &O) -> Result<(), DataflowError> {
        self.writer.write(record)?;
        self.emitted += 1;
        Ok(())
    }
}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Shared abort/error state for a running job.
struct JobState {
    failed: AtomicBool,
    first_error: Mutex<Option<DataflowError>>,
    records_in: AtomicU64,
    records_out: AtomicU64,
}

impl JobState {
    fn new() -> JobState {
        JobState {
            failed: AtomicBool::new(false),
            first_error: Mutex::new(None),
            records_in: AtomicU64::new(0),
            records_out: AtomicU64::new(0),
        }
    }

    fn fail(&self, err: DataflowError) {
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::SeqCst);
    }

    fn into_result(self, stats: JobStats) -> Result<JobStats, DataflowError> {
        match self.first_error.into_inner() {
            Some(err) => Err(err),
            None => Ok(stats),
        }
    }
}

// ---------------------------------------------------------------------------
// Retrying task queue
// ---------------------------------------------------------------------------

/// One unit of phase work: a shard (map) or partition (reduce) index,
/// plus which attempt this is.
#[derive(Debug, Clone, Copy)]
struct Task {
    index: usize,
    attempt: u32,
    /// Earliest instant this task may run again (retry backoff). The
    /// timestamp rides the queue instead of the failing worker sleeping
    /// it off, which would stall every task queued behind it.
    not_before: Option<Instant>,
}

/// A work queue that supports requeueing failed tasks.
///
/// The sender half is kept behind a mutex so any worker can (a) requeue
/// a failed task for another attempt and (b) close the queue — either
/// because every task completed or because the job failed — which wakes
/// all workers blocked in `recv`.
struct TaskQueue {
    tx: Mutex<Option<crossbeam::channel::Sender<Task>>>,
    rx: crossbeam::channel::Receiver<Task>,
    pending: AtomicUsize,
}

impl TaskQueue {
    fn new(num_tasks: usize) -> Result<TaskQueue, DataflowError> {
        let (tx, rx) = crossbeam::channel::unbounded::<Task>();
        for index in 0..num_tasks {
            tx.send(Task {
                index,
                attempt: 0,
                not_before: None,
            })
            .map_err(|_| DataflowError::internal("work queue closed before fill"))?;
        }
        let queue = TaskQueue {
            tx: Mutex::new(Some(tx)),
            rx,
            pending: AtomicUsize::new(num_tasks),
        };
        if num_tasks == 0 {
            queue.close();
        }
        Ok(queue)
    }

    /// Drop the sender: wakes every worker blocked in `recv`.
    fn close(&self) {
        *self.tx.lock() = None;
    }

    /// Requeue a failed task for another attempt. Returns `false` when
    /// the queue is already closed (the job failed elsewhere).
    fn requeue(&self, task: Task) -> bool {
        match self.tx.lock().as_ref() {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        }
    }

    /// Mark one task complete, closing the queue when none remain.
    fn task_done(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.close();
        }
    }
}

/// Record one task attempt into the job's telemetry sink, when present.
fn record_attempt(
    cfg: &JobConfig,
    site: FaultSite,
    task: Task,
    started: Instant,
    outcome: &str,
    error: Option<&DataflowError>,
) {
    let Some(t) = &cfg.telemetry else {
        return;
    };
    let us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    t.spans().record("job/shard_attempt", us);
    let mut event = drybell_obs::Event::new("shard_attempt")
        .field("job", cfg.name.as_str())
        .field("phase", site.as_str())
        .field("task", task.index as u64)
        .field("attempt", u64::from(task.attempt))
        .field("outcome", outcome);
    if let Some(e) = error {
        event = event.field("error", e.to_string().as_str());
    }
    t.emit(event);
}

/// Run one phase of a job over a retrying task queue.
///
/// Each of `workers` threads builds per-worker state via `init`, then
/// drains tasks. A failed or panicked attempt (including injected
/// faults from [`JobConfig::fault_plan`]) is requeued for another
/// worker while attempts remain, with linear backoff carried as a
/// not-before timestamp on the requeued task (the failing worker never
/// sleeps, so other tasks keep flowing); exhausted retries fail the job
/// via `state` and close the queue so every worker winds down promptly.
#[allow(clippy::too_many_arguments)]
fn run_phase<W, InitF, RunF>(
    site: FaultSite,
    num_tasks: usize,
    workers: usize,
    cfg: &JobConfig,
    state: &JobState,
    busy: &BusyClock,
    counters: &Counters,
    init: InitF,
    run: RunF,
) -> Result<(), DataflowError>
where
    W: Send,
    InitF: Fn(&mut WorkerContext) -> Result<W, DataflowError> + Sync,
    RunF: Fn(&mut W, usize, u32, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    let queue = TaskQueue::new(num_tasks)?;
    // Phase span, traced when the job's telemetry carries a tracer, so
    // each worker's shard attempts (and their per-LF trace blocks) nest
    // under the phase in the exported trace.
    let phase_span = cfg.telemetry.as_ref().map(|t| match site {
        FaultSite::Map => t.span("job/map"),
        FaultSite::Reduce | FaultSite::Stream => t.span("job/reduce"),
    });
    let phase_parent = phase_span.as_ref().and_then(drybell_obs::Span::trace_id);
    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let queue = &queue;
            let counters = counters.clone();
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                // Backstop for panics in engine code itself (shard I/O,
                // queue handling). User-code panics are caught per
                // attempt below and retried; reaching this catch means
                // an engine bug, which fails the job outright.
                let backstop = catch_unwind(AssertUnwindSafe(|| {
                    phase_worker(
                        site,
                        worker_id,
                        queue,
                        counters,
                        cfg,
                        state,
                        busy,
                        phase_parent,
                        init,
                        run,
                    );
                }));
                if let Err(payload) = backstop {
                    state.fail(DataflowError::WorkerPanicked {
                        worker: worker_id,
                        message: render_panic(payload),
                    });
                    queue.close();
                }
            });
        }
    });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn phase_worker<W, InitF, RunF>(
    site: FaultSite,
    worker_id: usize,
    queue: &TaskQueue,
    counters: Counters,
    cfg: &JobConfig,
    state: &JobState,
    busy: &BusyClock,
    phase_parent: Option<u64>,
    init: &InitF,
    run: &RunF,
) where
    W: Send,
    InitF: Fn(&mut WorkerContext) -> Result<W, DataflowError> + Sync,
    RunF: Fn(&mut W, usize, u32, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    let mut ctx = WorkerContext {
        worker_id,
        counters: CounterHandle::new(counters.clone()),
    };
    let mut wstate = match init(&mut ctx) {
        Ok(s) => s,
        Err(e) => {
            // Worker startup (e.g. a model server that cannot load) is
            // not a per-shard fault; it aborts the job as before.
            state.fail(e);
            queue.close();
            return;
        }
    };
    let mut handle = CounterHandle::new(counters);
    let tracer = cfg
        .telemetry
        .as_ref()
        .and_then(drybell_obs::Telemetry::tracer)
        .cloned();
    // Deferral bookkeeping since the last executed task: the earliest
    // not-before instant seen and how many deferrals in a row. Once the
    // streak covers every pending task, the whole queue is waiting out
    // backoff and this worker parks until the earliest due instant —
    // previously it kept cycling the queue on 1ms naps, which burned a
    // wakeup (and a `dataflow/backoff_deferrals` bump) per millisecond
    // per worker for the entire backoff window.
    let mut earliest_due: Option<Instant> = None;
    let mut deferred_streak = 0usize;
    while let Ok(task) = queue.rx.recv() {
        if state.failed.load(Ordering::SeqCst) {
            return;
        }
        // A retried task carries its backoff as a not-before stamp. If
        // it is not due yet, put it back — this worker stays available
        // for ready tasks instead of serializing the queue behind one
        // flaky shard's backoff.
        if let Some(due) = task.not_before {
            let now = Instant::now();
            if now < due {
                handle.inc("dataflow/backoff_deferrals");
                if !queue.requeue(task) {
                    return;
                }
                earliest_due = Some(earliest_due.map_or(due, |e| e.min(due)));
                deferred_streak += 1;
                if deferred_streak >= queue.pending.load(Ordering::SeqCst) {
                    // Every queued task is deferred: nothing can run
                    // until the earliest stamp passes, so sleep exactly
                    // that long instead of polling. A task finishing on
                    // another worker can only *shrink* the queue, and a
                    // requeued failure is stamped even later, so no
                    // ready work can appear before the wakeup.
                    if let Some(e) = earliest_due.take() {
                        let now = Instant::now();
                        if e > now {
                            std::thread::sleep(e - now);
                        }
                    }
                    deferred_streak = 0;
                }
                continue;
            }
        }
        earliest_due = None;
        deferred_streak = 0;
        let injected = cfg
            .fault_plan
            .as_ref()
            .and_then(|p| p.task_fault(site, task.index, task.attempt));
        let started = Instant::now();
        // Each attempt gets its own trace interval, explicitly parented
        // under the coordinator's phase span. Opening the handle pushes
        // it onto this thread's open-span stack, so user code running
        // inside the attempt (LF evaluation, say) parents under it.
        let attempt_trace = tracer.as_ref().map(|tr| tr.open_child_of(phase_parent));
        // Per-attempt catch: a panicking user function costs one
        // attempt, not the whole job.
        let outcome = catch_unwind(AssertUnwindSafe(|| match injected {
            Some(FaultKind::Error) => Err(DataflowError::user(format!(
                "injected fault: {} task {} attempt {}",
                site.as_str(),
                task.index,
                task.attempt
            ))),
            Some(FaultKind::Panic) => {
                // drybell-lint: allow(no-panic) — deliberate chaos-test injection; caught by the per-attempt catch_unwind directly above
                panic!(
                    "injected panic: {} task {} attempt {}",
                    site.as_str(),
                    task.index,
                    task.attempt
                );
            }
            other => {
                if let Some(FaultKind::Delay(ms)) = other {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                run(&mut wstate, task.index, task.attempt, &mut handle)
            }
        }));
        // Busy time covers task execution only — never queue waits or
        // retry backoff — so an idle worker's clock reads zero.
        busy.charge(worker_id, started);
        if let Some(handle) = attempt_trace {
            handle.close("job/shard_attempt", started);
        }
        let error = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(e)) => Some(e),
            Err(payload) => Some(DataflowError::WorkerPanicked {
                worker: worker_id,
                message: render_panic(payload),
            }),
        };
        match error {
            None => {
                record_attempt(cfg, site, task, started, "ok", None);
                queue.task_done();
            }
            Some(e) => {
                if state.failed.load(Ordering::SeqCst) {
                    // The job already failed elsewhere; this attempt's
                    // error is noise (often "job aborted"), not a retry.
                    return;
                }
                let next = task.attempt + 1;
                if next < cfg.max_attempts {
                    handle.inc("dataflow/retries");
                    record_attempt(cfg, site, task, started, "retry", Some(&e));
                    // Requeue immediately with a not-before stamp; the
                    // deferral check at the top of the loop enforces
                    // the linear backoff without this worker sleeping.
                    let not_before = (cfg.retry_backoff_ms > 0).then(|| {
                        Instant::now()
                            + Duration::from_millis(
                                cfg.retry_backoff_ms.saturating_mul(u64::from(next)),
                            )
                    });
                    if !queue.requeue(Task {
                        index: task.index,
                        attempt: next,
                        not_before,
                    }) {
                        return;
                    }
                } else {
                    record_attempt(cfg, site, task, started, "failed", Some(&e));
                    state.fail(e);
                    queue.close();
                    return;
                }
            }
        }
    }
}

/// Consume one unit of skip budget, if any remains.
fn try_skip_record(skip_budget: &AtomicU64, handle: &mut CounterHandle) -> bool {
    let mut cur = skip_budget.load(Ordering::SeqCst);
    while cur > 0 {
        match skip_budget.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                handle.inc("dataflow/skipped_records");
                return true;
            }
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Run a shard-parallel map: each input shard `i` is transformed into
/// output shard `i` by a user function, with per-worker state created by
/// `init` (the model-server hook).
///
/// Requires `output.num_shards() == input.num_shards()`.
///
/// Fault tolerance: each shard is one retryable task (see
/// [`JobConfig::max_attempts`]); its output shard is committed
/// atomically on success, so a retried shard rewrites its stage file
/// from scratch and the final dataset is identical to a fault-free run.
pub fn par_map_shards<I, O, S, Init, F>(
    input: &ShardSpec,
    output: &ShardSpec,
    cfg: &JobConfig,
    init: Init,
    f: F,
) -> Result<JobStats, DataflowError>
where
    I: Record,
    O: Record,
    S: Send,
    Init: Fn(&mut WorkerContext) -> Result<S, DataflowError> + Sync,
    F: Fn(&mut S, I, &mut Emit<'_, O>, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    if output.num_shards() != input.num_shards() {
        return Err(DataflowError::BadJob(format!(
            "par_map_shards needs matching shard counts: {} in vs {} out",
            input.num_shards(),
            output.num_shards()
        )));
    }
    let counters = Counters::new();
    let state = JobState::new();
    let skip_budget = AtomicU64::new(cfg.skip_bad_record_budget);
    let start = Instant::now();
    let workers = cfg.workers.max(1);
    let busy = BusyClock::new(workers);
    run_phase(
        FaultSite::Map,
        input.num_shards(),
        workers,
        cfg,
        &state,
        &busy,
        &counters,
        init,
        |user_state: &mut S, shard, _attempt, handle| {
            run_one_shard(
                input,
                output,
                shard,
                user_state,
                &f,
                &state,
                handle,
                &skip_budget,
                cfg.fault_plan.as_ref(),
            )
        },
    )?;
    let seconds = start.elapsed().as_secs_f64();
    let records_in = state.records_in.load(Ordering::SeqCst);
    let records_out = state.records_out.load(Ordering::SeqCst);
    let stats = JobStats {
        name: cfg.name.clone(),
        records_in,
        records_out,
        seconds,
        workers,
        counters: counters.snapshot(),
        phases: vec![PhaseStats {
            name: "map".to_string(),
            seconds,
            records_in,
            records_out,
        }],
        worker_busy: busy.seconds(),
        spill_bytes: 0,
    };
    state.into_result(stats)
}

#[allow(clippy::too_many_arguments)]
fn run_one_shard<I, O, S, F>(
    input: &ShardSpec,
    output: &ShardSpec,
    shard: usize,
    user_state: &mut S,
    f: &F,
    state: &JobState,
    handle: &mut CounterHandle,
    skip_budget: &AtomicU64,
    plan: Option<&FaultPlan>,
) -> Result<(), DataflowError>
where
    I: Record,
    O: Record,
    F: Fn(&mut S, I, &mut Emit<'_, O>, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    let reader = ShardReader::<I>::open(&input.shard_path(shard))?;
    let mut writer = ShardWriter::<O>::create(&output.shard_path(shard))?;
    let mut read = 0u64;
    let mut emit = Emit {
        writer: &mut writer,
        emitted: 0,
    };
    for record in reader {
        if state.failed.load(Ordering::SeqCst) {
            // Doomed job: bail before doing (and committing) more work.
            return Err(DataflowError::internal("job aborted during shard map"));
        }
        let record = record?;
        let record_error = if plan.is_some_and(|p| p.record_fault(shard, read)) {
            Some(DataflowError::user(format!(
                "injected record fault: shard {shard} record {read}"
            )))
        } else {
            f(user_state, record, &mut emit, handle).err()
        };
        read += 1;
        if let Some(e) = record_error {
            if try_skip_record(skip_budget, handle) {
                continue;
            }
            return Err(e);
        }
    }
    let emitted = emit.emitted;
    // Commit (footer + atomic rename) before the job-level accounting:
    // a shard only ever counts once, on its successful attempt.
    writer.finish()?;
    state.records_in.fetch_add(read, Ordering::SeqCst);
    state.records_out.fetch_add(emitted, Ordering::SeqCst);
    Ok(())
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// Run a full map-shuffle-reduce over sharded datasets.
///
/// * `map` emits `(K, V)` pairs per input record;
/// * pairs are hash-partitioned into `output.num_shards()` partitions and
///   spilled under `tmp_dir`, with optional map-side combining;
/// * `reduce` folds each key's values (presented in key order) and emits
///   output records to its partition's shard.
///
/// Fault tolerance mirrors [`par_map_shards`]: every input shard (map)
/// and every partition (reduce) is a retryable task. Spill files are
/// keyed by *input shard*, not by worker, and committed atomically when
/// the shard finishes, so a retried map shard deterministically rewrites
/// exactly its own spills regardless of which worker runs it.
pub fn map_reduce<I, K, V, O, M, C, R>(
    input: &ShardSpec,
    output: &ShardSpec,
    tmp_dir: &Path,
    cfg: &JobConfig,
    map: M,
    combiner: Option<C>,
    reduce: R,
) -> Result<JobStats, DataflowError>
where
    I: Record,
    O: Record,
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError> + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>
        + Sync,
{
    let partitions = output.num_shards();
    let workers = cfg.workers.max(1);
    let counters = Counters::new();
    let state = JobState::new();
    let busy = BusyClock::new(workers);
    let spill_meter = SpillMeter::default();
    let skip_budget = AtomicU64::new(cfg.skip_bad_record_budget);
    let start = Instant::now();

    // Spills are per input shard (not per worker) so that a shard retry
    // on any worker reproduces the same files.
    let spill =
        |shard: usize, p: usize| ShardSpec::new(tmp_dir, format!("spill-{shard:05}-{p:03}"), 1);
    let cleanup = || {
        for shard in 0..input.num_shards() {
            for p in 0..partitions {
                // drybell-lint: allow(error-discipline) — best-effort spill cleanup; a missing file is already the goal state
                let _ = spill(shard, p).remove();
            }
        }
    };

    // ---- Map phase -------------------------------------------------------
    run_phase(
        FaultSite::Map,
        input.num_shards(),
        workers,
        cfg,
        &state,
        &busy,
        &counters,
        |_ctx| Ok(()),
        |_w: &mut (), shard, _attempt, handle| {
            map_one_shard(
                input,
                shard,
                partitions,
                cfg.spill_buffer,
                &map,
                combiner.as_ref(),
                &spill,
                &state,
                &spill_meter,
                &skip_budget,
                cfg.fault_plan.as_ref(),
                handle,
            )
        },
    )?;
    let map_seconds = start.elapsed().as_secs_f64();
    if state.failed.load(Ordering::SeqCst) {
        // Clean up committed spills from shards that did finish; the
        // failure return must not leak intermediate files.
        cleanup();
        let stats = empty_stats(cfg, workers, &counters);
        return state.into_result(stats);
    }

    // ---- Reduce phase ----------------------------------------------------
    let reduce_start = Instant::now();
    run_phase(
        FaultSite::Reduce,
        partitions,
        workers.min(partitions).max(1),
        cfg,
        &state,
        &busy,
        &counters,
        |_ctx| Ok(()),
        |_w: &mut (), p, _attempt, _handle| {
            reduce_partition(output, p, input.num_shards(), &reduce, &spill, &state)
        },
    )?;
    let reduce_seconds = reduce_start.elapsed().as_secs_f64();
    // Clean up spills regardless of outcome.
    cleanup();
    let seconds = start.elapsed().as_secs_f64();
    let records_in = state.records_in.load(Ordering::SeqCst);
    let records_out = state.records_out.load(Ordering::SeqCst);
    let spill_pairs = spill_meter.pairs.load(Ordering::Relaxed);
    let stats = JobStats {
        name: cfg.name.clone(),
        records_in,
        records_out,
        seconds,
        workers,
        counters: counters.snapshot(),
        phases: vec![
            PhaseStats {
                name: "map".to_string(),
                seconds: map_seconds,
                records_in,
                records_out: spill_pairs,
            },
            PhaseStats {
                name: "reduce".to_string(),
                seconds: reduce_seconds,
                records_in: spill_pairs,
                records_out,
            },
        ],
        worker_busy: busy.seconds(),
        spill_bytes: spill_meter.bytes.load(Ordering::Relaxed),
    };
    state.into_result(stats)
}

/// Shuffle volume accounting shared by all map workers.
#[derive(Default)]
struct SpillMeter {
    bytes: AtomicU64,
    pairs: AtomicU64,
}

/// Map one input shard into its per-partition spill files.
///
/// The whole shard is one atomic unit of work: partition writers stage
/// into `.tmp` files and are only committed (footer + rename) after the
/// shard maps completely, and the spill meter / `records_in` accounting
/// runs only after every commit succeeds. A failed or aborted attempt
/// therefore leaves nothing behind, and a retry is byte-identical.
#[allow(clippy::too_many_arguments)]
fn map_one_shard<I, K, V, M, C>(
    input: &ShardSpec,
    shard: usize,
    partitions: usize,
    spill_buffer: usize,
    map: &M,
    combiner: Option<&C>,
    spill: &dyn Fn(usize, usize) -> ShardSpec,
    state: &JobState,
    spill_meter: &SpillMeter,
    skip_budget: &AtomicU64,
    plan: Option<&FaultPlan>,
    handle: &mut CounterHandle,
) -> Result<(), DataflowError>
where
    I: Record,
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError> + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
{
    let mut writers: Vec<ShardWriter<(K, V)>> = (0..partitions)
        .map(|p| ShardWriter::create(&spill(shard, p).shard_path(0)))
        .collect::<Result<_, _>>()?;
    let mut buffer: HashMap<K, Vec<V>> = HashMap::new();
    let mut buffered = 0usize;
    let mut read = 0u64;

    let flush = |buffer: &mut HashMap<K, Vec<V>>,
                 writers: &mut Vec<ShardWriter<(K, V)>>|
     -> Result<(), DataflowError> {
        // Drain in key order: HashMap iteration order would leak into the
        // spill files (and from there into any byte-level comparison of
        // reduce inputs), making runs non-reproducible.
        // drybell-lint: allow(determinism) — drained into a Vec and sorted by key on the next line
        let mut entries: Vec<(K, Vec<V>)> = buffer.drain().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (k, vs) in entries {
            let p = (hash_key(&k) % partitions as u64) as usize;
            let writer = writers
                .get_mut(p)
                .ok_or_else(|| DataflowError::internal("spill partition out of range"))?;
            match combiner {
                Some(c) if vs.len() > 1 => {
                    let combined = c(&k, vs);
                    writer.write(&(k, combined))?;
                }
                _ => {
                    for v in vs {
                        writer.write(&(k.clone(), v))?;
                    }
                }
            }
        }
        Ok(())
    };

    let reader = ShardReader::<I>::open(&input.shard_path(shard))?;
    for record in reader {
        if state.failed.load(Ordering::SeqCst) {
            // Doomed job: bail out *before* flushing or committing any
            // spill writers — they are about to be deleted anyway.
            return Err(DataflowError::internal("job aborted during map"));
        }
        let record = record?;
        let record_error = if plan.is_some_and(|p| p.record_fault(shard, read)) {
            Some(DataflowError::user(format!(
                "injected record fault: shard {shard} record {read}"
            )))
        } else {
            let mut map_err: Option<DataflowError> = None;
            let mut emit = |k: K, v: V| {
                buffer.entry(k).or_default().push(v);
                buffered += 1;
            };
            if let Err(e) = map(record, &mut emit) {
                map_err = Some(e);
            }
            map_err
        };
        read += 1;
        if let Some(e) = record_error {
            if try_skip_record(skip_budget, handle) {
                continue;
            }
            return Err(e);
        }
        if buffered >= spill_buffer {
            flush(&mut buffer, &mut writers)?;
            buffered = 0;
        }
    }
    if state.failed.load(Ordering::SeqCst) {
        return Err(DataflowError::internal("job aborted during map"));
    }
    flush(&mut buffer, &mut writers)?;
    let mut bytes = 0u64;
    let mut pairs = 0u64;
    for w in writers {
        bytes += w.bytes_written();
        pairs += w.records_written();
        w.finish()?;
    }
    // Meter and record accounting only after every partition committed:
    // a retried shard must not double-count.
    spill_meter.bytes.fetch_add(bytes, Ordering::Relaxed);
    spill_meter.pairs.fetch_add(pairs, Ordering::Relaxed);
    state.records_in.fetch_add(read, Ordering::SeqCst);
    Ok(())
}

fn reduce_partition<K, V, O, R>(
    output: &ShardSpec,
    partition: usize,
    input_shards: usize,
    reduce: &R,
    spill: &dyn Fn(usize, usize) -> ShardSpec,
    state: &JobState,
) -> Result<(), DataflowError>
where
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    O: Record,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>
        + Sync,
{
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for shard in 0..input_shards {
        if state.failed.load(Ordering::SeqCst) {
            return Err(DataflowError::internal("job aborted during reduce"));
        }
        // Every map shard commits a spill for every partition (possibly
        // empty), so a missing file is a real error, not a skip.
        let path = spill(shard, partition).shard_path(0);
        for rec in ShardReader::<(K, V)>::open(&path)? {
            let (k, v) = rec?;
            groups.entry(k).or_default().push(v);
        }
    }
    let mut writer = ShardWriter::<O>::create(&output.shard_path(partition))?;
    let mut emitted = 0u64;
    for (k, vs) in groups {
        let mut sink = |o: &O| -> Result<(), DataflowError> {
            writer.write(o)?;
            emitted += 1;
            Ok(())
        };
        reduce(&k, vs, &mut sink)?;
    }
    writer.finish()?;
    state.records_out.fetch_add(emitted, Ordering::SeqCst);
    Ok(())
}

fn empty_stats(cfg: &JobConfig, workers: usize, counters: &Counters) -> JobStats {
    JobStats {
        name: cfg.name.clone(),
        records_in: 0,
        records_out: 0,
        seconds: 0.0,
        workers,
        counters: counters.snapshot(),
        phases: Vec::new(),
        worker_busy: Vec::new(),
        spill_bytes: 0,
    }
}

/// Single-threaded in-memory reference MapReduce, used by tests to verify
/// the distributed engine produces identical results.
pub fn reference_map_reduce<I, K, V, O, M, R>(
    inputs: &[I],
    map: M,
    reduce: R,
) -> Result<Vec<O>, DataflowError>
where
    I: Clone,
    K: Ord + Clone,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError>,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>,
    O: Clone,
{
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for input in inputs {
        let mut emit = |k: K, v: V| {
            groups.entry(k).or_default().push(v);
        };
        map(input.clone(), &mut emit)?;
    }
    let mut out = Vec::new();
    for (k, vs) in groups {
        let mut sink = |o: &O| -> Result<(), DataflowError> {
            out.push(o.clone());
            Ok(())
        };
        reduce(&k, vs, &mut sink)?;
    }
    Ok(out)
}

/// Parallel in-memory map preserving input order, with per-worker state.
///
/// This is the fast path used when a dataset already fits in memory (the
/// experiment harness' default); the shard-based [`par_map_shards`] is the
/// faithful pipeline for on-disk datasets.
pub fn par_map_vec<T, U, S, Init, F>(
    items: &[T],
    workers: usize,
    init: Init,
    f: F,
) -> Result<Vec<U>, DataflowError>
where
    T: Sync,
    U: Send,
    S: Send,
    Init: Fn(usize) -> Result<S, DataflowError> + Sync,
    F: Fn(&mut S, &T) -> Result<U, DataflowError> + Sync,
{
    let workers = workers.max(1);
    let chunk = items.len().div_ceil(workers).max(1);
    let state = JobState::new();
    let mut results: Vec<Mutex<Vec<U>>> = Vec::new();
    for _ in 0..workers {
        results.push(Mutex::new(Vec::new()));
    }
    std::thread::scope(|scope| {
        for (worker_id, (slot, block)) in results.iter().zip(items.chunks(chunk)).enumerate() {
            let state = &state;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut s = match init(worker_id) {
                        Ok(s) => s,
                        Err(e) => {
                            state.fail(e);
                            return;
                        }
                    };
                    let mut out = Vec::with_capacity(block.len());
                    for item in block {
                        if state.failed.load(Ordering::SeqCst) {
                            return;
                        }
                        match f(&mut s, item) {
                            Ok(u) => out.push(u),
                            Err(e) => {
                                state.fail(e);
                                return;
                            }
                        }
                    }
                    *slot.lock() = out;
                }));
                if let Err(payload) = result {
                    state.fail(DataflowError::WorkerPanicked {
                        worker: worker_id,
                        message: render_panic(payload),
                    });
                }
            });
        }
    });
    if let Some(err) = state.first_error.into_inner() {
        return Err(err);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in results {
        out.extend(slot.into_inner());
    }
    Ok(out)
}
