//! The MapReduce-style execution engine.
//!
//! Snorkel DryBell executes every labeling function as a MapReduce pipeline
//! over Google's distributed compute environment (§5.1). This module is the
//! local substitute: a thread-per-worker engine over [`crate::shard`]
//! datasets that preserves the architectural properties the paper relies
//! on —
//!
//! * workers process whole shards and may hold per-worker state (the hook
//!   used to "launch a model server on each compute node"),
//! * jobs expose named counters and wall-clock stats,
//! * a full shuffle ([`map_reduce`]) with optional map-side combining is
//!   available for aggregation pipelines,
//! * worker panics and user errors abort the job and surface as
//!   [`DataflowError`]s rather than hanging.

use crate::counters::{CounterHandle, CounterSnapshot, Counters};
use crate::error::DataflowError;
use crate::shard::{ShardReader, ShardSpec, ShardWriter};
use crate::Record;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Configuration shared by all job types.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job name used in stats and error messages.
    pub name: String,
    /// Number of worker threads (both map and reduce phases).
    pub workers: usize,
    /// Map-side buffer size (in key-value pairs) before a spill flush;
    /// only used by [`map_reduce`].
    pub spill_buffer: usize,
}

impl JobConfig {
    /// A job named `name` using all available parallelism.
    pub fn new(name: impl Into<String>) -> JobConfig {
        JobConfig {
            name: name.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            spill_buffer: 64 * 1024,
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> JobConfig {
        self.workers = workers.max(1);
        self
    }
}

/// Wall-clock accounting for one phase of a job (`map`, `reduce`).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name.
    pub name: String,
    /// Wall-clock seconds spent in this phase.
    pub seconds: f64,
    /// Records entering the phase.
    pub records_in: u64,
    /// Records leaving the phase (spilled pairs for a map phase feeding
    /// a shuffle, final records for a reduce phase).
    pub records_out: u64,
}

/// Wall-clock and throughput accounting for a finished job.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Records read from the input dataset.
    pub records_in: u64,
    /// Records written to the output dataset.
    pub records_out: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Per-phase wall-clock breakdown, in execution order. Phase times
    /// sum to (slightly less than) `seconds`; the gap is setup/cleanup.
    pub phases: Vec<PhaseStats>,
    /// Seconds each worker spent busy (indexed by worker id, summed
    /// across phases). Uneven values reveal stragglers.
    pub worker_busy: Vec<f64>,
    /// Bytes spilled to intermediate shuffle files (zero for pure maps).
    pub spill_bytes: u64,
}

impl JobStats {
    /// Input records per second.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.seconds.max(1e-12)
    }

    /// Slowest worker's busy time over the mean busy time — 1.0 means a
    /// perfectly balanced job, 2.0 means one worker carried twice the
    /// average load.
    pub fn straggler_ratio(&self) -> f64 {
        if self.worker_busy.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.worker_busy.iter().sum();
        let mean = sum / self.worker_busy.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.worker_busy.iter().cloned().fold(0.0, f64::max);
        max / mean
    }

    /// Emit this job to a run journal: one `job` event carrying the
    /// totals, preceded by one `phase` event per phase.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        for phase in &self.phases {
            journal.emit(
                drybell_obs::Event::new("phase")
                    .field("job", self.name.as_str())
                    .field("name", phase.name.as_str())
                    .field("seconds", phase.seconds)
                    .field("records_in", phase.records_in)
                    .field("records_out", phase.records_out),
            );
        }
        let mut event = drybell_obs::Event::new("job")
            .field("name", self.name.as_str())
            .field("records_in", self.records_in)
            .field("records_out", self.records_out)
            .field("seconds", self.seconds)
            .field("workers", self.workers)
            .field("straggler_ratio", self.straggler_ratio())
            .field("spill_bytes", self.spill_bytes)
            .field(
                "worker_busy",
                drybell_obs::Json::Arr(
                    self.worker_busy
                        .iter()
                        .map(|&s| drybell_obs::Json::Num(s))
                        .collect(),
                ),
            );
        for (name, value) in self.counters.entries() {
            event = event.field(&format!("counters/{name}"), *value);
        }
        journal.emit(event);
    }
}

/// Per-worker busy-time accumulator, microseconds.
struct BusyClock {
    micros: Vec<AtomicU64>,
}

impl BusyClock {
    fn new(workers: usize) -> BusyClock {
        BusyClock {
            micros: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn charge(&self, worker_id: usize, since: Instant) {
        let us = since.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if let Some(m) = self.micros.get(worker_id) {
            m.fetch_add(us, Ordering::Relaxed);
        }
    }

    fn seconds(&self) -> Vec<f64> {
        self.micros
            .iter()
            .map(|m| m.load(Ordering::Relaxed) as f64 / 1e6)
            .collect()
    }
}

/// Per-worker context passed to worker-state initializers.
pub struct WorkerContext {
    /// Worker index in `0..workers`.
    pub worker_id: usize,
    /// Batched counter handle for this worker.
    pub counters: CounterHandle,
}

/// Long-lived per-worker helper (e.g. an NLP model server) that jobs can
/// start once per worker and reuse across every record the worker maps —
/// the paper's "launch a model server on each compute node" pattern.
pub trait Service: Send {
    /// Service name for logging and counters.
    fn name(&self) -> &str;
    /// One-time startup (load models, open sockets, ...).
    fn warm_up(&mut self) -> Result<(), DataflowError> {
        Ok(())
    }
}

/// Emits output records from a map function into the worker's output shard.
pub struct Emit<'a, O: Record> {
    writer: &'a mut ShardWriter<O>,
    emitted: u64,
}

impl<'a, O: Record> Emit<'a, O> {
    /// Write one output record.
    pub fn emit(&mut self, record: &O) -> Result<(), DataflowError> {
        self.writer.write(record)?;
        self.emitted += 1;
        Ok(())
    }
}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Shared abort/error state for a running job.
struct JobState {
    failed: AtomicBool,
    first_error: Mutex<Option<DataflowError>>,
    records_in: AtomicU64,
    records_out: AtomicU64,
}

impl JobState {
    fn new() -> JobState {
        JobState {
            failed: AtomicBool::new(false),
            first_error: Mutex::new(None),
            records_in: AtomicU64::new(0),
            records_out: AtomicU64::new(0),
        }
    }

    fn fail(&self, err: DataflowError) {
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::SeqCst);
    }

    fn into_result(self, stats: JobStats) -> Result<JobStats, DataflowError> {
        match self.first_error.into_inner() {
            Some(err) => Err(err),
            None => Ok(stats),
        }
    }
}

/// Run a shard-parallel map: each input shard `i` is transformed into
/// output shard `i` by a user function, with per-worker state created by
/// `init` (the model-server hook).
///
/// Requires `output.num_shards() == input.num_shards()`.
pub fn par_map_shards<I, O, S, Init, F>(
    input: &ShardSpec,
    output: &ShardSpec,
    cfg: &JobConfig,
    init: Init,
    f: F,
) -> Result<JobStats, DataflowError>
where
    I: Record,
    O: Record,
    S: Send,
    Init: Fn(&mut WorkerContext) -> Result<S, DataflowError> + Sync,
    F: Fn(&mut S, I, &mut Emit<'_, O>, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    if output.num_shards() != input.num_shards() {
        return Err(DataflowError::BadJob(format!(
            "par_map_shards needs matching shard counts: {} in vs {} out",
            input.num_shards(),
            output.num_shards()
        )));
    }
    let counters = Counters::new();
    let state = JobState::new();
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..input.num_shards() {
        tx.send(i)
            .map_err(|_| DataflowError::internal("shard work queue closed before fill"))?;
    }
    drop(tx);
    let start = Instant::now();
    let workers = cfg.workers.max(1);
    let busy = BusyClock::new(workers);
    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let rx = rx.clone();
            let counters = counters.clone();
            let state = &state;
            let busy = &busy;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let busy_start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = WorkerContext {
                        worker_id,
                        counters: CounterHandle::new(counters.clone()),
                    };
                    let mut user_state = match init(&mut ctx) {
                        Ok(s) => s,
                        Err(e) => {
                            state.fail(e);
                            return;
                        }
                    };
                    let mut handle = CounterHandle::new(counters.clone());
                    while let Ok(shard) = rx.recv() {
                        if state.failed.load(Ordering::SeqCst) {
                            return;
                        }
                        if let Err(e) = run_one_shard(
                            input,
                            output,
                            shard,
                            &mut user_state,
                            f,
                            state,
                            &mut handle,
                        ) {
                            state.fail(e);
                            return;
                        }
                    }
                }));
                busy.charge(worker_id, busy_start);
                if let Err(payload) = result {
                    state.fail(DataflowError::WorkerPanicked {
                        worker: worker_id,
                        message: render_panic(payload),
                    });
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let records_in = state.records_in.load(Ordering::SeqCst);
    let records_out = state.records_out.load(Ordering::SeqCst);
    let stats = JobStats {
        name: cfg.name.clone(),
        records_in,
        records_out,
        seconds,
        workers,
        counters: counters.snapshot(),
        phases: vec![PhaseStats {
            name: "map".to_string(),
            seconds,
            records_in,
            records_out,
        }],
        worker_busy: busy.seconds(),
        spill_bytes: 0,
    };
    state.into_result(stats)
}

fn run_one_shard<I, O, S, F>(
    input: &ShardSpec,
    output: &ShardSpec,
    shard: usize,
    user_state: &mut S,
    f: &F,
    state: &JobState,
    handle: &mut CounterHandle,
) -> Result<(), DataflowError>
where
    I: Record,
    O: Record,
    F: Fn(&mut S, I, &mut Emit<'_, O>, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
{
    let reader = ShardReader::<I>::open(&input.shard_path(shard))?;
    let mut writer = ShardWriter::<O>::create(&output.shard_path(shard))?;
    let mut read = 0u64;
    let mut emit = Emit {
        writer: &mut writer,
        emitted: 0,
    };
    for record in reader {
        let record = record?;
        read += 1;
        f(user_state, record, &mut emit, handle)?;
    }
    let emitted = emit.emitted;
    writer.finish()?;
    state.records_in.fetch_add(read, Ordering::SeqCst);
    state.records_out.fetch_add(emitted, Ordering::SeqCst);
    Ok(())
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

/// Run a full map-shuffle-reduce over sharded datasets.
///
/// * `map` emits `(K, V)` pairs per input record;
/// * pairs are hash-partitioned into `output.num_shards()` partitions and
///   spilled under `tmp_dir`, with optional map-side combining;
/// * `reduce` folds each key's values (presented in key order) and emits
///   output records to its partition's shard.
pub fn map_reduce<I, K, V, O, M, C, R>(
    input: &ShardSpec,
    output: &ShardSpec,
    tmp_dir: &Path,
    cfg: &JobConfig,
    map: M,
    combiner: Option<C>,
    reduce: R,
) -> Result<JobStats, DataflowError>
where
    I: Record,
    O: Record,
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError> + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>
        + Sync,
{
    let partitions = output.num_shards();
    let workers = cfg.workers.max(1);
    let counters = Counters::new();
    let state = JobState::new();
    let busy = BusyClock::new(workers);
    let spill_meter = SpillMeter::default();
    let start = Instant::now();

    // ---- Map phase -------------------------------------------------------
    let spill = |w: usize, p: usize| ShardSpec::new(tmp_dir, format!("spill-{w:03}-{p:03}"), 1);
    {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in 0..input.num_shards() {
            tx.send(i)
                .map_err(|_| DataflowError::internal("map work queue closed before fill"))?;
        }
        drop(tx);
        std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let rx = rx.clone();
                let state = &state;
                let busy = &busy;
                let spill_meter = &spill_meter;
                let map = &map;
                let combiner = combiner.as_ref();
                let spill = &spill;
                scope.spawn(move || {
                    let busy_start = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if let Err(e) = map_worker::<I, K, V, _, _>(
                            input,
                            worker_id,
                            partitions,
                            cfg.spill_buffer,
                            &rx,
                            map,
                            combiner,
                            spill,
                            state,
                            spill_meter,
                        ) {
                            state.fail(e);
                        }
                    }));
                    busy.charge(worker_id, busy_start);
                    if let Err(payload) = result {
                        state.fail(DataflowError::WorkerPanicked {
                            worker: worker_id,
                            message: render_panic(payload),
                        });
                    }
                });
            }
        });
    }
    let map_seconds = start.elapsed().as_secs_f64();
    if state.failed.load(Ordering::SeqCst) {
        let stats = empty_stats(cfg, workers, &counters);
        return state.into_result(stats);
    }

    // ---- Reduce phase ----------------------------------------------------
    let reduce_start = Instant::now();
    {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for p in 0..partitions {
            tx.send(p)
                .map_err(|_| DataflowError::internal("reduce work queue closed before fill"))?;
        }
        drop(tx);
        std::thread::scope(|scope| {
            for worker_id in 0..workers.min(partitions) {
                let rx = rx.clone();
                let state = &state;
                let busy = &busy;
                let reduce = &reduce;
                let spill = &spill;
                scope.spawn(move || {
                    let busy_start = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        while let Ok(p) = rx.recv() {
                            if state.failed.load(Ordering::SeqCst) {
                                return;
                            }
                            if let Err(e) = reduce_partition::<K, V, O, _>(
                                output, p, workers, reduce, spill, state,
                            ) {
                                state.fail(e);
                                return;
                            }
                        }
                    }));
                    busy.charge(worker_id, busy_start);
                    if let Err(payload) = result {
                        state.fail(DataflowError::WorkerPanicked {
                            worker: worker_id,
                            message: render_panic(payload),
                        });
                    }
                });
            }
        });
    }
    let reduce_seconds = reduce_start.elapsed().as_secs_f64();
    // Clean up spills regardless of outcome.
    for w in 0..workers {
        for p in 0..partitions {
            let _ = spill(w, p).remove();
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let records_in = state.records_in.load(Ordering::SeqCst);
    let records_out = state.records_out.load(Ordering::SeqCst);
    let spill_pairs = spill_meter.pairs.load(Ordering::Relaxed);
    let stats = JobStats {
        name: cfg.name.clone(),
        records_in,
        records_out,
        seconds,
        workers,
        counters: counters.snapshot(),
        phases: vec![
            PhaseStats {
                name: "map".to_string(),
                seconds: map_seconds,
                records_in,
                records_out: spill_pairs,
            },
            PhaseStats {
                name: "reduce".to_string(),
                seconds: reduce_seconds,
                records_in: spill_pairs,
                records_out,
            },
        ],
        worker_busy: busy.seconds(),
        spill_bytes: spill_meter.bytes.load(Ordering::Relaxed),
    };
    state.into_result(stats)
}

/// Shuffle volume accounting shared by all map workers.
#[derive(Default)]
struct SpillMeter {
    bytes: AtomicU64,
    pairs: AtomicU64,
}

#[allow(clippy::too_many_arguments)]
fn map_worker<I, K, V, M, C>(
    input: &ShardSpec,
    worker_id: usize,
    partitions: usize,
    spill_buffer: usize,
    rx: &crossbeam::channel::Receiver<usize>,
    map: &M,
    combiner: Option<&C>,
    spill: &dyn Fn(usize, usize) -> ShardSpec,
    state: &JobState,
    spill_meter: &SpillMeter,
) -> Result<(), DataflowError>
where
    I: Record,
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError> + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
{
    let mut writers: Vec<ShardWriter<(K, V)>> = (0..partitions)
        .map(|p| ShardWriter::create(&spill(worker_id, p).shard_path(0)))
        .collect::<Result<_, _>>()?;
    let mut buffer: HashMap<K, Vec<V>> = HashMap::new();
    let mut buffered = 0usize;
    let mut read = 0u64;

    let flush = |buffer: &mut HashMap<K, Vec<V>>,
                 writers: &mut Vec<ShardWriter<(K, V)>>|
     -> Result<(), DataflowError> {
        // Drain in key order: HashMap iteration order would leak into the
        // spill files (and from there into any byte-level comparison of
        // reduce inputs), making runs non-reproducible.
        // drybell-lint: allow(determinism) — drained into a Vec and sorted by key on the next line
        let mut entries: Vec<(K, Vec<V>)> = buffer.drain().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (k, vs) in entries {
            let p = (hash_key(&k) % partitions as u64) as usize;
            let writer = writers
                .get_mut(p)
                .ok_or_else(|| DataflowError::internal("spill partition out of range"))?;
            match combiner {
                Some(c) if vs.len() > 1 => {
                    let combined = c(&k, vs);
                    writer.write(&(k, combined))?;
                }
                _ => {
                    for v in vs {
                        writer.write(&(k.clone(), v))?;
                    }
                }
            }
        }
        Ok(())
    };

    while let Ok(shard) = rx.recv() {
        if state.failed.load(Ordering::SeqCst) {
            break;
        }
        let reader = ShardReader::<I>::open(&input.shard_path(shard))?;
        for record in reader {
            let record = record?;
            read += 1;
            let mut map_err: Option<DataflowError> = None;
            let mut emit = |k: K, v: V| {
                buffer.entry(k).or_default().push(v);
                buffered += 1;
            };
            if let Err(e) = map(record, &mut emit) {
                map_err = Some(e);
            }
            if let Some(e) = map_err {
                return Err(e);
            }
            if buffered >= spill_buffer {
                flush(&mut buffer, &mut writers)?;
                buffered = 0;
            }
        }
    }
    flush(&mut buffer, &mut writers)?;
    for w in writers {
        spill_meter
            .bytes
            .fetch_add(w.bytes_written(), Ordering::Relaxed);
        spill_meter
            .pairs
            .fetch_add(w.records_written(), Ordering::Relaxed);
        w.finish()?;
    }
    state.records_in.fetch_add(read, Ordering::SeqCst);
    Ok(())
}

fn reduce_partition<K, V, O, R>(
    output: &ShardSpec,
    partition: usize,
    map_workers: usize,
    reduce: &R,
    spill: &dyn Fn(usize, usize) -> ShardSpec,
    state: &JobState,
) -> Result<(), DataflowError>
where
    K: Record + Ord + Clone + Hash + Eq,
    V: Record,
    O: Record,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>
        + Sync,
{
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for w in 0..map_workers {
        let path = spill(w, partition).shard_path(0);
        if !path.exists() {
            continue;
        }
        for rec in ShardReader::<(K, V)>::open(&path)? {
            let (k, v) = rec?;
            groups.entry(k).or_default().push(v);
        }
    }
    let mut writer = ShardWriter::<O>::create(&output.shard_path(partition))?;
    let mut emitted = 0u64;
    for (k, vs) in groups {
        let mut sink = |o: &O| -> Result<(), DataflowError> {
            writer.write(o)?;
            emitted += 1;
            Ok(())
        };
        reduce(&k, vs, &mut sink)?;
    }
    writer.finish()?;
    state.records_out.fetch_add(emitted, Ordering::SeqCst);
    Ok(())
}

fn empty_stats(cfg: &JobConfig, workers: usize, counters: &Counters) -> JobStats {
    JobStats {
        name: cfg.name.clone(),
        records_in: 0,
        records_out: 0,
        seconds: 0.0,
        workers,
        counters: counters.snapshot(),
        phases: Vec::new(),
        worker_busy: Vec::new(),
        spill_bytes: 0,
    }
}

/// Single-threaded in-memory reference MapReduce, used by tests to verify
/// the distributed engine produces identical results.
pub fn reference_map_reduce<I, K, V, O, M, R>(
    inputs: &[I],
    map: M,
    reduce: R,
) -> Result<Vec<O>, DataflowError>
where
    I: Clone,
    K: Ord + Clone,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<(), DataflowError>,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(&O) -> Result<(), DataflowError>) -> Result<(), DataflowError>,
    O: Clone,
{
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for input in inputs {
        let mut emit = |k: K, v: V| {
            groups.entry(k).or_default().push(v);
        };
        map(input.clone(), &mut emit)?;
    }
    let mut out = Vec::new();
    for (k, vs) in groups {
        let mut sink = |o: &O| -> Result<(), DataflowError> {
            out.push(o.clone());
            Ok(())
        };
        reduce(&k, vs, &mut sink)?;
    }
    Ok(out)
}

/// Parallel in-memory map preserving input order, with per-worker state.
///
/// This is the fast path used when a dataset already fits in memory (the
/// experiment harness' default); the shard-based [`par_map_shards`] is the
/// faithful pipeline for on-disk datasets.
pub fn par_map_vec<T, U, S, Init, F>(
    items: &[T],
    workers: usize,
    init: Init,
    f: F,
) -> Result<Vec<U>, DataflowError>
where
    T: Sync,
    U: Send,
    S: Send,
    Init: Fn(usize) -> Result<S, DataflowError> + Sync,
    F: Fn(&mut S, &T) -> Result<U, DataflowError> + Sync,
{
    let workers = workers.max(1);
    let chunk = items.len().div_ceil(workers).max(1);
    let state = JobState::new();
    let mut results: Vec<Mutex<Vec<U>>> = Vec::new();
    for _ in 0..workers {
        results.push(Mutex::new(Vec::new()));
    }
    std::thread::scope(|scope| {
        for (worker_id, (slot, block)) in results.iter().zip(items.chunks(chunk)).enumerate() {
            let state = &state;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut s = match init(worker_id) {
                        Ok(s) => s,
                        Err(e) => {
                            state.fail(e);
                            return;
                        }
                    };
                    let mut out = Vec::with_capacity(block.len());
                    for item in block {
                        if state.failed.load(Ordering::SeqCst) {
                            return;
                        }
                        match f(&mut s, item) {
                            Ok(u) => out.push(u),
                            Err(e) => {
                                state.fail(e);
                                return;
                            }
                        }
                    }
                    *slot.lock() = out;
                }));
                if let Err(payload) = result {
                    state.fail(DataflowError::WorkerPanicked {
                        worker: worker_id,
                        message: render_panic(payload),
                    });
                }
            });
        }
    });
    if let Some(err) = state.first_error.into_inner() {
        return Err(err);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in results {
        out.extend(slot.into_inner());
    }
    Ok(out)
}
