//! Tests for the MapReduce engine (kept in a separate module to keep
//! `mapreduce.rs` focused on the engine itself).

use crate::codec::Record;
use crate::counters::CounterHandle;
use crate::error::DataflowError;
use crate::fault::{FaultPlan, FaultSite};
use crate::mapreduce::{map_reduce, par_map_shards, par_map_vec, reference_map_reduce, JobConfig};
use crate::shard::{read_all, write_all, ShardSpec};
use proptest::prelude::*;

type WordRec = (u64, String);
type CountSink<'a> = &'a mut dyn FnMut(&(String, i64)) -> Result<(), DataflowError>;

fn write_input(dir: &std::path::Path, shards: usize, records: &[WordRec]) -> ShardSpec {
    let spec = ShardSpec::new(dir, "input", shards);
    write_all(&spec, records).unwrap();
    spec
}

#[test]
fn par_map_transforms_every_record() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..500).map(|i| (i, format!("doc {i}"))).collect();
    let input = write_input(dir.path(), 8, &records);
    let output = input.derive("mapped");
    let cfg = JobConfig::new("double").with_workers(4);
    let stats = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), (k, v): WordRec, emit, counters: &mut CounterHandle| {
            counters.inc("seen");
            emit.emit(&(k * 2, v))
        },
    )
    .unwrap();
    assert_eq!(stats.records_in, 500);
    assert_eq!(stats.records_out, 500);
    assert_eq!(stats.counters.get("seen"), 500);
    assert!(stats.throughput() > 0.0);
    let mut back: Vec<WordRec> = read_all(&output).unwrap();
    back.sort();
    let mut want: Vec<WordRec> = records.iter().map(|(k, v)| (k * 2, v.clone())).collect();
    want.sort();
    assert_eq!(back, want);
}

#[test]
fn par_map_filters_via_emit() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..100).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("evens");
    let stats = par_map_shards(
        &input,
        &output,
        &JobConfig::new("filter").with_workers(2),
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| {
            if rec.0.is_multiple_of(2) {
                emit.emit(&rec)?;
            }
            Ok(())
        },
    )
    .unwrap();
    assert_eq!(stats.records_in, 100);
    assert_eq!(stats.records_out, 50);
}

#[test]
fn par_map_worker_state_is_per_worker() {
    // Each worker's init gets a distinct id; all ids must be < workers.
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..64).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 8, &records);
    let output = input.derive("ids");
    par_map_shards(
        &input,
        &output,
        &JobConfig::new("ids").with_workers(3),
        |ctx| {
            assert!(ctx.worker_id < 3);
            Ok(ctx.worker_id as u64)
        },
        |wid: &mut u64, (k, _): WordRec, emit, _c: &mut CounterHandle| {
            emit.emit(&(k, format!("worker-{wid}")))
        },
    )
    .unwrap();
    let back: Vec<WordRec> = read_all(&output).unwrap();
    assert_eq!(back.len(), 64);
    for (_, v) in back {
        assert!(v.starts_with("worker-"));
    }
}

#[test]
fn par_map_user_error_aborts_job() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..50).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("err");
    let result = par_map_shards(
        &input,
        &output,
        &JobConfig::new("fail").with_workers(2),
        |_ctx| Ok(()),
        |_s: &mut (), (k, _): WordRec, _emit: &mut crate::mapreduce::Emit<'_, WordRec>, _c| {
            if k == 13 {
                Err(DataflowError::user("unlucky record"))
            } else {
                Ok(())
            }
        },
    );
    assert!(matches!(result, Err(DataflowError::User(_))));
}

#[test]
fn par_map_worker_panic_is_reported() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..50).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("panic");
    let result = par_map_shards(
        &input,
        &output,
        &JobConfig::new("panic").with_workers(2),
        |_ctx| Ok(()),
        |_s: &mut (), (k, _): WordRec, emit: &mut crate::mapreduce::Emit<'_, WordRec>, _c| {
            if k == 7 {
                panic!("boom at {k}");
            }
            emit.emit(&(k, String::new()))
        },
    );
    match result {
        Err(DataflowError::WorkerPanicked { message, .. }) => {
            assert!(message.contains("boom"), "got: {message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

#[test]
fn par_map_shard_count_mismatch_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let input = write_input(dir.path(), 4, &[]);
    let output = ShardSpec::new(dir.path(), "out", 2);
    let result = par_map_shards(
        &input,
        &output,
        &JobConfig::new("bad"),
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    );
    assert!(matches!(result, Err(DataflowError::BadJob(_))));
}

/// Word count: the canonical MapReduce correctness check, verified against
/// the single-threaded reference implementation.
#[test]
fn word_count_matches_reference() {
    let docs: Vec<WordRec> = vec![
        (0, "the quick brown fox".into()),
        (1, "the lazy dog".into()),
        (2, "the quick dog jumps".into()),
        (3, "brown dog brown fox".into()),
    ];
    let map = |(_, text): WordRec, emit: &mut dyn FnMut(String, i64)| {
        for word in text.split_whitespace() {
            emit(word.to_owned(), 1);
        }
        Ok(())
    };
    let reduce =
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.into_iter().sum()));
    let want: Vec<(String, i64)> = reference_map_reduce(&docs, map, reduce).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let input = write_input(dir.path(), 2, &docs);
    let output = ShardSpec::new(dir.path(), "counts", 3);
    let stats = map_reduce(
        &input,
        &output,
        dir.path(),
        &JobConfig::new("wordcount").with_workers(2),
        map,
        None::<fn(&String, Vec<i64>) -> i64>,
        reduce,
    )
    .unwrap();
    assert_eq!(stats.records_in, 4);
    let mut got: Vec<(String, i64)> = read_all(&output).unwrap();
    got.sort();
    let mut want_sorted = want;
    want_sorted.sort();
    assert_eq!(got, want_sorted);
    // Spot-check a value.
    assert!(got.contains(&("the".to_string(), 3)));
}

#[test]
fn combiner_does_not_change_results() {
    let docs: Vec<WordRec> = (0..200)
        .map(|i| (i, format!("w{} w{} w{}", i % 7, i % 3, i % 7)))
        .collect();
    let map = |(_, text): WordRec, emit: &mut dyn FnMut(String, i64)| {
        for w in text.split_whitespace() {
            emit(w.to_owned(), 1);
        }
        Ok(())
    };
    let reduce =
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.into_iter().sum()));
    let run = |combine: bool, dir: &std::path::Path| -> Vec<(String, i64)> {
        let input = write_input(dir, 4, &docs);
        let output = ShardSpec::new(dir, "out", 2);
        let combiner = combine.then_some(|_k: &String, vs: Vec<i64>| vs.into_iter().sum::<i64>());
        let mut cfg = JobConfig::new("wc").with_workers(3);
        cfg.spill_buffer = 16; // force frequent spills so combining matters
        map_reduce(&input, &output, dir, &cfg, map, combiner, reduce).unwrap();
        let mut got: Vec<(String, i64)> = read_all(&output).unwrap();
        got.sort();
        got
    };
    let d1 = tempfile::tempdir().unwrap();
    let d2 = tempfile::tempdir().unwrap();
    assert_eq!(run(false, d1.path()), run(true, d2.path()));
}

#[test]
fn map_reduce_cleans_spill_files() {
    let dir = tempfile::tempdir().unwrap();
    let docs: Vec<WordRec> = (0..20).map(|i| (i, format!("x{}", i % 3))).collect();
    let input = write_input(dir.path(), 2, &docs);
    let output = ShardSpec::new(dir.path(), "out", 2);
    map_reduce(
        &input,
        &output,
        dir.path(),
        &JobConfig::new("wc").with_workers(2),
        |(_, t): WordRec, emit: &mut dyn FnMut(String, i64)| {
            emit(t, 1);
            Ok(())
        },
        None::<fn(&String, Vec<i64>) -> i64>,
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.len() as i64)),
    )
    .unwrap();
    let leftover = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("spill-"))
        .count();
    assert_eq!(leftover, 0, "spill files must be removed");
}

#[test]
fn par_map_vec_preserves_order() {
    let items: Vec<u64> = (0..1000).collect();
    let out = par_map_vec(&items, 7, |_wid| Ok(()), |_s: &mut (), &x| Ok(x * x)).unwrap();
    assert_eq!(out.len(), 1000);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, (i * i) as u64);
    }
}

#[test]
fn par_map_vec_propagates_errors_and_panics() {
    let items: Vec<u64> = (0..100).collect();
    let err = par_map_vec(
        &items,
        4,
        |_wid| Ok(()),
        |_s: &mut (), &x| {
            if x == 42 {
                Err(DataflowError::user("bad"))
            } else {
                Ok(x)
            }
        },
    );
    assert!(matches!(err, Err(DataflowError::User(_))));
    let err = par_map_vec(
        &items,
        4,
        |_wid| Ok(()),
        |_s: &mut (), &x: &u64| -> Result<u64, DataflowError> {
            if x == 55 {
                panic!("dead worker");
            }
            Ok(x)
        },
    );
    assert!(matches!(err, Err(DataflowError::WorkerPanicked { .. })));
}

#[test]
fn par_map_vec_empty_input() {
    let items: Vec<u64> = Vec::new();
    let out = par_map_vec(&items, 4, |_| Ok(()), |_s: &mut (), &x| Ok(x)).unwrap();
    assert!(out.is_empty());
}

#[test]
fn par_map_reports_phase_and_worker_telemetry() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..200).map(|i| (i, format!("doc {i}"))).collect();
    let input = write_input(dir.path(), 8, &records);
    let output = input.derive("mapped");
    let stats = par_map_shards(
        &input,
        &output,
        &JobConfig::new("telemetry").with_workers(3),
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    )
    .unwrap();
    // One map phase covering the whole job.
    assert_eq!(stats.phases.len(), 1);
    assert_eq!(stats.phases[0].name, "map");
    assert_eq!(stats.phases[0].records_in, 200);
    assert_eq!(stats.phases[0].records_out, 200);
    assert!(stats.phases[0].seconds <= stats.seconds);
    // One busy entry per worker, none longer than the job.
    assert_eq!(stats.worker_busy.len(), 3);
    assert!(stats.worker_busy.iter().all(|&b| b <= stats.seconds + 0.01));
    assert!(stats.straggler_ratio() >= 1.0 - 1e-9);
    assert_eq!(stats.spill_bytes, 0);
}

#[test]
fn map_reduce_reports_both_phases_and_spill_volume() {
    let dir = tempfile::tempdir().unwrap();
    let docs: Vec<WordRec> = (0..100).map(|i| (i, format!("w{}", i % 5))).collect();
    let input = write_input(dir.path(), 4, &docs);
    let output = ShardSpec::new(dir.path(), "out", 2);
    let stats = map_reduce(
        &input,
        &output,
        dir.path(),
        &JobConfig::new("wc").with_workers(2),
        |(_, t): WordRec, emit: &mut dyn FnMut(String, i64)| {
            emit(t, 1);
            Ok(())
        },
        None::<fn(&String, Vec<i64>) -> i64>,
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.len() as i64)),
    )
    .unwrap();
    assert_eq!(stats.phases.len(), 2);
    assert_eq!(stats.phases[0].name, "map");
    assert_eq!(stats.phases[1].name, "reduce");
    // Map spilled one pair per record; reduce consumed them all.
    assert_eq!(stats.phases[0].records_out, 100);
    assert_eq!(stats.phases[1].records_in, 100);
    assert_eq!(stats.phases[1].records_out, 5);
    assert!(stats.spill_bytes > 0, "shuffle must account spilled bytes");
    let phase_sum: f64 = stats.phases.iter().map(|p| p.seconds).sum();
    assert!(phase_sum <= stats.seconds + 1e-9);
}

#[test]
fn job_stats_emit_to_journal() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..40).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let stats = par_map_shards(
        &input,
        &output,
        &JobConfig::new("journaled").with_workers(2),
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, c: &mut CounterHandle| {
            c.inc("touched");
            emit.emit(&rec)
        },
    )
    .unwrap();
    let (journal, buffer) = drybell_obs::RunJournal::in_memory();
    stats.emit_to(&journal);
    let lines = buffer.parsed_lines().unwrap();
    assert_eq!(lines.len(), 2); // one phase + one job
    assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("phase"));
    assert_eq!(lines[0].get("job").unwrap().as_str(), Some("journaled"));
    let job = &lines[1];
    assert_eq!(job.get("kind").unwrap().as_str(), Some("job"));
    assert_eq!(job.get("records_in").unwrap().as_i64(), Some(40));
    assert_eq!(job.get("counters/touched").unwrap().as_i64(), Some(40));
    assert_eq!(job.get("worker_busy").unwrap().items().len(), 2);
    assert!(job.get("straggler_ratio").unwrap().as_f64().unwrap() >= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Phase wall-clock times always partition the job's total time:
    /// they sum to no more than `seconds`, and the unattributed gap
    /// (setup + spill cleanup) stays small.
    #[test]
    fn prop_phase_times_sum_to_job_seconds(
        docs in proptest::collection::vec((any::<u64>(), "[a-c ]{0,10}"), 1..50),
        shards in 1usize..4,
        workers in 1usize..4,
    ) {
        let docs: Vec<WordRec> = docs;
        let dir = tempfile::tempdir().unwrap();
        let input = write_input(dir.path(), shards, &docs);
        let output = ShardSpec::new(dir.path(), "out", 2);
        let stats = map_reduce(
            &input, &output, dir.path(),
            &JobConfig::new("phase-sum").with_workers(workers),
            |(_, t): WordRec, emit: &mut dyn FnMut(String, i64)| {
                for w in t.split_whitespace() {
                    emit(w.to_owned(), 1);
                }
                Ok(())
            },
            None::<fn(&String, Vec<i64>) -> i64>,
            |k: &String, vs: Vec<i64>, sink: CountSink<'_>| {
                sink(&(k.clone(), vs.into_iter().sum()))
            },
        ).unwrap();
        let phase_sum: f64 = stats.phases.iter().map(|p| p.seconds).sum();
        prop_assert!(phase_sum <= stats.seconds + 1e-9,
            "phases {phase_sum} exceed total {}", stats.seconds);
        // The gap not covered by a phase is bounded: spill cleanup on a
        // handful of tiny files takes well under a second.
        prop_assert!(stats.seconds - phase_sum < 1.0,
            "unattributed gap too large: {} vs {}", phase_sum, stats.seconds);
    }

    /// The distributed engine must agree with the reference fold for
    /// arbitrary inputs, shard counts, worker counts, and buffer sizes.
    #[test]
    fn prop_map_reduce_equals_reference(
        docs in proptest::collection::vec((any::<u64>(), "[a-d ]{0,12}"), 0..60),
        shards in 1usize..5,
        partitions in 1usize..4,
        workers in 1usize..5,
        spill in 1usize..40,
    ) {
        let docs: Vec<WordRec> = docs;
        let map = |(_, text): WordRec, emit: &mut dyn FnMut(String, i64)| {
            for w in text.split_whitespace() {
                emit(w.to_owned(), 1);
            }
            Ok(())
        };
        let reduce = |k: &String, vs: Vec<i64>, sink: CountSink<'_>| {
            sink(&(k.clone(), vs.into_iter().sum()))
        };
        let mut want: Vec<(String, i64)> = reference_map_reduce(&docs, map, reduce).unwrap();
        want.sort();

        let dir = tempfile::tempdir().unwrap();
        let input = write_input(dir.path(), shards, &docs);
        let output = ShardSpec::new(dir.path(), "out", partitions);
        let mut cfg = JobConfig::new("prop").with_workers(workers);
        cfg.spill_buffer = spill;
        map_reduce(
            &input, &output, dir.path(), &cfg, map,
            Some(|_k: &String, vs: Vec<i64>| vs.into_iter().sum::<i64>()),
            reduce,
        ).unwrap();
        let mut got: Vec<(String, i64)> = read_all(&output).unwrap();
        got.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prop_par_map_vec_matches_sequential(
        items in proptest::collection::vec(any::<i64>(), 0..300),
        workers in 1usize..9,
    ) {
        let out = par_map_vec(
            &items, workers,
            |_| Ok(()),
            |_s: &mut (), &x| Ok(x.wrapping_mul(3).wrapping_add(1)),
        ).unwrap();
        let want: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(3).wrapping_add(1)).collect();
        prop_assert_eq!(out, want);
    }
}

#[test]
fn busy_clock_excludes_queue_wait() {
    // One slow shard, two workers: the worker that never receives a task
    // spends the whole job blocked on the queue, and that wait must not
    // be charged as busy time.
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..10).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 1, &records);
    let output = input.derive("out");
    let cfg = JobConfig::new("lopsided")
        .with_workers(2)
        .with_fault_plan(FaultPlan::seeded(1).delay_task(FaultSite::Map, 0, 0, 25));
    let stats = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    )
    .unwrap();
    assert_eq!(stats.worker_busy.len(), 2);
    let zeroes = stats.worker_busy.iter().filter(|&&b| b == 0.0).count();
    assert_eq!(
        zeroes, 1,
        "idle worker must read exactly zero: {:?}",
        stats.worker_busy
    );
    let max = stats.worker_busy.iter().cloned().fold(0.0, f64::max);
    assert!(
        max >= 0.025,
        "busy worker absorbed the delay: {:?}",
        stats.worker_busy
    );
}

#[test]
fn map_reduce_with_more_workers_than_partitions() {
    let dir = tempfile::tempdir().unwrap();
    let docs: Vec<WordRec> = (0..60).map(|i| (i, format!("k{}", i % 4))).collect();
    let input = write_input(dir.path(), 3, &docs);
    let output = ShardSpec::new(dir.path(), "out", 1);
    let stats = map_reduce(
        &input,
        &output,
        dir.path(),
        &JobConfig::new("wide").with_workers(8),
        |(_, t): WordRec, emit: &mut dyn FnMut(String, i64)| {
            emit(t, 1);
            Ok(())
        },
        None::<fn(&String, Vec<i64>) -> i64>,
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.len() as i64)),
    )
    .unwrap();
    assert_eq!(stats.records_in, 60);
    assert_eq!(stats.records_out, 4);
    let got: Vec<(String, i64)> = read_all(&output).unwrap();
    assert_eq!(got.len(), 4);
}

#[test]
fn retry_recovers_from_transient_shard_fault() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..80).map(|i| (i, format!("doc {i}"))).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let cfg = JobConfig::new("flaky")
        .with_workers(2)
        .with_max_attempts(2)
        .with_retry_backoff_ms(0)
        .with_fault_plan(FaultPlan::seeded(7).fail_task(FaultSite::Map, 2, 0));
    let stats = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    )
    .unwrap();
    assert_eq!(stats.records_in, 80, "retried shard must count once");
    assert_eq!(stats.records_out, 80);
    assert_eq!(stats.counters.get("dataflow/retries"), 1);
    let mut back: Vec<WordRec> = read_all(&output).unwrap();
    back.sort();
    assert_eq!(back, records);
}

#[test]
fn retry_backoff_defers_on_the_queue_instead_of_sleeping_the_worker() {
    // One worker, a flaky shard with a visible backoff: the retried
    // task must come back as a not-before deferral (counted) rather
    // than the worker sleeping through the backoff, and the job must
    // still complete with every record intact.
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..80).map(|i| (i, format!("doc {i}"))).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let cfg = JobConfig::new("deferred")
        .with_workers(1)
        .with_max_attempts(2)
        .with_retry_backoff_ms(20)
        .with_fault_plan(FaultPlan::seeded(7).fail_task(FaultSite::Map, 0, 0));
    let stats = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    )
    .unwrap();
    assert_eq!(stats.records_in, 80);
    assert_eq!(stats.records_out, 80);
    assert_eq!(stats.counters.get("dataflow/retries"), 1);
    // Shard 0 fails first; its retry is stamped 20ms out while shards
    // 1-3 are still queued, so the single worker must hit the deferral
    // path at least once before the retry becomes due.
    assert!(
        stats.counters.get("dataflow/backoff_deferrals") > 0,
        "expected the not-yet-due retry to be requeued, got {:?}",
        stats.counters.get("dataflow/backoff_deferrals")
    );
    let mut back: Vec<WordRec> = read_all(&output).unwrap();
    back.sort();
    assert_eq!(back, records);
}

#[test]
fn fully_deferred_queue_parks_instead_of_spinning() {
    // Every shard fails its first attempt, so for a whole backoff
    // window (150ms here) the queue holds nothing but not-yet-due
    // retries. Workers must park until the earliest due instant rather
    // than cycling the queue on short naps — the old path burned one
    // deferral (and a wakeup) per millisecond per worker, several
    // hundred for this configuration. A parked worker pops each
    // deferred task at most once per queue cycle, so the count stays
    // within a few small cycles.
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..80).map(|i| (i, format!("doc {i}"))).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let plan = FaultPlan::seeded(11)
        .fail_task(FaultSite::Map, 0, 0)
        .fail_task(FaultSite::Map, 1, 0)
        .fail_task(FaultSite::Map, 2, 0)
        .fail_task(FaultSite::Map, 3, 0);
    let cfg = JobConfig::new("all-deferred")
        .with_workers(2)
        .with_max_attempts(2)
        .with_retry_backoff_ms(150)
        .with_fault_plan(plan);
    let started = std::time::Instant::now();
    let stats = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    )
    .unwrap();
    assert!(
        started.elapsed() >= std::time::Duration::from_millis(140),
        "retries must actually wait out the backoff"
    );
    assert_eq!(stats.records_in, 80);
    assert_eq!(stats.records_out, 80);
    assert_eq!(stats.counters.get("dataflow/retries"), 4);
    let deferrals = stats.counters.get("dataflow/backoff_deferrals");
    assert!(
        deferrals <= 64,
        "a fully-deferred queue must park, not poll: {deferrals} deferrals"
    );
    let mut back: Vec<WordRec> = read_all(&output).unwrap();
    back.sort();
    assert_eq!(back, records);
}

#[test]
fn exhausted_retries_fail_the_job() {
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..40).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 4, &records);
    let output = input.derive("out");
    let plan = FaultPlan::seeded(7)
        .fail_task(FaultSite::Map, 1, 0)
        .fail_task(FaultSite::Map, 1, 1)
        .fail_task(FaultSite::Map, 1, 2);
    let cfg = JobConfig::new("doomed")
        .with_workers(2)
        .with_max_attempts(3)
        .with_retry_backoff_ms(0)
        .with_fault_plan(plan);
    let result = par_map_shards(
        &input,
        &output,
        &cfg,
        |_ctx| Ok(()),
        |_s: &mut (), rec: WordRec, emit, _c: &mut CounterHandle| emit.emit(&rec),
    );
    assert!(
        matches!(result, Err(DataflowError::User(_))),
        "got {result:?}"
    );
}

#[test]
fn zero_skip_budget_is_fail_stop() {
    // With the default `skip_bad_record_budget = 0`, a bad record fails
    // the job exactly like the pre-retry engine did.
    let dir = tempfile::tempdir().unwrap();
    let records: Vec<WordRec> = (0..30).map(|i| (i, String::new())).collect();
    let input = write_input(dir.path(), 3, &records);
    let output = input.derive("out");
    let run = |budget: u64| {
        let cfg = JobConfig::new("budget")
            .with_workers(2)
            .with_skip_bad_record_budget(budget);
        par_map_shards(
            &input,
            &output,
            &cfg,
            |_ctx| Ok(()),
            |_s: &mut (), (k, v): WordRec, emit, _c: &mut CounterHandle| {
                if k == 17 {
                    return Err(DataflowError::user("bad record 17"));
                }
                emit.emit(&(k, v))
            },
        )
    };
    assert!(matches!(run(0), Err(DataflowError::User(_))));
    let stats = run(1).unwrap();
    assert_eq!(stats.records_out, 29);
    assert_eq!(stats.counters.get("dataflow/skipped_records"), 1);
}

#[test]
fn map_reduce_failure_cleans_spill_files() {
    let dir = tempfile::tempdir().unwrap();
    let docs: Vec<WordRec> = (0..40).map(|i| (i, format!("k{}", i % 3))).collect();
    let input = write_input(dir.path(), 4, &docs);
    let output = ShardSpec::new(dir.path(), "out", 2);
    let result = map_reduce(
        &input,
        &output,
        dir.path(),
        &JobConfig::new("failing").with_workers(2),
        |(k, t): WordRec, emit: &mut dyn FnMut(String, i64)| {
            if k == 25 {
                return Err(DataflowError::user("map blew up"));
            }
            emit(t, 1);
            Ok(())
        },
        None::<fn(&String, Vec<i64>) -> i64>,
        |k: &String, vs: Vec<i64>, sink: CountSink<'_>| sink(&(k.clone(), vs.len() as i64)),
    );
    assert!(result.is_err());
    let leftover = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("spill-"))
        .count();
    assert_eq!(leftover, 0, "failed jobs must not leak spill files");
}

#[test]
fn zero_max_attempts_is_clamped_to_one() {
    let cfg = JobConfig::new("clamped").with_max_attempts(0);
    assert_eq!(cfg.max_attempts, 1);
}

/// `Record` impl sanity for the key types the engine shuffles.
#[test]
fn shuffle_key_roundtrip() {
    let mut buf = Vec::new();
    ("key".to_string(), 42i64).encode(&mut buf);
    let mut s = buf.as_slice();
    let back = <(String, i64)>::decode(&mut s).unwrap();
    assert_eq!(back, ("key".to_string(), 42));
}
