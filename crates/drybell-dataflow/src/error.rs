//! Error types for the dataflow substrate.

use crate::codec::CodecError;
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors surfaced by shard I/O and job execution.
#[derive(Debug)]
pub enum DataflowError {
    /// Filesystem error touching a shard or spill file.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A shard file failed checksum or decode validation.
    Corrupt {
        /// File containing the bad frame.
        path: PathBuf,
        /// The codec-level failure.
        source: CodecError,
    },
    /// A worker thread panicked; the job was aborted.
    WorkerPanicked {
        /// Index of the worker that died.
        worker: usize,
        /// Panic payload rendered as text, when available.
        message: String,
    },
    /// A user map/reduce/init function returned an error.
    User(String),
    /// The job was misconfigured (e.g. mismatched shard counts).
    BadJob(String),
    /// An engine-internal invariant failed (a broken work queue, a
    /// partition index out of range). These indicate bugs in the
    /// dataflow substrate itself, not in user code or input data.
    Internal(String),
}

impl DataflowError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> DataflowError {
        DataflowError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, source: CodecError) -> DataflowError {
        DataflowError::Corrupt {
            path: path.to_path_buf(),
            source,
        }
    }

    /// Wrap an application-level failure from inside a user function.
    pub fn user(msg: impl Into<String>) -> DataflowError {
        DataflowError::User(msg.into())
    }

    /// Wrap a broken engine invariant.
    pub(crate) fn internal(msg: impl Into<String>) -> DataflowError {
        DataflowError::Internal(msg.into())
    }
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            DataflowError::Corrupt { path, source } => {
                write!(f, "corrupt shard {}: {source}", path.display())
            }
            DataflowError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            DataflowError::User(msg) => write!(f, "user function failed: {msg}"),
            DataflowError::BadJob(msg) => write!(f, "bad job configuration: {msg}"),
            DataflowError::Internal(msg) => write!(f, "internal dataflow error: {msg}"),
        }
    }
}

impl std::error::Error for DataflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataflowError::Io { source, .. } => Some(source),
            DataflowError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_path() {
        let e = DataflowError::io(
            Path::new("/data/x.rec"),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/data/x.rec"));
        let e = DataflowError::WorkerPanicked {
            worker: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("worker 3"));
    }
}
