//! Named job counters, in the spirit of MapReduce counters.
//!
//! Workers increment counters cheaply through a [`CounterHandle`]; the
//! engine merges per-worker tallies into a [`CounterSnapshot`] attached to
//! the job's final stats. Counters are how LF pipelines report vote
//! distributions, service cache hits, skipped records, etc. without
//! funneling everything through return values.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared counter registry for one job.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    inner: Arc<Mutex<HashMap<String, u64>>>,
}

impl Counters {
    /// Create an empty registry.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Add `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, n: u64) {
        let mut map = self.inner.lock();
        // Fast path avoids allocating a String for names already present
        // (the common case on per-record paths).
        if let Some(slot) = map.get_mut(name) {
            *slot += n;
        } else {
            map.insert(name.to_owned(), n);
        }
    }

    /// Increment the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot all counters, sorted by name.
    pub fn snapshot(&self) -> CounterSnapshot {
        let map = self.inner.lock();
        let mut entries: Vec<(String, u64)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort();
        CounterSnapshot { entries }
    }

    /// Merge a local tally into the registry in one lock acquisition.
    pub fn merge(&self, local: &HashMap<String, u64>) {
        let mut map = self.inner.lock();
        // drybell-lint: allow(determinism) — addition commutes; visit order cannot affect the merged totals
        for (k, v) in local {
            *map.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// A worker-local counter buffer that batches increments and flushes them
/// to the shared [`Counters`] on drop (avoiding per-record lock traffic).
pub struct CounterHandle {
    shared: Counters,
    local: HashMap<String, u64>,
}

impl CounterHandle {
    /// Create a handle feeding `shared`.
    pub fn new(shared: Counters) -> CounterHandle {
        CounterHandle {
            shared,
            local: HashMap::new(),
        }
    }

    /// Add `n` to the local tally of `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        // Fast path: the counter usually already exists locally.
        if let Some(slot) = self.local.get_mut(name) {
            *slot += n;
        } else {
            self.local.insert(name.to_owned(), n);
        }
    }

    /// Increment the local tally by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The shared registry this handle flushes into — for sideband
    /// reporters (e.g. a worker's cache stats on shutdown) that need to
    /// merge totals outside the per-record path.
    pub fn shared(&self) -> &Counters {
        &self.shared
    }

    /// Flush the local tally into the shared registry immediately.
    pub fn flush(&mut self) {
        if !self.local.is_empty() {
            self.shared.merge(&self.local);
            self.local.clear();
        }
    }
}

impl Drop for CounterHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

/// An immutable, sorted snapshot of the counters after a job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    entries: Vec<(String, u64)>,
}

impl CounterSnapshot {
    /// Counter value by name (zero if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map_or(0, |(_, v)| *v)
    }

    /// Add `n` to `name`, inserting at zero if absent and keeping the
    /// entries sorted. For post-job sideband totals (e.g. a shared NLP
    /// cache's final stats joining the job's counters).
    pub fn add(&mut self, name: &str, n: u64) {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => {
                if let Some(entry) = self.entries.get_mut(i) {
                    entry.1 += n;
                }
            }
            Err(i) => self.entries.insert(i, (name.to_owned(), n)),
        }
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.inc("a");
        c.add("a", 4);
        c.inc("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        assert_eq!(snap.get("a"), 5);
        assert_eq!(snap.entries().len(), 2);
        // Sorted order.
        assert_eq!(snap.entries()[0].0, "a");
    }

    #[test]
    fn snapshot_add_inserts_sorted() {
        let c = Counters::new();
        c.add("b", 2);
        let mut snap = c.snapshot();
        snap.add("b", 3);
        snap.add("a", 1);
        snap.add("z", 9);
        assert_eq!(snap.get("a"), 1);
        assert_eq!(snap.get("b"), 5);
        assert_eq!(snap.get("z"), 9);
        let names: Vec<&str> = snap.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["a", "b", "z"]);
    }

    #[test]
    fn handle_batches_and_flushes_on_drop() {
        let c = Counters::new();
        {
            let mut h = CounterHandle::new(c.clone());
            h.inc("x");
            h.add("x", 9);
            // Not yet visible.
            assert_eq!(c.get("x"), 0);
        }
        assert_eq!(c.get("x"), 10);
    }

    #[test]
    fn concurrent_merges_are_lossless() {
        // Workers flushing disjoint and overlapping names through
        // `merge` must never drop or double-count a tally.
        let c = Counters::new();
        thread::scope(|s| {
            for w in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for round in 0..50 {
                        let mut local = HashMap::new();
                        local.insert("shared".to_string(), 1u64);
                        local.insert(format!("worker/{w}"), 2u64);
                        if round % 2 == 0 {
                            local.insert("even_rounds".to_string(), 1u64);
                        }
                        c.merge(&local);
                    }
                });
            }
        });
        assert_eq!(c.get("shared"), 8 * 50);
        assert_eq!(c.get("even_rounds"), 8 * 25);
        for w in 0..8 {
            assert_eq!(c.get(&format!("worker/{w}")), 100);
        }
    }

    #[test]
    fn handle_explicit_flush_then_drop_does_not_double_count() {
        let c = Counters::new();
        {
            let mut h = CounterHandle::new(c.clone());
            h.add("x", 3);
            h.flush();
            assert_eq!(c.get("x"), 3);
            h.inc("x");
            assert_eq!(h.shared().get("x"), 3);
        }
        // Drop flushes only the post-flush increment.
        assert_eq!(c.get("x"), 4);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Counters::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    let mut h = CounterHandle::new(c);
                    for _ in 0..1000 {
                        h.inc("hits");
                    }
                });
            }
        });
        assert_eq!(c.get("hits"), 8000);
    }
}
