//! Sharded record files — the stand-in for Google's distributed filesystem.
//!
//! A *sharded dataset* is a directory holding `N` shard files named
//! `name-00007-of-00032.rec`, each a sequence of checksummed frames (see
//! [`crate::codec`]). Labeling-function binaries in the paper communicate
//! exclusively through such files ("labeling functions are independent
//! executables that use a distributed filesystem to share data", §5.4);
//! here they are the interchange format between pipeline stages.

use crate::codec::{self, CodecError, Record};
use crate::error::DataflowError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// Identifies a sharded dataset: a directory, a base name, and a shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    dir: PathBuf,
    name: String,
    num_shards: usize,
}

impl ShardSpec {
    /// Create a spec. `num_shards` must be at least 1.
    pub fn new(dir: impl Into<PathBuf>, name: impl Into<String>, num_shards: usize) -> ShardSpec {
        assert!(num_shards >= 1, "a dataset needs at least one shard");
        ShardSpec {
            dir: dir.into(),
            name: name.into(),
            num_shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Base name of the dataset.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `i` (`name-0000i-of-0000N.rec`).
    pub fn shard_path(&self, i: usize) -> PathBuf {
        assert!(i < self.num_shards, "shard index out of range");
        self.dir.join(format!(
            "{}-{:05}-of-{:05}.rec",
            self.name, i, self.num_shards
        ))
    }

    /// A sibling spec with the same directory and shard count but a new name
    /// (pipeline stages conventionally write next to their input).
    pub fn derive(&self, name: impl Into<String>) -> ShardSpec {
        ShardSpec {
            dir: self.dir.clone(),
            name: name.into(),
            num_shards: self.num_shards,
        }
    }

    /// `true` if every shard file exists on disk.
    ///
    /// Because [`ShardWriter`] only ever creates the final path via an
    /// atomic rename on commit, a file being present implies it was
    /// written to completion; use [`ShardSpec::is_complete`] to also
    /// verify the commit footers (defense against out-of-band writes).
    pub fn exists(&self) -> bool {
        (0..self.num_shards).all(|i| self.shard_path(i).exists())
    }

    /// `true` if every shard file exists *and* carries a valid commit
    /// footer — the strong form of [`ShardSpec::exists`].
    pub fn is_complete(&self) -> bool {
        (0..self.num_shards).all(|i| shard_is_committed(&self.shard_path(i)))
    }

    /// Delete all shard files (ignores missing ones), including any
    /// orphaned `.tmp` siblings from interrupted writers.
    pub fn remove(&self) -> Result<(), DataflowError> {
        for i in 0..self.num_shards {
            let final_path = self.shard_path(i);
            for p in [tmp_sibling(&final_path), final_path] {
                if p.exists() {
                    fs::remove_file(&p).map_err(|e| DataflowError::io(&p, e))?;
                }
            }
        }
        Ok(())
    }
}

/// The `.tmp` sibling a [`ShardWriter`] stages its output in before the
/// commit rename.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Whether the file at `path` exists and ends in a valid commit footer.
pub(crate) fn shard_is_committed(path: &Path) -> bool {
    let Ok(bytes) = fs::read(path) else {
        return false;
    };
    codec::split_footer(&bytes).is_ok()
}

/// Buffered writer for one shard file, with atomic commit.
///
/// Output is staged in a `.tmp` sibling and only renamed onto the final
/// path by [`ShardWriter::finish`], after a commit footer (record count
/// and checksum, see [`codec::put_footer`]) has been appended. A reader
/// therefore either sees no file at all or a byte-complete committed
/// one — never the flushed prefix of an interrupted job — and retrying
/// an aborted shard just truncates the `.tmp` stage and rewrites it,
/// making shard attempts idempotent. Dropping a writer without calling
/// `finish` removes the stage file.
pub struct ShardWriter<R: Record> {
    out: Option<BufWriter<File>>,
    path: PathBuf,
    tmp_path: PathBuf,
    scratch: Vec<u8>,
    frame: Vec<u8>,
    records: u64,
    bytes: u64,
    committed: bool,
    _marker: PhantomData<fn(&R)>,
}

impl<R: Record> ShardWriter<R> {
    /// Create the shard writer for `path`, staging into its `.tmp`
    /// sibling. The final path is not touched until [`finish`].
    ///
    /// [`finish`]: ShardWriter::finish
    pub fn create(path: &Path) -> Result<ShardWriter<R>, DataflowError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| DataflowError::io(parent, e))?;
        }
        let tmp_path = tmp_sibling(path);
        let file = File::create(&tmp_path).map_err(|e| DataflowError::io(&tmp_path, e))?;
        Ok(ShardWriter {
            out: Some(BufWriter::new(file)),
            path: path.to_path_buf(),
            tmp_path,
            scratch: Vec::new(),
            frame: Vec::new(),
            records: 0,
            bytes: 0,
            committed: false,
            _marker: PhantomData,
        })
    }

    /// Append one record.
    pub fn write(&mut self, record: &R) -> Result<(), DataflowError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        self.frame.clear();
        codec::put_frame(&mut self.frame, &self.scratch);
        self.out
            .as_mut()
            .ok_or_else(|| DataflowError::internal("write after shard writer closed"))?
            .write_all(&self.frame)
            .map_err(|e| DataflowError::io(&self.tmp_path, e))?;
        self.records += 1;
        self.bytes += self.frame.len() as u64;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Framed bytes written so far (spill accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Commit the shard: append the record-count footer, flush, and
    /// atomically rename the stage file onto the final path.
    pub fn finish(mut self) -> Result<u64, DataflowError> {
        let mut footer = Vec::with_capacity(codec::FOOTER_LEN);
        codec::put_footer(&mut footer, self.records);
        let out = self
            .out
            .as_mut()
            .ok_or_else(|| DataflowError::internal("finish after shard writer closed"))?;
        out.write_all(&footer)
            .map_err(|e| DataflowError::io(&self.tmp_path, e))?;
        out.flush()
            .map_err(|e| DataflowError::io(&self.tmp_path, e))?;
        // Close the file handle before the rename.
        self.out = None;
        fs::rename(&self.tmp_path, &self.path).map_err(|e| DataflowError::io(&self.path, e))?;
        self.committed = true;
        Ok(self.records)
    }
}

impl<R: Record> Drop for ShardWriter<R> {
    fn drop(&mut self) {
        if !self.committed {
            // Abandoned attempt: close and discard the stage file so a
            // retry (or a later cleanup pass) finds no leftovers.
            self.out = None;
            let _ = fs::remove_file(&self.tmp_path);
        }
    }
}

/// A set of shard writers distributing records round-robin or by key hash.
pub struct ShardWriterSet<R: Record> {
    writers: Vec<ShardWriter<R>>,
    next: usize,
}

impl<R: Record> ShardWriterSet<R> {
    /// Create writers for every shard in the spec.
    pub fn create(spec: &ShardSpec) -> Result<ShardWriterSet<R>, DataflowError> {
        let writers = (0..spec.num_shards())
            .map(|i| ShardWriter::create(&spec.shard_path(i)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardWriterSet { writers, next: 0 })
    }

    /// Append a record to the next shard, round-robin.
    pub fn write(&mut self, record: &R) -> Result<(), DataflowError> {
        let i = self.next;
        self.next = (self.next + 1) % self.writers.len();
        self.writers
            .get_mut(i)
            .ok_or_else(|| DataflowError::internal("round-robin shard index out of range"))?
            .write(record)
    }

    /// Append a record to the shard owning `hash` (stable partitioning).
    pub fn write_hashed(&mut self, record: &R, hash: u64) -> Result<(), DataflowError> {
        let i = (hash % self.writers.len() as u64) as usize;
        self.writers
            .get_mut(i)
            .ok_or_else(|| DataflowError::internal("hashed shard index out of range"))?
            .write(record)
    }

    /// Flush and close all shards, returning total records written.
    pub fn finish(self) -> Result<u64, DataflowError> {
        let mut total = 0;
        for w in self.writers {
            total += w.finish()?;
        }
        Ok(total)
    }
}

/// Iterator over the records of one shard file.
pub struct ShardReader<R: Record> {
    buf: Vec<u8>,
    pos: usize,
    /// End of the frame region (the commit footer starts here).
    end: usize,
    /// Record count promised by the commit footer.
    expected: u64,
    /// Records decoded so far.
    seen: u64,
    /// Set after exhaustion or a decode error, so iteration terminates.
    done: bool,
    path: PathBuf,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> ShardReader<R> {
    /// Open and fully buffer the shard at `path`, validating its commit
    /// footer. Files without a valid footer — the flushed prefix of an
    /// interrupted writer, or a truncated copy — are rejected as
    /// [`DataflowError::Corrupt`] before any record is surfaced.
    ///
    /// Shards are sized to be read whole (the paper's pipelines stream
    /// shard-at-a-time per worker); buffering keeps decode zero-copy.
    pub fn open(path: &Path) -> Result<ShardReader<R>, DataflowError> {
        let file = File::open(path).map_err(|e| DataflowError::io(path, e))?;
        let mut reader = BufReader::new(file);
        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .map_err(|e| DataflowError::io(path, e))?;
        let (end, expected) = {
            let (frames, count) =
                codec::split_footer(&buf).map_err(|e| DataflowError::corrupt(path, e))?;
            (frames.len(), count)
        };
        Ok(ShardReader {
            buf,
            pos: 0,
            end,
            expected,
            seen: 0,
            done: false,
            path: path.to_path_buf(),
            _marker: PhantomData,
        })
    }

    fn next_record(&mut self) -> Result<Option<R>, DataflowError> {
        if self.done {
            return Ok(None);
        }
        let Some(mut slice) = self.buf.get(self.pos..self.end).filter(|s| !s.is_empty()) else {
            self.done = true;
            if self.seen != self.expected {
                return Err(DataflowError::corrupt(
                    &self.path,
                    CodecError::RecordCountMismatch {
                        expected: self.expected,
                        actual: self.seen,
                    },
                ));
            }
            return Ok(None);
        };
        let before = slice.len();
        let result = (|| {
            let payload =
                codec::get_frame(&mut slice).map_err(|e| DataflowError::corrupt(&self.path, e))?;
            let mut p = payload;
            let record = R::decode(&mut p).map_err(|e| DataflowError::corrupt(&self.path, e))?;
            if !p.is_empty() {
                return Err(DataflowError::corrupt(
                    &self.path,
                    CodecError::TrailingBytes(p.len()),
                ));
            }
            Ok(record)
        })();
        match result {
            Ok(record) => {
                self.pos += before - slice.len();
                self.seen += 1;
                Ok(Some(record))
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }
}

impl<R: Record> Iterator for ShardReader<R> {
    type Item = Result<R, DataflowError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Read every record of every shard into memory (test/tool convenience).
pub fn read_all<R: Record>(spec: &ShardSpec) -> Result<Vec<R>, DataflowError> {
    let mut out = Vec::new();
    for i in 0..spec.num_shards() {
        for rec in ShardReader::<R>::open(&spec.shard_path(i))? {
            out.push(rec?);
        }
    }
    Ok(out)
}

/// Write `records` across the spec's shards round-robin.
pub fn write_all<R: Record>(spec: &ShardSpec, records: &[R]) -> Result<u64, DataflowError> {
    let mut set = ShardWriterSet::create(spec)?;
    for r in records {
        set.write(r)?;
    }
    set.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_paths_are_stable() {
        let spec = ShardSpec::new("/tmp/x", "docs", 32);
        assert_eq!(
            spec.shard_path(7).file_name().unwrap().to_str().unwrap(),
            "docs-00007-of-00032.rec"
        );
        assert_eq!(spec.num_shards(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardSpec::new("/tmp/x", "docs", 0);
    }

    #[test]
    fn roundtrip_across_shards() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "nums", 4);
        let records: Vec<(u64, String)> = (0..103).map(|i| (i, format!("record-{i}"))).collect();
        let written = write_all(&spec, &records).unwrap();
        assert_eq!(written, 103);
        assert!(spec.exists());
        let mut back: Vec<(u64, String)> = read_all(&spec).unwrap();
        back.sort();
        assert_eq!(back, records);
    }

    #[test]
    fn hashed_writes_are_stable_partitions() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "keyed", 3);
        let mut set = ShardWriterSet::<(u64, String)>::create(&spec).unwrap();
        for i in 0..30u64 {
            set.write_hashed(&(i, format!("v{i}")), i).unwrap();
        }
        set.finish().unwrap();
        // Shard s must contain exactly the keys ≡ s (mod 3).
        for s in 0..3 {
            for rec in ShardReader::<(u64, String)>::open(&spec.shard_path(s)).unwrap() {
                let (k, _) = rec.unwrap();
                assert_eq!(k % 3, s as u64);
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "bad", 1);
        write_all(&spec, &[(1u64, "hello".to_string())]).unwrap();
        // Corrupt the last payload byte (just before the commit footer).
        let path = spec.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - codec::FOOTER_LEN - 1;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Corrupt { .. })));
        // Corrupting the footer itself is also caught.
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 1;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Corrupt { .. })));
    }

    #[test]
    fn uncommitted_writer_leaves_no_files() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "torn", 1);
        let path = spec.shard_path(0);
        {
            let mut w = ShardWriter::<(u64, String)>::create(&path).unwrap();
            w.write(&(1, "flushed but never committed".into())).unwrap();
            // Dropped without finish(): simulates a killed job.
        }
        assert!(!path.exists(), "final path must not appear without commit");
        assert!(!spec.exists());
        assert!(!spec.is_complete());
        let leftovers: Vec<_> = fs::read_dir(dir.path()).unwrap().collect();
        assert!(leftovers.is_empty(), "stage file must be cleaned up");
    }

    #[test]
    fn torn_wellframed_prefix_is_rejected() {
        // A file of perfectly valid frames but no commit footer — exactly
        // what the pre-atomic-commit writer left behind when a job died
        // after a flush — must not be readable as a (truncated) dataset.
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "prefix", 1);
        let mut bytes = Vec::new();
        for i in 0..5u64 {
            let mut payload = Vec::new();
            (i, format!("rec-{i}")).encode(&mut payload);
            codec::put_frame(&mut bytes, &payload);
        }
        fs::write(spec.shard_path(0), &bytes).unwrap();
        assert!(spec.exists(), "the raw file is present");
        assert!(!spec.is_complete(), "but it is not committed");
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        match result {
            Err(DataflowError::Corrupt { source, .. }) => {
                assert_eq!(source, CodecError::MissingFooter);
            }
            other => panic!("expected MissingFooter, got {other:?}"),
        }
    }

    #[test]
    fn truncated_committed_file_is_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "trunc", 1);
        let records: Vec<(u64, String)> = (0..20).map(|i| (i, format!("record-{i}"))).collect();
        write_all(&spec, &records).unwrap();
        let path = spec.shard_path(0);
        let bytes = fs::read(&path).unwrap();
        // Chop off the tail: the footer (and part of the last frame) go.
        fs::write(&path, &bytes[..bytes.len() - codec::FOOTER_LEN - 3]).unwrap();
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Corrupt { .. })));
    }

    #[test]
    fn footer_count_mismatch_is_rejected() {
        // A footer that checksums fine but promises more records than the
        // frames hold (e.g. frames dropped by a buggy copy).
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "count", 1);
        write_all(&spec, &[(1u64, "only one".to_string())]).unwrap();
        let path = spec.shard_path(0);
        let bytes = fs::read(&path).unwrap();
        let mut patched = bytes[..bytes.len() - codec::FOOTER_LEN].to_vec();
        codec::put_footer(&mut patched, 2);
        fs::write(&path, &patched).unwrap();
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        match result {
            Err(DataflowError::Corrupt { source, .. }) => {
                assert_eq!(
                    source,
                    CodecError::RecordCountMismatch {
                        expected: 2,
                        actual: 1
                    }
                );
            }
            other => panic!("expected RecordCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn is_complete_accepts_committed_datasets() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "ok", 3);
        write_all(&spec, &[(1u64, "x".to_string()), (2, "y".to_string())]).unwrap();
        assert!(spec.exists());
        assert!(spec.is_complete());
    }

    #[test]
    fn remove_cleans_stale_tmp_files() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "stale", 1);
        write_all(&spec, &[(1u64, "x".to_string())]).unwrap();
        // Simulate a crashed writer's leftover stage file.
        let tmp = tmp_sibling(&spec.shard_path(0));
        fs::write(&tmp, b"garbage").unwrap();
        spec.remove().unwrap();
        assert!(!spec.shard_path(0).exists());
        assert!(!tmp.exists());
    }

    #[test]
    fn missing_shard_is_io_error() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "ghost", 2);
        assert!(!spec.exists());
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Io { .. })));
    }

    #[test]
    fn remove_deletes_shards() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "tmp", 2);
        write_all(&spec, &[(1u64, "x".to_string())]).unwrap();
        assert!(spec.exists());
        spec.remove().unwrap();
        assert!(!spec.exists());
        // Removing again is fine.
        spec.remove().unwrap();
    }

    #[test]
    fn empty_dataset_reads_empty() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "empty", 3);
        write_all::<(u64, String)>(&spec, &[]).unwrap();
        let back: Vec<(u64, String)> = read_all(&spec).unwrap();
        assert!(back.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip_any_records(
            records in proptest::collection::vec((any::<u64>(), ".{0,40}"), 0..200),
            shards in 1usize..8,
        ) {
            let dir = tempfile::tempdir().unwrap();
            let spec = ShardSpec::new(dir.path(), "prop", shards);
            write_all(&spec, &records).unwrap();
            let mut back: Vec<(u64, String)> = read_all(&spec).unwrap();
            let mut want = records.clone();
            back.sort();
            want.sort();
            prop_assert_eq!(back, want);
        }
    }
}
