//! Sharded record files — the stand-in for Google's distributed filesystem.
//!
//! A *sharded dataset* is a directory holding `N` shard files named
//! `name-00007-of-00032.rec`, each a sequence of checksummed frames (see
//! [`crate::codec`]). Labeling-function binaries in the paper communicate
//! exclusively through such files ("labeling functions are independent
//! executables that use a distributed filesystem to share data", §5.4);
//! here they are the interchange format between pipeline stages.

use crate::codec::{self, CodecError, Record};
use crate::error::DataflowError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// Identifies a sharded dataset: a directory, a base name, and a shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    dir: PathBuf,
    name: String,
    num_shards: usize,
}

impl ShardSpec {
    /// Create a spec. `num_shards` must be at least 1.
    pub fn new(dir: impl Into<PathBuf>, name: impl Into<String>, num_shards: usize) -> ShardSpec {
        assert!(num_shards >= 1, "a dataset needs at least one shard");
        ShardSpec {
            dir: dir.into(),
            name: name.into(),
            num_shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Base name of the dataset.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `i` (`name-0000i-of-0000N.rec`).
    pub fn shard_path(&self, i: usize) -> PathBuf {
        assert!(i < self.num_shards, "shard index out of range");
        self.dir.join(format!(
            "{}-{:05}-of-{:05}.rec",
            self.name, i, self.num_shards
        ))
    }

    /// A sibling spec with the same directory and shard count but a new name
    /// (pipeline stages conventionally write next to their input).
    pub fn derive(&self, name: impl Into<String>) -> ShardSpec {
        ShardSpec {
            dir: self.dir.clone(),
            name: name.into(),
            num_shards: self.num_shards,
        }
    }

    /// `true` if every shard file exists on disk.
    pub fn exists(&self) -> bool {
        (0..self.num_shards).all(|i| self.shard_path(i).exists())
    }

    /// Delete all shard files (ignores missing ones).
    pub fn remove(&self) -> Result<(), DataflowError> {
        for i in 0..self.num_shards {
            let p = self.shard_path(i);
            if p.exists() {
                fs::remove_file(&p).map_err(|e| DataflowError::io(&p, e))?;
            }
        }
        Ok(())
    }
}

/// Buffered writer for one shard file.
pub struct ShardWriter<R: Record> {
    out: BufWriter<File>,
    path: PathBuf,
    scratch: Vec<u8>,
    frame: Vec<u8>,
    records: u64,
    bytes: u64,
    _marker: PhantomData<fn(&R)>,
}

impl<R: Record> ShardWriter<R> {
    /// Create (truncating) the shard file at `path`.
    pub fn create(path: &Path) -> Result<ShardWriter<R>, DataflowError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| DataflowError::io(parent, e))?;
        }
        let file = File::create(path).map_err(|e| DataflowError::io(path, e))?;
        Ok(ShardWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            scratch: Vec::new(),
            frame: Vec::new(),
            records: 0,
            bytes: 0,
            _marker: PhantomData,
        })
    }

    /// Append one record.
    pub fn write(&mut self, record: &R) -> Result<(), DataflowError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        self.frame.clear();
        codec::put_frame(&mut self.frame, &self.scratch);
        self.out
            .write_all(&self.frame)
            .map_err(|e| DataflowError::io(&self.path, e))?;
        self.records += 1;
        self.bytes += self.frame.len() as u64;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Framed bytes written so far (spill accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flush and close the file.
    pub fn finish(mut self) -> Result<u64, DataflowError> {
        self.out
            .flush()
            .map_err(|e| DataflowError::io(&self.path, e))?;
        Ok(self.records)
    }
}

/// A set of shard writers distributing records round-robin or by key hash.
pub struct ShardWriterSet<R: Record> {
    writers: Vec<ShardWriter<R>>,
    next: usize,
}

impl<R: Record> ShardWriterSet<R> {
    /// Create writers for every shard in the spec.
    pub fn create(spec: &ShardSpec) -> Result<ShardWriterSet<R>, DataflowError> {
        let writers = (0..spec.num_shards())
            .map(|i| ShardWriter::create(&spec.shard_path(i)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardWriterSet { writers, next: 0 })
    }

    /// Append a record to the next shard, round-robin.
    pub fn write(&mut self, record: &R) -> Result<(), DataflowError> {
        let i = self.next;
        self.next = (self.next + 1) % self.writers.len();
        self.writers
            .get_mut(i)
            .ok_or_else(|| DataflowError::internal("round-robin shard index out of range"))?
            .write(record)
    }

    /// Append a record to the shard owning `hash` (stable partitioning).
    pub fn write_hashed(&mut self, record: &R, hash: u64) -> Result<(), DataflowError> {
        let i = (hash % self.writers.len() as u64) as usize;
        self.writers
            .get_mut(i)
            .ok_or_else(|| DataflowError::internal("hashed shard index out of range"))?
            .write(record)
    }

    /// Flush and close all shards, returning total records written.
    pub fn finish(self) -> Result<u64, DataflowError> {
        let mut total = 0;
        for w in self.writers {
            total += w.finish()?;
        }
        Ok(total)
    }
}

/// Iterator over the records of one shard file.
pub struct ShardReader<R: Record> {
    buf: Vec<u8>,
    pos: usize,
    path: PathBuf,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> ShardReader<R> {
    /// Open and fully buffer the shard at `path`.
    ///
    /// Shards are sized to be read whole (the paper's pipelines stream
    /// shard-at-a-time per worker); buffering keeps decode zero-copy.
    pub fn open(path: &Path) -> Result<ShardReader<R>, DataflowError> {
        let file = File::open(path).map_err(|e| DataflowError::io(path, e))?;
        let mut reader = BufReader::new(file);
        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .map_err(|e| DataflowError::io(path, e))?;
        Ok(ShardReader {
            buf,
            pos: 0,
            path: path.to_path_buf(),
            _marker: PhantomData,
        })
    }

    fn next_record(&mut self) -> Result<Option<R>, DataflowError> {
        let Some(mut slice) = self.buf.get(self.pos..).filter(|s| !s.is_empty()) else {
            return Ok(None);
        };
        let before = slice.len();
        let payload =
            codec::get_frame(&mut slice).map_err(|e| DataflowError::corrupt(&self.path, e))?;
        let mut p = payload;
        let record = R::decode(&mut p).map_err(|e| DataflowError::corrupt(&self.path, e))?;
        if !p.is_empty() {
            return Err(DataflowError::corrupt(
                &self.path,
                CodecError::TrailingBytes(p.len()),
            ));
        }
        self.pos += before - slice.len();
        Ok(Some(record))
    }
}

impl<R: Record> Iterator for ShardReader<R> {
    type Item = Result<R, DataflowError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Read every record of every shard into memory (test/tool convenience).
pub fn read_all<R: Record>(spec: &ShardSpec) -> Result<Vec<R>, DataflowError> {
    let mut out = Vec::new();
    for i in 0..spec.num_shards() {
        for rec in ShardReader::<R>::open(&spec.shard_path(i))? {
            out.push(rec?);
        }
    }
    Ok(out)
}

/// Write `records` across the spec's shards round-robin.
pub fn write_all<R: Record>(spec: &ShardSpec, records: &[R]) -> Result<u64, DataflowError> {
    let mut set = ShardWriterSet::create(spec)?;
    for r in records {
        set.write(r)?;
    }
    set.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_paths_are_stable() {
        let spec = ShardSpec::new("/tmp/x", "docs", 32);
        assert_eq!(
            spec.shard_path(7).file_name().unwrap().to_str().unwrap(),
            "docs-00007-of-00032.rec"
        );
        assert_eq!(spec.num_shards(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardSpec::new("/tmp/x", "docs", 0);
    }

    #[test]
    fn roundtrip_across_shards() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "nums", 4);
        let records: Vec<(u64, String)> = (0..103).map(|i| (i, format!("record-{i}"))).collect();
        let written = write_all(&spec, &records).unwrap();
        assert_eq!(written, 103);
        assert!(spec.exists());
        let mut back: Vec<(u64, String)> = read_all(&spec).unwrap();
        back.sort();
        assert_eq!(back, records);
    }

    #[test]
    fn hashed_writes_are_stable_partitions() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "keyed", 3);
        let mut set = ShardWriterSet::<(u64, String)>::create(&spec).unwrap();
        for i in 0..30u64 {
            set.write_hashed(&(i, format!("v{i}")), i).unwrap();
        }
        set.finish().unwrap();
        // Shard s must contain exactly the keys ≡ s (mod 3).
        for s in 0..3 {
            for rec in ShardReader::<(u64, String)>::open(&spec.shard_path(s)).unwrap() {
                let (k, _) = rec.unwrap();
                assert_eq!(k % 3, s as u64);
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "bad", 1);
        write_all(&spec, &[(1u64, "hello".to_string())]).unwrap();
        // Corrupt a byte near the end of the file (inside the payload).
        let path = spec.shard_path(0);
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 1;
        bytes[idx] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Corrupt { .. })));
    }

    #[test]
    fn missing_shard_is_io_error() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "ghost", 2);
        assert!(!spec.exists());
        let result: Result<Vec<(u64, String)>, _> = read_all(&spec);
        assert!(matches!(result, Err(DataflowError::Io { .. })));
    }

    #[test]
    fn remove_deletes_shards() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "tmp", 2);
        write_all(&spec, &[(1u64, "x".to_string())]).unwrap();
        assert!(spec.exists());
        spec.remove().unwrap();
        assert!(!spec.exists());
        // Removing again is fine.
        spec.remove().unwrap();
    }

    #[test]
    fn empty_dataset_reads_empty() {
        let dir = tempfile::tempdir().unwrap();
        let spec = ShardSpec::new(dir.path(), "empty", 3);
        write_all::<(u64, String)>(&spec, &[]).unwrap();
        let back: Vec<(u64, String)> = read_all(&spec).unwrap();
        assert!(back.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip_any_records(
            records in proptest::collection::vec((any::<u64>(), ".{0,40}"), 0..200),
            shards in 1usize..8,
        ) {
            let dir = tempfile::tempdir().unwrap();
            let spec = ShardSpec::new(dir.path(), "prop", shards);
            write_all(&spec, &records).unwrap();
            let mut back: Vec<(u64, String)> = read_all(&spec).unwrap();
            let mut want = records.clone();
            back.sort();
            want.sort();
            prop_assert_eq!(back, want);
        }
    }
}
