//! Multi-stage pipeline orchestration.
//!
//! Figure 4 of the paper shows labeling-function binaries as "custom
//! MapReduce pipelines" — several shard-to-shard stages chained through
//! the distributed filesystem, with per-stage accounting. [`Pipeline`]
//! is that thin orchestration layer: each stage is a shard-parallel map
//! whose output dataset feeds the next stage, every stage's
//! [`JobStats`] is retained, and intermediate datasets can be cleaned up
//! at the end.

use crate::counters::CounterHandle;
use crate::error::DataflowError;
use crate::mapreduce::{par_map_shards, Emit, JobConfig, JobStats, WorkerContext};
use crate::shard::ShardSpec;
use crate::Record;
use std::path::{Path, PathBuf};

/// Accounting for one finished pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-stage job statistics, in execution order.
    pub stages: Vec<JobStats>,
}

impl PipelineRun {
    /// Total wall-clock seconds across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Render a per-stage summary table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<24} {:>10} {:>10} {:>9} {:>12}\n",
            "stage", "in", "out", "seconds", "records/s"
        );
        for s in &self.stages {
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>9.2} {:>12.0}\n",
                s.name,
                s.records_in,
                s.records_out,
                s.seconds,
                s.throughput()
            ));
        }
        out.push_str(&format!("total: {:.2}s\n", self.total_seconds()));
        out
    }

    /// Emit every stage to a run journal (see [`JobStats::emit_to`]),
    /// closing with one `pipeline` event carrying the total.
    pub fn emit_to(&self, journal: &drybell_obs::RunJournal) {
        for stage in &self.stages {
            stage.emit_to(journal);
        }
        journal.emit(
            drybell_obs::Event::new("pipeline")
                .field("stages", self.stages.len())
                .field("seconds", self.total_seconds()),
        );
    }
}

/// Chains shard-parallel map stages through datasets in one directory.
pub struct Pipeline {
    dir: PathBuf,
    workers: usize,
    stages: Vec<JobStats>,
    intermediates: Vec<ShardSpec>,
}

impl Pipeline {
    /// Create a pipeline writing its stage outputs under `dir`.
    pub fn new(dir: impl Into<PathBuf>, workers: usize) -> Pipeline {
        Pipeline {
            dir: dir.into(),
            workers: workers.max(1),
            stages: Vec::new(),
            intermediates: Vec::new(),
        }
    }

    /// The pipeline's working directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Run one shard-parallel map stage: `input` → a new dataset named
    /// after `name` (same shard count), returning the output spec for the
    /// next stage. Worker state comes from `init` (the model-server
    /// hook), exactly as in [`par_map_shards`].
    pub fn map_stage<I, O, S, Init, F>(
        &mut self,
        name: &str,
        input: &ShardSpec,
        init: Init,
        f: F,
    ) -> Result<ShardSpec, DataflowError>
    where
        I: Record,
        O: Record,
        S: Send,
        Init: Fn(&mut WorkerContext) -> Result<S, DataflowError> + Sync,
        F: Fn(&mut S, I, &mut Emit<'_, O>, &mut CounterHandle) -> Result<(), DataflowError> + Sync,
    {
        let output = ShardSpec::new(&self.dir, name, input.num_shards());
        let cfg = JobConfig::new(name).with_workers(self.workers);
        let stats = par_map_shards(input, &output, &cfg, init, f)?;
        self.stages.push(stats);
        self.intermediates.push(output.clone());
        Ok(output)
    }

    /// Stage stats accumulated so far.
    pub fn stats(&self) -> &[JobStats] {
        &self.stages
    }

    /// Finish, optionally deleting every intermediate dataset except the
    /// final stage's output.
    pub fn finish(mut self, clean_intermediates: bool) -> Result<PipelineRun, DataflowError> {
        if clean_intermediates && !self.intermediates.is_empty() {
            let last = self.intermediates.pop();
            for spec in &self.intermediates {
                spec.remove()?;
            }
            drop(last);
        }
        Ok(PipelineRun {
            stages: self.stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{read_all, write_all};

    type Rec = (u64, String);

    fn seed_input(dir: &Path) -> ShardSpec {
        let records: Vec<Rec> = (0..200).map(|i| (i, format!("text {i}"))).collect();
        let spec = ShardSpec::new(dir, "input", 4);
        write_all(&spec, &records).unwrap();
        spec
    }

    #[test]
    fn stages_chain_through_datasets() {
        let dir = tempfile::tempdir().unwrap();
        let input = seed_input(dir.path());
        let mut pipeline = Pipeline::new(dir.path(), 2);
        // Stage 1: double the key.
        let doubled = pipeline
            .map_stage(
                "doubled",
                &input,
                |_ctx| Ok(()),
                |_s: &mut (), (k, v): Rec, emit, _c: &mut CounterHandle| emit.emit(&(k * 2, v)),
            )
            .unwrap();
        // Stage 2: keep multiples of four.
        let filtered = pipeline
            .map_stage(
                "filtered",
                &doubled,
                |_ctx| Ok(()),
                |_s: &mut (), rec: Rec, emit, _c: &mut CounterHandle| {
                    if rec.0.is_multiple_of(4) {
                        emit.emit(&rec)?;
                    }
                    Ok(())
                },
            )
            .unwrap();
        let run = pipeline.finish(false).unwrap();
        assert_eq!(run.stages.len(), 2);
        assert_eq!(run.stages[0].records_in, 200);
        assert_eq!(run.stages[0].records_out, 200);
        assert_eq!(run.stages[1].records_out, 100);
        assert!(run.total_seconds() >= 0.0);
        let table = run.to_table();
        assert!(table.contains("doubled") && table.contains("filtered"));
        let out: Vec<Rec> = read_all(&filtered).unwrap();
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|(k, _)| k % 4 == 0));
    }

    #[test]
    fn finish_cleans_intermediates_but_keeps_final() {
        let dir = tempfile::tempdir().unwrap();
        let input = seed_input(dir.path());
        let mut pipeline = Pipeline::new(dir.path(), 2);
        let a = pipeline
            .map_stage(
                "a",
                &input,
                |_ctx| Ok(()),
                |_s: &mut (), rec: Rec, emit, _c: &mut CounterHandle| emit.emit(&rec),
            )
            .unwrap();
        let b = pipeline
            .map_stage(
                "b",
                &a,
                |_ctx| Ok(()),
                |_s: &mut (), rec: Rec, emit, _c: &mut CounterHandle| emit.emit(&rec),
            )
            .unwrap();
        pipeline.finish(true).unwrap();
        assert!(!a.exists(), "intermediate dataset must be removed");
        assert!(b.exists(), "final dataset must survive");
        assert!(input.exists(), "caller-owned input is untouched");
    }

    #[test]
    fn stage_errors_propagate() {
        let dir = tempfile::tempdir().unwrap();
        let input = seed_input(dir.path());
        let mut pipeline = Pipeline::new(dir.path(), 2);
        let err = pipeline.map_stage(
            "boom",
            &input,
            |_ctx| Ok(()),
            |_s: &mut (), (k, _): Rec, _emit: &mut Emit<'_, Rec>, _c: &mut CounterHandle| {
                if k == 7 {
                    Err(DataflowError::user("stage failure"))
                } else {
                    Ok(())
                }
            },
        );
        assert!(matches!(err, Err(DataflowError::User(_))));
    }
}
