//! Deterministic fault injection for chaos tests.
//!
//! Production MapReduce treats worker failure as routine (§5.4's
//! pipelines "continuously process millions of examples" on exactly such
//! infrastructure), so the engine's retry paths need to be exercised as
//! thoroughly as its happy paths. A [`FaultPlan`] describes *when* the
//! engine should pretend to fail: either explicitly scheduled ("fail map
//! task 3 on attempt 0") or by seeded rate ("10% of map attempts
//! panic"). Every decision is a pure function of the plan's seed and the
//! fault site's coordinates — no RNG stream, no clock — so a chaos run
//! is bit-for-bit reproducible regardless of thread scheduling, and a
//! retried attempt asks the plan again with a higher attempt number
//! rather than re-rolling dice.
//!
//! Rate-based faults fire only on attempt 0: they model *transient*
//! failures (a preempted worker, a flaky RPC), which is what per-shard
//! retry is designed to absorb. Persistent failures are expressed with
//! explicit schedule entries covering several attempts.
//!
//! The same plan carries NLP-server knobs ([`FaultPlan::nlp_should_fail`]
//! et al.) so one seeded object can poison the whole pipeline: the
//! engine consults the task-level faults, `NlpServer::try_annotate`
//! consults the NLP ones, and the LF executor degrades to abstention
//! when the server errors.

use std::time::Duration;

/// What an injected fault does to the attempt it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt returns a `DataflowError::User` ("injected fault").
    Error,
    /// The attempt panics (exercising the catch-and-retry path).
    Panic,
    /// The attempt is delayed by this many milliseconds, then runs
    /// normally (straggler simulation).
    Delay(u64),
}

/// Which engine phase a task-level fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Map tasks: one per input shard (`par_map_shards` and the map
    /// phase of `map_reduce`).
    Map,
    /// Reduce tasks: one per output partition.
    Reduce,
    /// Streaming ingestion: one task per shard *arrival* (keyed by the
    /// order in which the [`crate::stream::StreamIngestor`] first sights
    /// each spool file).
    Stream,
}

impl FaultSite {
    /// Stable lower-case name, used in telemetry and error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Map => "map",
            FaultSite::Reduce => "reduce",
            FaultSite::Stream => "stream",
        }
    }

    fn tag(self) -> u64 {
        match self {
            FaultSite::Map => 0x6d61_7000,
            FaultSite::Reduce => 0x7265_6400,
            FaultSite::Stream => 0x7374_7200,
        }
    }
}

/// One explicitly scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledFault {
    site: FaultSite,
    task: usize,
    attempt: u32,
    kind: FaultKind,
}

/// A deterministic, seeded fault-injection schedule.
///
/// Cheap to clone (a handful of scalars plus the explicit schedule);
/// `JobConfig` carries one by value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    map_error_rate: f64,
    map_panic_rate: f64,
    reduce_error_rate: f64,
    reduce_panic_rate: f64,
    record_error_rate: f64,
    nlp_error_rate: f64,
    nlp_delay_us: u64,
    schedule: Vec<ScheduledFault>,
    nlp_fail_texts: Vec<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Fraction of first map attempts that return an injected error.
    pub fn with_map_error_rate(mut self, rate: f64) -> FaultPlan {
        self.map_error_rate = rate;
        self
    }

    /// Fraction of first map attempts that panic.
    pub fn with_map_panic_rate(mut self, rate: f64) -> FaultPlan {
        self.map_panic_rate = rate;
        self
    }

    /// Fraction of first reduce attempts that return an injected error.
    pub fn with_reduce_error_rate(mut self, rate: f64) -> FaultPlan {
        self.reduce_error_rate = rate;
        self
    }

    /// Fraction of first reduce attempts that panic.
    pub fn with_reduce_panic_rate(mut self, rate: f64) -> FaultPlan {
        self.reduce_panic_rate = rate;
        self
    }

    /// Fraction of individual input records whose map call fails with an
    /// injected user error (the `skip_bad_record_budget` path). Unlike
    /// attempt-level rates, record faults are a property of the record
    /// and fire on *every* attempt.
    pub fn with_record_error_rate(mut self, rate: f64) -> FaultPlan {
        self.record_error_rate = rate;
        self
    }

    /// Fraction of texts for which `NlpServer::try_annotate` errors. The
    /// decision hashes the text, so a given text fails consistently.
    pub fn with_nlp_error_rate(mut self, rate: f64) -> FaultPlan {
        self.nlp_error_rate = rate;
        self
    }

    /// Delay every fault-aware NLP call by this many microseconds
    /// (flaky-model-server latency simulation).
    pub fn with_nlp_delay_us(mut self, delay_us: u64) -> FaultPlan {
        self.nlp_delay_us = delay_us;
        self
    }

    /// Schedule an injected error for `task` at `site` on `attempt`.
    pub fn fail_task(mut self, site: FaultSite, task: usize, attempt: u32) -> FaultPlan {
        self.schedule.push(ScheduledFault {
            site,
            task,
            attempt,
            kind: FaultKind::Error,
        });
        self
    }

    /// Schedule an injected panic for `task` at `site` on `attempt`.
    pub fn panic_task(mut self, site: FaultSite, task: usize, attempt: u32) -> FaultPlan {
        self.schedule.push(ScheduledFault {
            site,
            task,
            attempt,
            kind: FaultKind::Panic,
        });
        self
    }

    /// Schedule a delay of `ms` milliseconds for `task` at `site` on
    /// `attempt` (the attempt then runs normally).
    pub fn delay_task(mut self, site: FaultSite, task: usize, attempt: u32, ms: u64) -> FaultPlan {
        self.schedule.push(ScheduledFault {
            site,
            task,
            attempt,
            kind: FaultKind::Delay(ms),
        });
        self
    }

    /// Make `NlpServer::try_annotate` error for exactly this text.
    pub fn fail_nlp_text(mut self, text: &str) -> FaultPlan {
        self.nlp_fail_texts.push(fnv1a64(text.as_bytes()));
        self
    }

    /// The fault (if any) to inject for one task attempt. Explicit
    /// schedule entries win; otherwise the seeded rates apply, and only
    /// to attempt 0 (rate faults are transient by construction, so
    /// retries always find a healthy worker).
    pub fn task_fault(&self, site: FaultSite, task: usize, attempt: u32) -> Option<FaultKind> {
        for s in &self.schedule {
            if s.site == site && s.task == task && s.attempt == attempt {
                return Some(s.kind);
            }
        }
        if attempt != 0 {
            return None;
        }
        let (error_rate, panic_rate) = match site {
            FaultSite::Map => (self.map_error_rate, self.map_panic_rate),
            FaultSite::Reduce => (self.reduce_error_rate, self.reduce_panic_rate),
            // Stream-arrival faults are schedule-only: random rates would
            // make the retry count (and thus the deterministic arrival
            // sequence numbering) depend on poll timing.
            FaultSite::Stream => (0.0, 0.0),
        };
        if panic_rate > 0.0 && self.draw(site.tag() ^ 1, task as u64, 0) < panic_rate {
            return Some(FaultKind::Panic);
        }
        if error_rate > 0.0 && self.draw(site.tag() ^ 2, task as u64, 0) < error_rate {
            return Some(FaultKind::Error);
        }
        None
    }

    /// Whether the map call for record `index` of shard `shard` should
    /// fail with an injected user error.
    pub fn record_fault(&self, shard: usize, index: u64) -> bool {
        self.record_error_rate > 0.0
            && self.draw(0x7265_6300, shard as u64, index) < self.record_error_rate
    }

    /// Whether an NLP annotate call for `text` should error.
    pub fn nlp_should_fail(&self, text: &str) -> bool {
        let h = fnv1a64(text.as_bytes());
        if self.nlp_fail_texts.contains(&h) {
            return true;
        }
        self.nlp_error_rate > 0.0 && self.draw(0x6e6c_7000, h, 0) < self.nlp_error_rate
    }

    /// The configured NLP call delay, zero when none.
    pub fn nlp_delay(&self) -> Duration {
        Duration::from_micros(self.nlp_delay_us)
    }

    /// Whether the plan can inject anything at all (lets hot paths skip
    /// the bookkeeping entirely for the common no-chaos case).
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::seeded(self.seed)
    }

    /// A uniform draw in `[0, 1)` from the seed and coordinates — a
    /// stateless splitmix64-style hash, deliberately not an RNG stream,
    /// so decisions are independent of evaluation order.
    fn draw(&self, tag: u64, a: u64, b: u64) -> f64 {
        let h = mix(self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(mix(tag))
            .wrapping_add(mix(a).rotate_left(17))
            .wrapping_add(mix(b).rotate_left(31)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64 finalizer: a strong 64-bit avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit (text hashing for per-text NLP fault decisions).
fn fnv1a64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::seeded(7);
        assert!(plan.is_empty());
        for task in 0..100 {
            assert_eq!(plan.task_fault(FaultSite::Map, task, 0), None);
            assert_eq!(plan.task_fault(FaultSite::Reduce, task, 0), None);
            assert!(!plan.record_fault(task, 0));
        }
        assert!(!plan.nlp_should_fail("anything"));
    }

    #[test]
    fn schedule_beats_rates_and_matches_exactly() {
        let plan = FaultPlan::seeded(1)
            .fail_task(FaultSite::Map, 3, 0)
            .panic_task(FaultSite::Map, 3, 1)
            .delay_task(FaultSite::Reduce, 0, 0, 25);
        assert_eq!(
            plan.task_fault(FaultSite::Map, 3, 0),
            Some(FaultKind::Error)
        );
        assert_eq!(
            plan.task_fault(FaultSite::Map, 3, 1),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.task_fault(FaultSite::Map, 3, 2), None);
        assert_eq!(plan.task_fault(FaultSite::Map, 4, 0), None);
        assert_eq!(
            plan.task_fault(FaultSite::Reduce, 0, 0),
            Some(FaultKind::Delay(25))
        );
        assert!(!plan.is_empty());
    }

    #[test]
    fn rate_faults_are_deterministic_and_first_attempt_only() {
        let plan = FaultPlan::seeded(42).with_map_error_rate(0.5);
        let decisions: Vec<_> = (0..64)
            .map(|t| plan.task_fault(FaultSite::Map, t, 0))
            .collect();
        let again: Vec<_> = (0..64)
            .map(|t| plan.task_fault(FaultSite::Map, t, 0))
            .collect();
        assert_eq!(decisions, again, "same seed, same decisions");
        let fired = decisions.iter().filter(|d| d.is_some()).count();
        assert!(
            (16..=48).contains(&fired),
            "roughly half of 64 tasks should fault, got {fired}"
        );
        // Retries are clean.
        for t in 0..64 {
            assert_eq!(plan.task_fault(FaultSite::Map, t, 1), None);
        }
        // Reduce site is an independent stream.
        assert!((0..64).all(|t| plan.task_fault(FaultSite::Reduce, t, 0).is_none()));
    }

    #[test]
    fn seeds_change_decisions() {
        let a = FaultPlan::seeded(1).with_map_error_rate(0.5);
        let b = FaultPlan::seeded(2).with_map_error_rate(0.5);
        let da: Vec<_> = (0..256)
            .map(|t| a.task_fault(FaultSite::Map, t, 0))
            .collect();
        let db: Vec<_> = (0..256)
            .map(|t| b.task_fault(FaultSite::Map, t, 0))
            .collect();
        assert_ne!(da, db);
    }

    #[test]
    fn nlp_faults_hash_the_text() {
        let plan = FaultPlan::seeded(9)
            .with_nlp_error_rate(0.5)
            .fail_nlp_text("always fails");
        assert!(plan.nlp_should_fail("always fails"));
        let texts: Vec<String> = (0..64).map(|i| format!("text {i}")).collect();
        let fails: Vec<bool> = texts.iter().map(|t| plan.nlp_should_fail(t)).collect();
        let again: Vec<bool> = texts.iter().map(|t| plan.nlp_should_fail(t)).collect();
        assert_eq!(fails, again);
        let n = fails.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&n), "roughly half should fail, got {n}");
    }

    #[test]
    fn record_faults_are_per_record() {
        let plan = FaultPlan::seeded(5).with_record_error_rate(0.25);
        let hits: usize = (0..10)
            .map(|s| (0..100).filter(|&r| plan.record_fault(s, r)).count())
            .sum();
        assert!((150..=350).contains(&hits), "~250 of 1000, got {hits}");
        // Same record, same verdict (fires on every attempt by design).
        assert_eq!(plan.record_fault(3, 17), plan.record_fault(3, 17));
    }
}
