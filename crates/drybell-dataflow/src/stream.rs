//! Streaming ingestion: watch a spool directory for atomically-committed
//! shards and deliver each exactly once, in a deterministic order.
//!
//! The ingestor is the arrival half of the streaming pipeline (the
//! paper's third production workload is *real-time events*; batch jobs
//! cover the other two). Producers write shards with [`ShardWriter`],
//! which stages bytes in a `.tmp` sibling and renames onto the final
//! `.rec` path only after appending the CRC commit footer — so a poll
//! can classify every file in the spool with no coordination:
//!
//! * **committed** — ends in a valid [`crate::codec`] footer; delivered
//!   exactly once (a name, once delivered, is never delivered again, so
//!   re-sighting a committed shard on a later poll is a no-op and votes
//!   are never double-counted);
//! * **torn / in-flight** — `.tmp` stages and `.rec` files without a
//!   valid footer (a producer that died mid-rename, a truncated copy).
//!   Skipped this poll and re-examined on the next one: a torn shard
//!   never poisons the stream, it just stays undelivered until a
//!   producer commits it properly;
//! * **foreign** — anything that is not a `.rec` file; ignored.
//!
//! Delivery order within a poll is by file name, not directory order or
//! mtime, so a replayed spool produces the identical shard sequence —
//! the property `GenerativeModel::fit_incremental` turns into a
//! byte-identical parameter trajectory.
//!
//! Fault injection reuses the [`FaultPlan`] schedule machinery: a
//! `FaultSite::Stream` entry fails the matching *arrival* (keyed by the
//! order each file is first sighted) for its scheduled attempt, and the
//! ingestor retries the file on subsequent polls up to
//! [`StreamIngestor::with_max_attempts`], mirroring the batch engine's
//! per-task retry budget.

use crate::error::DataflowError;
use crate::fault::{FaultKind, FaultPlan, FaultSite};
use crate::shard::shard_is_committed;
use std::collections::BTreeMap;
use std::ffi::OsString;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
// drybell-lint: allow(determinism) — wall-clock feeds only the stream/lag_us telemetry gauge, never delivery order or results
use std::time::SystemTime;

#[cfg(doc)]
use crate::shard::ShardWriter;

/// One committed shard delivered by [`StreamIngestor::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivedShard {
    /// Full path of the committed `.rec` file.
    pub path: PathBuf,
    /// Zero-based delivery sequence number over the ingestor's lifetime
    /// (the deterministic stream position of this shard).
    pub sequence: u64,
}

/// Per-file sighting state: stable arrival id and failed attempt count.
#[derive(Debug, Clone, Copy)]
struct Sighting {
    /// Arrival index assigned the first time the file is sighted; this
    /// is the task key for `FaultSite::Stream` schedule entries.
    arrival: usize,
    attempts: u32,
    delivered: bool,
}

/// Watches a spool directory and yields newly committed shards.
///
/// See the [module docs](self) for the delivery protocol. The ingestor
/// holds no file handles between polls and keeps only file-name state,
/// so it is cheap to poll at high frequency.
pub struct StreamIngestor {
    dir: PathBuf,
    sightings: BTreeMap<OsString, Sighting>,
    next_arrival: usize,
    delivered: u64,
    fault_plan: FaultPlan,
    max_attempts: u32,
    telemetry: Option<drybell_obs::Telemetry>,
}

impl StreamIngestor {
    /// Watch `dir` for committed shards. The directory does not need to
    /// exist yet; polls before it appears deliver nothing.
    pub fn new(dir: impl Into<PathBuf>) -> StreamIngestor {
        StreamIngestor {
            dir: dir.into(),
            sightings: BTreeMap::new(),
            next_arrival: 0,
            delivered: 0,
            fault_plan: FaultPlan::default(),
            max_attempts: 3,
            telemetry: None,
        }
    }

    /// Inject `FaultSite::Stream` schedule faults into arrivals.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> StreamIngestor {
        self.fault_plan = plan;
        self
    }

    /// Per-arrival injected-fault retry budget (total attempts, like
    /// `JobConfig::with_max_attempts`; default 3). Exhausting it fails
    /// the poll.
    pub fn with_max_attempts(mut self, attempts: u32) -> StreamIngestor {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Observe deliveries: bumps the `stream/shards_seen` counter and
    /// sets the `stream/lag_us` gauge (commit-to-pickup latency of the
    /// most recently delivered shard, from file mtime) on each poll.
    pub fn with_telemetry(mut self, telemetry: drybell_obs::Telemetry) -> StreamIngestor {
        self.telemetry = Some(telemetry);
        self
    }

    /// Number of shards delivered so far.
    pub fn shards_seen(&self) -> u64 {
        self.delivered
    }

    /// Scan the spool once and return every newly committed shard, in
    /// file-name order. Torn or in-flight files are skipped (retried on
    /// the next poll); already-delivered names are never re-delivered.
    pub fn poll(&mut self) -> Result<Vec<ArrivedShard>, DataflowError> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            // A spool that has not been created yet is an empty stream,
            // not an error — producers may race the consumer's startup.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(DataflowError::io(&self.dir, e)),
        };
        let mut names: Vec<OsString> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| DataflowError::io(&self.dir, e))?;
            let name = entry.file_name();
            if Path::new(&name).extension().is_some_and(|ext| ext == "rec") {
                names.push(name);
            }
        }
        // File-name order, not readdir order: the delivery sequence must
        // be a pure function of the set of committed files.
        names.sort();
        let mut delivered = Vec::new();
        let mut last_lag_us: Option<i64> = None;
        for name in names {
            let sighting = {
                let next = self.next_arrival;
                let s = self
                    .sightings
                    .entry(name.clone())
                    .or_insert_with(|| Sighting {
                        arrival: next,
                        attempts: 0,
                        delivered: false,
                    });
                if s.arrival == next {
                    self.next_arrival += 1;
                }
                *s
            };
            if sighting.delivered {
                continue;
            }
            let path = self.dir.join(&name);
            if !shard_is_committed(&path) {
                // Torn or still being written: leave it for a later
                // poll. No state advances, so a producer retry that
                // commits the same name later is picked up cleanly.
                continue;
            }
            // Injected arrival fault (chaos tests): consume one attempt
            // and retry on a later poll, up to the budget.
            match self
                .fault_plan
                .task_fault(FaultSite::Stream, sighting.arrival, sighting.attempts)
            {
                Some(FaultKind::Error | FaultKind::Panic) => {
                    if let Some(s) = self.sightings.get_mut(&name) {
                        s.attempts += 1;
                        if s.attempts >= self.max_attempts {
                            // Fault budget exhausted: preserve the ring
                            // of events leading up to the failure before
                            // surfacing it — the dump is the post-mortem
                            // for a fault the retry budget could not
                            // absorb.
                            if let Some(t) = &self.telemetry {
                                t.dump_flight("stream_fault_budget");
                            }
                            return Err(DataflowError::User(format!(
                                "stream arrival {} ({}) failed {} attempts",
                                sighting.arrival,
                                path.display(),
                                s.attempts
                            )));
                        }
                    }
                    continue;
                }
                Some(FaultKind::Delay(ms)) => {
                    std::thread::sleep(std::time::Duration::from_millis(ms))
                }
                None => {}
            }
            let lag_us = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                // drybell-lint: allow(determinism) — commit-to-pickup lag is a telemetry-only gauge; it never influences delivery
                .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                .map(|d| d.as_micros().min(i64::MAX as u128) as i64);
            if let Some(s) = self.sightings.get_mut(&name) {
                s.delivered = true;
            }
            delivered.push(ArrivedShard {
                path,
                sequence: self.delivered,
            });
            self.delivered += 1;
            if let Some(lag) = lag_us {
                last_lag_us = Some(lag);
            }
        }
        // Telemetry flushes once per poll (the batch boundary), not per
        // delivered shard.
        if let Some(t) = &self.telemetry {
            if !delivered.is_empty() {
                t.metrics()
                    .counter("stream/shards_seen")
                    .add(delivered.len() as u64);
            }
            if let Some(lag) = last_lag_us {
                t.metrics().gauge("stream/lag_us").set(lag);
            }
        }
        Ok(delivered)
    }

    /// Run [`StreamIngestor::poll`] as a daemon: poll, hand every
    /// non-empty batch to `on_batch`, sleep `interval`, repeat until
    /// `shutdown` is set (or a poll fails). The sleep is sliced into
    /// ≤10 ms naps so a shutdown requested mid-interval takes effect
    /// promptly even with a multi-second poll interval — the shape a
    /// supervisor thread expects from a stoppable worker.
    ///
    /// Returns the number of shards delivered to `on_batch` over the
    /// loop's lifetime.
    pub fn poll_loop(
        &mut self,
        interval: Duration,
        shutdown: &AtomicBool,
        mut on_batch: impl FnMut(Vec<ArrivedShard>),
    ) -> Result<u64, DataflowError> {
        const NAP: Duration = Duration::from_millis(10);
        let mut handed = 0_u64;
        while !shutdown.load(Ordering::Acquire) {
            let batch = self.poll()?;
            if !batch.is_empty() {
                handed += batch.len() as u64;
                on_batch(batch);
            }
            let mut remaining = interval;
            while remaining > Duration::ZERO {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(handed);
                }
                let nap = remaining.min(NAP);
                std::thread::sleep(nap);
                remaining = remaining.saturating_sub(nap);
            }
        }
        Ok(handed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardReader, ShardWriter};

    type Rec = (u64, String);

    fn write_committed(dir: &Path, name: &str, lo: u64, hi: u64) {
        let mut w = ShardWriter::<Rec>::create(&dir.join(name)).unwrap();
        for i in lo..hi {
            w.write(&(i, format!("doc {i}"))).unwrap();
        }
        w.finish().unwrap();
    }

    fn read_ids(path: &Path) -> Vec<u64> {
        ShardReader::<Rec>::open(path)
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect()
    }

    #[test]
    fn delivers_committed_shards_once_in_name_order() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "b-00001.rec", 10, 20);
        write_committed(dir.path(), "a-00000.rec", 0, 10);
        let mut ing = StreamIngestor::new(dir.path());
        let first = ing.poll().unwrap();
        assert_eq!(first.len(), 2);
        // Name order, regardless of creation order.
        assert!(first[0].path.ends_with("a-00000.rec"));
        assert_eq!(first[0].sequence, 0);
        assert_eq!(first[1].sequence, 1);
        assert_eq!(read_ids(&first[0].path), (0..10).collect::<Vec<_>>());
        // Redelivery is idempotent: the files are still in the spool but
        // a second poll yields nothing — no double-counted votes.
        assert!(ing.poll().unwrap().is_empty());
        assert_eq!(ing.shards_seen(), 2);
        // A new commit between polls arrives with the next sequence.
        write_committed(dir.path(), "c-00002.rec", 20, 25);
        let third = ing.poll().unwrap();
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].sequence, 2);
    }

    #[test]
    fn torn_shard_is_skipped_then_picked_up_after_commit() {
        let dir = tempfile::tempdir().unwrap();
        // A torn file: record bytes but no commit footer (a producer
        // that died mid-write and somehow got partial bytes onto the
        // final name, the worst case rename atomicity cannot prevent).
        std::fs::write(dir.path().join("x-00000.rec"), b"partial garbage").unwrap();
        // And a staged .tmp from a live producer: must be invisible.
        std::fs::write(dir.path().join("y-00001.rec.tmp"), b"in flight").unwrap();
        let mut ing = StreamIngestor::new(dir.path());
        assert!(
            ing.poll().unwrap().is_empty(),
            "torn shard must not deliver"
        );
        assert!(
            ing.poll().unwrap().is_empty(),
            "…and must not poison later polls"
        );
        // The producer retries and commits the same name properly.
        write_committed(dir.path(), "x-00000.rec", 0, 5);
        let got = ing.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(read_ids(&got[0].path), vec![0, 1, 2, 3, 4]);
        assert_eq!(ing.shards_seen(), 1);
    }

    #[test]
    fn missing_spool_directory_is_an_empty_stream() {
        let dir = tempfile::tempdir().unwrap();
        let spool = dir.path().join("not-yet-created");
        let mut ing = StreamIngestor::new(&spool);
        assert!(ing.poll().unwrap().is_empty());
        std::fs::create_dir_all(&spool).unwrap();
        write_committed(&spool, "a-00000.rec", 0, 3);
        assert_eq!(ing.poll().unwrap().len(), 1);
    }

    #[test]
    fn injected_arrival_fault_retries_then_delivers() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        let plan = FaultPlan::seeded(3).fail_task(FaultSite::Stream, 0, 0);
        let mut ing = StreamIngestor::new(dir.path()).with_fault_plan(plan);
        assert!(
            ing.poll().unwrap().is_empty(),
            "attempt 0 fails by schedule"
        );
        let got = ing.poll().unwrap();
        assert_eq!(got.len(), 1, "attempt 1 succeeds");
        assert_eq!(got[0].sequence, 0);
    }

    #[test]
    fn exhausted_arrival_attempts_fail_the_poll() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        let plan = FaultPlan::seeded(3)
            .fail_task(FaultSite::Stream, 0, 0)
            .fail_task(FaultSite::Stream, 0, 1);
        let mut ing = StreamIngestor::new(dir.path())
            .with_fault_plan(plan)
            .with_max_attempts(2);
        assert!(ing.poll().unwrap().is_empty());
        assert!(matches!(ing.poll(), Err(DataflowError::User(_))));
    }

    #[test]
    fn poll_loop_delivers_and_shutdown_mid_interval_is_prompt() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        let shutdown = std::sync::Arc::new(AtomicBool::new(false));
        let spool = dir.path().to_path_buf();
        let flag = std::sync::Arc::clone(&shutdown);
        let worker = std::thread::spawn(move || {
            let mut ing = StreamIngestor::new(&spool);
            let mut seen = Vec::new();
            // A one-hour interval: only sliced napping lets shutdown in.
            let handed = ing
                .poll_loop(Duration::from_secs(3600), &flag, |batch| {
                    seen.extend(batch.into_iter().map(|s| s.sequence));
                })
                .unwrap();
            (handed, seen)
        });
        // Let the first poll land, then stop the daemon mid-interval.
        std::thread::sleep(Duration::from_millis(50));
        let stopped_at = std::time::Instant::now();
        shutdown.store(true, Ordering::Release);
        let (handed, seen) = worker.join().unwrap();
        assert!(
            stopped_at.elapsed() < Duration::from_secs(5),
            "shutdown must not wait out the interval"
        );
        assert_eq!(handed, 1);
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn poll_loop_with_shutdown_preset_exits_before_polling() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        let mut ing = StreamIngestor::new(dir.path());
        let shutdown = AtomicBool::new(true);
        let handed = ing
            .poll_loop(Duration::from_millis(1), &shutdown, |_| {
                panic!("must not deliver after shutdown")
            })
            .unwrap();
        assert_eq!(handed, 0);
        assert_eq!(ing.shards_seen(), 0);
    }

    #[test]
    fn exhausted_fault_budget_dumps_the_flight_recorder() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        let flight_dir = dir.path().join("flight");
        let telemetry = drybell_obs::Telemetry::new()
            .with_flight(drybell_obs::FlightRecorder::with_capacity(&flight_dir, 16));
        telemetry.emit(drybell_obs::Event::new("phase").field("name", "ingest"));
        let plan = FaultPlan::seeded(3)
            .fail_task(FaultSite::Stream, 0, 0)
            .fail_task(FaultSite::Stream, 0, 1);
        let mut ing = StreamIngestor::new(dir.path())
            .with_fault_plan(plan)
            .with_max_attempts(2)
            .with_telemetry(telemetry.clone());
        assert!(ing.poll().unwrap().is_empty());
        assert!(matches!(ing.poll(), Err(DataflowError::User(_))));
        let dumps: Vec<_> = std::fs::read_dir(&flight_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dumps.len(), 1, "exhaustion must leave a post-mortem");
        let text = std::fs::read_to_string(&dumps[0]).unwrap();
        assert!(
            text.contains("\"reason\":\"stream_fault_budget\""),
            "{text}"
        );
        assert!(
            text.contains("\"kind\":\"phase\""),
            "ring context kept: {text}"
        );
    }

    #[test]
    fn telemetry_counts_deliveries() {
        let dir = tempfile::tempdir().unwrap();
        write_committed(dir.path(), "a-00000.rec", 0, 5);
        write_committed(dir.path(), "b-00001.rec", 5, 9);
        let telemetry = drybell_obs::Telemetry::new();
        let mut ing = StreamIngestor::new(dir.path()).with_telemetry(telemetry.clone());
        ing.poll().unwrap();
        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("stream/shards_seen"), 2);
        assert!(snap.gauge("stream/lag_us") >= 0);
    }
}
