//! Binary record codec for shard files.
//!
//! Records are stored as length-prefixed frames:
//!
//! ```text
//! [payload_len: varint u64][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! The CRC-32 (IEEE 802.3) checksum over the payload lets readers detect
//! torn writes and corruption — the failure-injection tests rely on it.
//! Field-level encoding helpers (varints, primitives, strings) are provided
//! on top of the `bytes` crate's `Buf`/`BufMut` traits so record types can
//! implement [`Record`] without hand-rolling byte juggling.

use bytes::{Buf, BufMut};
use std::fmt;

/// Errors from decoding a record or frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A varint ran past 10 bytes (not a valid u64).
    VarintOverflow,
    /// The frame checksum did not match the payload.
    ChecksumMismatch {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC computed over the payload read.
        actual: u32,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// An enum tag or similar discriminant was out of range.
    InvalidTag(u8),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
    /// The shard commit footer was absent or malformed — the file is
    /// torn, truncated, or still being written.
    MissingFooter,
    /// The footer's committed record count disagreed with the records
    /// actually framed in the file.
    RecordCountMismatch {
        /// Count recorded in the commit footer.
        expected: u64,
        /// Records actually decoded from the frames.
        actual: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: {expected:#010x} vs {actual:#010x}"
                )
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::InvalidTag(t) => write!(f, "invalid discriminant tag {t}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            CodecError::MissingFooter => {
                write!(f, "missing or malformed shard commit footer (torn file?)")
            }
            CodecError::RecordCountMismatch { expected, actual } => {
                write!(
                    f,
                    "shard footer promises {expected} records but {actual} were framed"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A type that can be serialized into (and out of) a shard-file frame.
pub trait Record: Sized + Send + 'static {
    /// Append this record's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a record from exactly the bytes of `buf`.
    ///
    /// Implementations should consume the whole buffer; the shard reader
    /// treats leftover bytes as corruption.
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE) — table-driven, computed once at startup.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // drybell-lint: allow(no-panic-index) — index is masked to 0..=255 against a 256-entry table; per-byte hot loop
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.is_empty() {
            return Err(CodecError::UnexpectedEof);
        }
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

/// Append a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut &[u8]) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let (head, tail) = buf.split_at(len);
    let s = std::str::from_utf8(head).map_err(|_| CodecError::InvalidUtf8)?;
    *buf = tail;
    Ok(s.to_owned())
}

/// Append a length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Read a length-prefixed byte blob.
pub fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head.to_vec())
}

/// Append an `f64` as little-endian bits.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.put_f64_le(v);
}

/// Read a little-endian `f64`.
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_f64_le())
}

/// Read a single byte.
pub fn get_u8(buf: &mut &[u8]) -> Result<u8, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

/// ZigZag-encode a signed integer into a varint.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Read a ZigZag-encoded signed varint.
pub fn get_varint_i64(buf: &mut &[u8]) -> Result<i64, CodecError> {
    let raw = get_varint(buf)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Append a checksummed frame containing `payload`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_varint(out, payload.len() as u64);
    out.put_u32_le(crc32(payload));
    out.extend_from_slice(payload);
}

/// Read one frame; returns the verified payload slice, advancing `buf`.
pub fn get_frame<'a>(buf: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < 4 + len {
        return Err(CodecError::UnexpectedEof);
    }
    let expected = buf.get_u32_le();
    let (payload, tail) = buf.split_at(len);
    *buf = tail;
    let actual = crc32(payload);
    if actual != expected {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Commit footer
// ---------------------------------------------------------------------------

/// Total size in bytes of the commit footer appended by [`put_footer`]:
/// an 8-byte magic, an 8-byte record count, and a 4-byte CRC-32 over
/// both.
pub const FOOTER_LEN: usize = 20;

/// Magic marking a committed shard file (`b"DRYBELLF"` little-endian).
const FOOTER_MAGIC: u64 = u64::from_le_bytes(*b"DRYBELLF");

/// Append the shard commit footer: magic, `record_count`, and a CRC-32
/// over both. `ShardWriter::finish` writes this as the last bytes of a
/// shard before the atomic rename; its absence marks a torn or
/// in-progress file that readers must reject.
pub fn put_footer(out: &mut Vec<u8>, record_count: u64) {
    let mut body = Vec::with_capacity(16);
    body.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
    body.extend_from_slice(&record_count.to_le_bytes());
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.put_u32_le(crc);
}

/// Split a fully-buffered shard image into its frame bytes and the
/// committed record count, validating the footer's magic and checksum.
pub fn split_footer(buf: &[u8]) -> Result<(&[u8], u64), CodecError> {
    let Some(frames_len) = buf.len().checked_sub(FOOTER_LEN) else {
        return Err(CodecError::MissingFooter);
    };
    let (frames, footer) = buf.split_at(frames_len);
    let (body, mut crc_bytes) = footer.split_at(16);
    let mut cursor = body;
    let magic = cursor.get_u64_le();
    let count = cursor.get_u64_le();
    let stored = crc_bytes.get_u32_le();
    if magic != FOOTER_MAGIC {
        return Err(CodecError::MissingFooter);
    }
    let actual = crc32(body);
    if actual != stored {
        return Err(CodecError::ChecksumMismatch {
            expected: stored,
            actual,
        });
    }
    Ok((frames, count))
}

// ---------------------------------------------------------------------------
// Record impls for common types
// ---------------------------------------------------------------------------

impl Record for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<u64, CodecError> {
        get_varint(buf)
    }
}

impl Record for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint_i64(buf, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<i64, CodecError> {
        get_varint_i64(buf)
    }
}

impl Record for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_f64(buf, *self);
    }
    fn decode(buf: &mut &[u8]) -> Result<f64, CodecError> {
        get_f64(buf)
    }
}

impl Record for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_string(buf, self);
    }
    fn decode(buf: &mut &[u8]) -> Result<String, CodecError> {
        get_string(buf)
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<(A, B), CodecError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: Record> Record for Vec<T>
where
    T: Record,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Vec<T>, CodecError> {
        let len = get_varint(buf)? as usize;
        // Guard against absurd lengths from corrupt data: each element
        // needs at least one byte.
        if len > buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

/// Encode a record to a standalone byte vector.
pub fn encode_record<R: Record>(r: &R) -> Vec<u8> {
    let mut buf = Vec::new();
    r.encode(&mut buf);
    buf
}

/// Decode a record from a byte slice, requiring full consumption.
pub fn decode_record<R: Record>(mut buf: &[u8]) -> Result<R, CodecError> {
    let r = R::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.len()));
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn footer_roundtrips() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"payload");
        let frames_len = buf.len();
        put_footer(&mut buf, 7);
        assert_eq!(buf.len(), frames_len + FOOTER_LEN);
        let (frames, count) = split_footer(&buf).unwrap();
        assert_eq!(frames.len(), frames_len);
        assert_eq!(count, 7);
    }

    #[test]
    fn footer_missing_or_short_is_rejected() {
        // Too short to even hold a footer.
        assert_eq!(split_footer(b"abc"), Err(CodecError::MissingFooter));
        // Long enough but no magic: a torn file of well-formed frames.
        let mut buf = Vec::new();
        for _ in 0..8 {
            put_frame(&mut buf, b"frame without any commit marker");
        }
        assert_eq!(split_footer(&buf), Err(CodecError::MissingFooter));
    }

    #[test]
    fn footer_crc_corruption_is_detected() {
        let mut buf = Vec::new();
        put_footer(&mut buf, 3);
        // Flip a bit inside the count field: magic still matches, CRC no.
        buf[10] ^= 0x01;
        assert!(matches!(
            split_footer(&buf),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: "123456789" -> 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        let buf = [0xFFu8; 11];
        let mut s = buf.as_slice();
        assert_eq!(get_varint(&mut s), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn truncated_inputs_error() {
        let mut buf = Vec::new();
        put_string(&mut buf, "hello");
        let mut s = &buf[..3];
        assert_eq!(get_string(&mut s), Err(CodecError::UnexpectedEof));
        let mut s: &[u8] = &[];
        assert_eq!(get_varint(&mut s), Err(CodecError::UnexpectedEof));
        assert_eq!(get_f64(&mut s), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn frame_detects_corruption() {
        let mut out = Vec::new();
        put_frame(&mut out, b"payload-bytes");
        // Flip a payload bit.
        let idx = out.len() - 2;
        out[idx] ^= 0x01;
        let mut s = out.as_slice();
        assert!(matches!(
            get_frame(&mut s),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn frame_roundtrip_multiple() {
        let mut out = Vec::new();
        put_frame(&mut out, b"one");
        put_frame(&mut out, b"");
        put_frame(&mut out, b"three");
        let mut s = out.as_slice();
        assert_eq!(get_frame(&mut s).unwrap(), b"one");
        assert_eq!(get_frame(&mut s).unwrap(), b"");
        assert_eq!(get_frame(&mut s).unwrap(), b"three");
        assert!(s.is_empty());
    }

    #[test]
    fn decode_record_rejects_trailing() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        buf.push(0);
        assert_eq!(
            decode_record::<u64>(&buf),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut s = buf.as_slice();
        assert_eq!(get_string(&mut s), Err(CodecError::InvalidUtf8));
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = buf.as_slice();
            prop_assert_eq!(get_varint(&mut s).unwrap(), v);
            prop_assert!(s.is_empty());
        }

        #[test]
        fn prop_zigzag_roundtrip(v in any::<i64>()) {
            let mut buf = Vec::new();
            put_varint_i64(&mut buf, v);
            let mut s = buf.as_slice();
            prop_assert_eq!(get_varint_i64(&mut s).unwrap(), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let mut buf = Vec::new();
            put_string(&mut buf, &s);
            let mut r = buf.as_slice();
            prop_assert_eq!(get_string(&mut r).unwrap(), s);
        }

        #[test]
        fn prop_tuple_record_roundtrip(a in any::<u64>(), b in ".*", c in any::<f64>()) {
            let rec = (a, (b.clone(), c));
            let buf = encode_record(&rec);
            let back: (u64, (String, f64)) = decode_record(&buf).unwrap();
            prop_assert_eq!(back.0, a);
            prop_assert_eq!(back.1.0, b);
            prop_assert!(back.1.1 == c || (back.1.1.is_nan() && c.is_nan()));
        }

        #[test]
        fn prop_vec_record_roundtrip(xs in proptest::collection::vec(any::<i64>(), 0..50)) {
            let buf = encode_record(&xs);
            let back: Vec<i64> = decode_record(&buf).unwrap();
            prop_assert_eq!(back, xs);
        }

        #[test]
        fn prop_frame_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut out = Vec::new();
            put_frame(&mut out, &payload);
            let mut s = out.as_slice();
            prop_assert_eq!(get_frame(&mut s).unwrap(), payload.as_slice());
        }

        #[test]
        fn prop_random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
            // Decoding arbitrary garbage must error, never panic.
            let _ = decode_record::<(u64, String)>(&bytes);
            let mut s = bytes.as_slice();
            let _ = get_frame(&mut s);
        }
    }
}
