//! Drift budgets: which signals gate, and by how much.
//!
//! Budgets live in a checked-in `doctor.toml` (flat `[section]` /
//! `key = value` pairs — parsed by a deliberately tiny TOML subset so
//! the crate stays dependency-free). A missing budget means the signal
//! is *informational*: the doctor reports its delta but never fails the
//! run on it. Setting a budget to a negative number disables a built-in
//! default the same way.
//!
//! Key naming: `<section>.<signal>_<kind>` where kind is `abs`
//! (|Δ| ≤ budget), `rel` (|Δ| / max(|baseline|, ε) ≤ budget), or a PSI
//! cut-off under `[psi]`.

use crate::DoctorError;
use std::collections::BTreeMap;

/// Budget lookup: flat `section.key → f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorConfig {
    values: BTreeMap<String, f64>,
}

/// The built-in budgets `DoctorConfig::default()` starts from. These
/// gate only signals that are deterministic for a seeded pipeline —
/// wall-clock and latency stay informational unless a `doctor.toml`
/// opts them in, so timing noise cannot fail a CI gate.
const DEFAULT_BUDGETS: &[(&str, f64)] = &[
    // Dataflow health: a golden run retries and skips nothing.
    ("scalar.retries_abs", 0.0),
    ("scalar.skipped_records_abs", 0.0),
    // NLP service health: degradations are drift by definition.
    ("scalar.nlp_degraded_abs", 0.0),
    ("scalar.nlp_cache_hit_rate_abs", 0.15),
    // Label-model convergence.
    ("scalar.final_nll_rel", 0.05),
    // End-model quality (seeded pipelines reproduce F1 exactly).
    ("scalar.drybell_f1_abs", 0.05),
    // Per-LF statistics (§3.3's monitored-over-time signals).
    ("lf.coverage_abs", 0.10),
    ("lf.overlap_abs", 0.20),
    ("lf.conflict_abs", 0.15),
    ("lf.learned_accuracy_abs", 0.12),
    ("lf.degraded_abs", 0.0),
    // Serving score distribution: the conventional "drifted" PSI cut.
    ("psi.score_dist", 0.25),
    // Telemetry self-cost ceilings (`doctor bench` over
    // BENCH_obs_overhead.json): absolute percentages, not deltas.
    ("obs.train_overhead_pct", 10.0),
    ("obs.lf_overhead_pct", 5.0),
    // Serving front-end. Any NaN score out of a shadowed model is
    // drift by definition; the p99 ceiling and batched-speedup floor
    // gate `doctor bench` over BENCH_serving.json.
    ("serving.invalid_scores_abs", 0.0),
    ("serving.p99_us", 20_000.0),
    ("serving.batched_speedup", 1.0),
    // Streaming mode (`doctor bench` over BENCH_streaming.json): how
    // many journal events the in-stream monitor may lag behind a seeded
    // NLP outage before flagging it, and how far the incremental
    // warm-start fit may sit above a from-scratch batch refit (mean NLL
    // over the full stream).
    ("streaming.detect_events", 12.0),
    ("streaming.nll_gap", 0.05),
    // Live SLO tracking (front-end rolling windows): p99 latency
    // ceiling, error-rate ceiling in parts-per-million, and the
    // burn-rate multiple both windows must exceed before a breach
    // fires (1.0 = burning exactly the budget).
    ("slo.p99_us", 20_000.0),
    ("slo.error_ppm", 1_000.0),
    ("slo.burn", 1.0),
];

impl Default for DoctorConfig {
    fn default() -> DoctorConfig {
        DoctorConfig {
            values: DEFAULT_BUDGETS
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl DoctorConfig {
    /// The budget for `key` (e.g. `"lf.coverage_abs"`), if one is set
    /// and non-negative. Negative values read as "disabled".
    pub fn budget(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied().filter(|v| *v >= 0.0)
    }

    /// Override or add one budget.
    pub fn set(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_string(), value);
    }

    /// Parse a `doctor.toml` on top of the built-in defaults.
    ///
    /// Accepted subset: `#` comments, blank lines, `[section]` headers,
    /// and `key = <number|true|false>` pairs (booleans read as 1/0, so
    /// `foo_abs = false` is an explicit "never budget this"... use a
    /// negative number for clarity). Anything else is an error — a typo
    /// in a gating file must not silently relax a budget.
    pub fn from_toml_str(text: &str) -> Result<DoctorConfig, DoctorError> {
        let mut cfg = DoctorConfig::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let bad =
                |what: &str| DoctorError::BadConfig(format!("line {}: {what}: {raw:?}", idx + 1));
            if let Some(head) = line.strip_prefix('[') {
                let name = head
                    .strip_suffix(']')
                    .ok_or_else(|| bad("unclosed section"))?;
                let name = name.trim();
                if name.is_empty() || !name.chars().all(is_key_char) {
                    return Err(bad("bad section name"));
                }
                section = name.to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad("expected key = value"))?;
            let key = key.trim();
            if key.is_empty() || !key.chars().all(is_key_char) {
                return Err(bad("bad key"));
            }
            let value = value.trim();
            let value = match value {
                "true" => 1.0,
                "false" => 0.0,
                v => v.parse::<f64>().map_err(|_| bad("bad numeric value"))?,
            };
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            cfg.values.insert(full, value);
        }
        Ok(cfg)
    }

    /// Load a `doctor.toml` from disk on top of the defaults.
    pub fn from_path(path: &std::path::Path) -> Result<DoctorConfig, DoctorError> {
        DoctorConfig::from_toml_str(&std::fs::read_to_string(path)?)
    }

    /// Every configured `(key, value)` pair, sorted by key.
    pub fn entries(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'
}

/// Drop a trailing `#` comment (our values are numbers/booleans, so `#`
/// can never occur inside a value).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_gate_the_deterministic_signals() {
        let cfg = DoctorConfig::default();
        assert_eq!(cfg.budget("scalar.retries_abs"), Some(0.0));
        assert_eq!(cfg.budget("lf.coverage_abs"), Some(0.10));
        assert_eq!(cfg.budget("psi.score_dist"), Some(0.25));
        // Timing stays informational unless opted in.
        assert_eq!(cfg.budget("timing.wall_rel"), None);
        assert_eq!(cfg.budget("psi.latency"), None);
    }

    #[test]
    fn toml_subset_parses_sections_comments_and_overrides() {
        let cfg = DoctorConfig::from_toml_str(
            "# budgets\n\
             [lf]\n\
             coverage_abs = 0.02   # tighter than default\n\
             degraded_abs = -1     # disabled\n\
             \n\
             [timing]\n\
             wall_rel = 0.5\n\
             [psi]\n\
             latency = 0.4\n",
        )
        .unwrap();
        assert_eq!(cfg.budget("lf.coverage_abs"), Some(0.02));
        assert_eq!(cfg.budget("lf.degraded_abs"), None, "negative disables");
        assert_eq!(cfg.budget("timing.wall_rel"), Some(0.5));
        assert_eq!(cfg.budget("psi.latency"), Some(0.4));
        // Untouched defaults survive the overlay.
        assert_eq!(cfg.budget("scalar.final_nll_rel"), Some(0.05));
    }

    #[test]
    fn malformed_budget_files_are_rejected_loudly() {
        for bad in [
            "[unclosed\nx = 1",
            "novalue\n",
            "key = \"string\"\n",
            "[bad section]\nx = 1",
            "spaced key = 1\n",
        ] {
            assert!(
                DoctorConfig::from_toml_str(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
