//! `doctor` — cross-run drift detection over drybell telemetry.
//!
//! ```text
//! doctor summarize --journal run.jsonl [--metrics m.json] [--lf-report r.json] [--json]
//! doctor baseline  --journal run.jsonl [--out results/BASELINE_run.json]
//! doctor check     --baseline results/BASELINE_run.json --journal run.jsonl [--json]
//! doctor bench     --file results/BENCH_obs_overhead.json [--json]
//! doctor live      127.0.0.1:9800 [--baseline results/BASELINE_run.json]
//! ```
//!
//! Exit codes: `0` clean, `1` drift detected (`check` only), `2` usage
//! or I/O error. Budgets come from `--config <doctor.toml>`, else
//! `./doctor.toml` when present, else the built-in defaults.

use drybell_doctor::{BenchReport, DoctorConfig, DriftReport, RunSummary};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
doctor — cross-run drift detection over drybell telemetry journals

USAGE:
    doctor summarize (--journal <p> | --summary <p>) [options]
    doctor baseline  (--journal <p> | --summary <p>) [--out <p>] [options]
    doctor check     --baseline <p> (--journal <p> | --summary <p>) [options]
    doctor bench     --file <p> [--config <p>] [--json]
    doctor live      <addr> [--baseline <p>] [--config <p>] [--json]

INPUT (exactly one of; `bench` instead takes --file, `live` an address):
    --journal <path>     drybell-obs JSONL journal to summarize
    --summary <path>     a previously written RunSummary JSON document
    --file <path>        a results/BENCH_*.json document to budget-gate
    <addr>               a --live snapshot endpoint, e.g. 127.0.0.1:9800

OPTIONS:
    --metrics <path>     merge a metrics snapshot (report_json output)
    --lf-report <path>   merge an LfReport JSON document
    --config <path>      doctor.toml budgets (default: ./doctor.toml if present)
    --out <path>         write the summary JSON here
                         (baseline default: results/BASELINE_run.json)
    --json               print machine-readable output
    --help               this text

EXIT CODES:
    0  clean    1  drift / over budget (check, bench)    2  usage / I/O error
";

struct Cli {
    command: String,
    journal: Option<PathBuf>,
    summary: Option<PathBuf>,
    metrics: Option<PathBuf>,
    lf_report: Option<PathBuf>,
    baseline: Option<PathBuf>,
    config: Option<PathBuf>,
    out: Option<PathBuf>,
    file: Option<PathBuf>,
    addr: Option<String>,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next() {
        Some(c) if c == "--help" || c == "-h" => return Err(String::new()),
        Some(c) => c.clone(),
        None => return Err("missing subcommand".to_string()),
    };
    if !matches!(
        command.as_str(),
        "summarize" | "baseline" | "check" | "bench" | "live"
    ) {
        return Err(format!("unknown subcommand {command:?}"));
    }
    let mut cli = Cli {
        command,
        journal: None,
        summary: None,
        metrics: None,
        lf_report: None,
        baseline: None,
        config: None,
        out: None,
        file: None,
        addr: None,
        json: false,
    };
    while let Some(flag) = it.next() {
        let mut path_arg = |slot: &mut Option<PathBuf>| -> Result<(), String> {
            let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            if slot.is_some() {
                return Err(format!("{flag} given twice"));
            }
            *slot = Some(PathBuf::from(value));
            Ok(())
        };
        match flag.as_str() {
            "--journal" => path_arg(&mut cli.journal)?,
            "--summary" => path_arg(&mut cli.summary)?,
            "--metrics" => path_arg(&mut cli.metrics)?,
            "--lf-report" => path_arg(&mut cli.lf_report)?,
            "--baseline" => path_arg(&mut cli.baseline)?,
            "--config" => path_arg(&mut cli.config)?,
            "--out" => path_arg(&mut cli.out)?,
            "--file" => path_arg(&mut cli.file)?,
            "--json" => cli.json = true,
            "--help" | "-h" => return Err(String::new()),
            other if cli.command == "live" && !other.starts_with('-') => {
                if cli.addr.is_some() {
                    return Err("live takes one <addr>".to_string());
                }
                cli.addr = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if cli.command == "live" {
        if cli.addr.is_none() {
            return Err("live needs an <addr> like 127.0.0.1:9800".to_string());
        }
        if cli.journal.is_some() || cli.summary.is_some() || cli.file.is_some() {
            return Err("live takes an <addr>, not --journal/--summary/--file".to_string());
        }
        return Ok(cli);
    }
    if cli.command == "bench" {
        if cli.file.is_none() {
            return Err("bench needs --file <path>".to_string());
        }
        if cli.journal.is_some() || cli.summary.is_some() {
            return Err("bench takes --file, not --journal/--summary".to_string());
        }
        return Ok(cli);
    }
    if cli.file.is_some() {
        return Err("--file is only for the bench subcommand".to_string());
    }
    match (&cli.journal, &cli.summary) {
        (None, None) => return Err("need --journal or --summary".to_string()),
        (Some(_), Some(_)) => {
            return Err("--journal and --summary are mutually exclusive".to_string())
        }
        _ => {}
    }
    if cli.command == "check" && cli.baseline.is_none() {
        return Err("check needs --baseline <path>".to_string());
    }
    Ok(cli)
}

fn load_json(path: &Path) -> Result<drybell_obs::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    drybell_obs::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_summary(cli: &Cli) -> Result<RunSummary, String> {
    let mut summary = if let Some(journal) = &cli.journal {
        let text =
            std::fs::read_to_string(journal).map_err(|e| format!("{}: {e}", journal.display()))?;
        RunSummary::from_journal_str(&text).map_err(|e| format!("{}: {e}", journal.display()))?
    } else {
        let path = cli.summary.as_ref().expect("validated in parse_args");
        RunSummary::from_json(&load_json(path)?).map_err(|e| format!("{}: {e}", path.display()))?
    };
    if let Some(path) = &cli.metrics {
        summary.merge_metrics_json(&load_json(path)?);
    }
    if let Some(path) = &cli.lf_report {
        summary.merge_lf_report_json(&load_json(path)?);
    }
    Ok(summary)
}

fn load_config(cli: &Cli) -> Result<DoctorConfig, String> {
    if let Some(path) = &cli.config {
        return DoctorConfig::from_path(path).map_err(|e| format!("{}: {e}", path.display()));
    }
    let implicit = Path::new("doctor.toml");
    if implicit.exists() {
        return DoctorConfig::from_path(implicit)
            .map_err(|e| format!("{}: {e}", implicit.display()));
    }
    Ok(DoctorConfig::default())
}

fn write_summary(summary: &RunSummary, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
    }
    let mut text = summary.to_json().to_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Pull `/snapshot` from a `--live` endpoint over plain HTTP/1.0.
fn fetch_snapshot(addr: &str) -> Result<drybell_obs::Json, String> {
    use std::io::{Read, Write};
    let timeout = std::time::Duration::from_secs(5);
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("{addr}: bad address: {e}"))?;
    let mut stream =
        std::net::TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("{addr}: {e}"))?;
    stream
        .write_all(format!("GET /snapshot HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}: {status}"));
    }
    drybell_obs::parse_json(body).map_err(|e| format!("{addr}: /snapshot: {e}"))
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    if cli.command == "live" {
        let addr = cli
            .addr
            .as_ref()
            .ok_or_else(|| "live: missing <addr> (validated in parse_args)".to_string())?;
        let snapshot = fetch_snapshot(addr)?;
        let mut summary = RunSummary::default();
        summary.merge_metrics_json(&snapshot);
        let Some(baseline_path) = &cli.baseline else {
            // No baseline: render the live process's state as-is.
            if cli.json {
                println!("{}", summary.to_json().to_pretty());
            } else {
                print!("{}", summary.to_text());
            }
            return Ok(ExitCode::SUCCESS);
        };
        let baseline = RunSummary::from_json(&load_json(baseline_path)?)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        let report = DriftReport::diff(&baseline, &summary, &load_config(cli)?);
        if cli.json {
            println!("{}", report.to_json().to_pretty());
        } else {
            print!("{}", report.to_table());
        }
        return Ok(if report.has_drift() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        });
    }
    if cli.command == "bench" {
        let path = cli.file.as_ref().expect("validated in parse_args");
        let report = BenchReport::gate(&load_json(path)?, &load_config(cli)?)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if cli.json {
            println!("{}", report.to_json().to_pretty());
        } else {
            print!("{}", report.to_table());
        }
        return Ok(if report.has_violation() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        });
    }
    let summary = load_summary(cli)?;
    match cli.command.as_str() {
        "summarize" => {
            if let Some(out) = &cli.out {
                write_summary(&summary, out)?;
                eprintln!("wrote {}", out.display());
            }
            if cli.json {
                println!("{}", summary.to_json().to_pretty());
            } else {
                print!("{}", summary.to_text());
            }
            Ok(ExitCode::SUCCESS)
        }
        "baseline" => {
            let out = cli
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from("results/BASELINE_run.json"));
            write_summary(&summary, &out)?;
            println!("baseline written to {}", out.display());
            if cli.json {
                println!("{}", summary.to_json().to_pretty());
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let baseline_path = cli.baseline.as_ref().expect("validated in parse_args");
            let baseline = RunSummary::from_json(&load_json(baseline_path)?)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
            let cfg = load_config(cli)?;
            let report = DriftReport::diff(&baseline, &summary, &cfg);
            if let Some(out) = &cli.out {
                write_summary(&summary, out)?;
            }
            if cli.json {
                println!("{}", report.to_json().to_pretty());
            } else {
                print!("{}", report.to_table());
            }
            if report.has_drift() {
                Ok(ExitCode::from(1))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cli) => match run(&cli) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("doctor: {msg}");
                ExitCode::from(2)
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("doctor: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
