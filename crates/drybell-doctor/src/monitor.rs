//! In-stream drift monitoring over rolling journal windows.
//!
//! The batch doctor (`doctor check`) diffs one *finished* run against a
//! baseline — drift surfaces at batch boundaries, hours after the
//! upstream resource started misbehaving. §3.3 of the DryBell paper
//! monitors labeling-function statistics *over time* precisely because
//! the organizational resources LFs lean on degrade mid-run. This
//! module closes that gap for streaming ingestion:
//!
//! * [`WindowFolder`] folds journal events (and periodic metric
//!   snapshots) into an accumulating [`RunSummary`] — the same folding
//!   `doctor baseline` uses, so a window is diffable against any
//!   checked-in baseline *and* against a baseline built from the
//!   stream's own healthy prefix.
//! * [`StreamMonitor`] closes a window every `window_events` journal
//!   events and runs [`DriftReport::diff`] on it immediately, so a
//!   degrading NLP server is flagged within a bounded number of
//!   *events*, not at the end of the run.
//!
//! Metric snapshots are cumulative (counters only go up), while a
//! window is a delta: folding raw counter values into a window would
//! mix lifetime vote totals with per-window example counts and report
//! coverage > 1 — spurious drift by construction. [`WindowFolder`]
//! therefore remembers the previous snapshot and folds only the
//! *difference*, while journal events (which are already per-execution
//! deltas) fold in directly.

use crate::config::DoctorConfig;
use crate::drift::DriftReport;
use crate::summary::RunSummary;
use crate::DoctorError;
use drybell_obs::{Json, MetricsSnapshot, Telemetry};
use std::collections::BTreeMap;

/// Folds journal events and metric-snapshot deltas into a
/// [`RunSummary`] covering one window of a stream.
///
/// Journal events are per-execution deltas and fold in directly (via
/// the same folding as `RunSummary::from_journal_str`, journal-gap
/// tracking included — a corrupt event mid-stream gates the window it
/// lands in). Metric snapshots are cumulative, so only the delta since
/// the previous snapshot is folded; the previous-value memory survives
/// [`WindowFolder::take`] so windows never double-count.
#[derive(Debug, Default)]
pub struct WindowFolder {
    summary: RunSummary,
    /// Last-seen cumulative values, keyed `"c/<name>"` for counters and
    /// `"g/<name>"` for gauges. Outlives individual windows.
    prev: BTreeMap<String, u64>,
    events: usize,
}

impl WindowFolder {
    /// An empty folder.
    pub fn new() -> WindowFolder {
        WindowFolder::default()
    }

    /// Journal events folded into the current (unclosed) window.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Fold one JSONL journal line.
    pub fn fold_line(&mut self, line: &str) -> Result<(), DoctorError> {
        let event = drybell_obs::parse_json(line).map_err(DoctorError::BadJson)?;
        self.fold_event(&event);
        Ok(())
    }

    /// Fold one already-parsed journal event.
    pub fn fold_event(&mut self, event: &Json) {
        let examples_before = self.summary.examples;
        self.summary.fold_event(event);
        // Batch folding takes the *max* of `lf_execution` example
        // counts because a batch journal's executions re-describe one
        // corpus. Stream shards are disjoint slices of the stream, so
        // a window's example count is the *sum* of its shards'.
        if event.get("kind").and_then(Json::as_str) == Some("lf_execution") {
            let shard_examples = event
                .get("examples")
                .and_then(Json::as_i64)
                .map(|v| v.max(0) as u64)
                .unwrap_or(0);
            self.summary.examples = examples_before + shard_examples;
        }
        self.events += 1;
    }

    /// Fold the delta since the previous snapshot of the per-LF
    /// counters (`votes/<lf>`, `lf/<lf>/degraded`).
    ///
    /// Scalar NLP health (`nlp_calls`, degradations, cache traffic) is
    /// deliberately *not* read from the snapshot: `lf_execution`
    /// journal events already carry those as per-execution deltas, and
    /// folding both sources would double-count.
    ///
    /// A cumulative counter that moves *backwards* means the producer
    /// restarted: the delta is clamped to zero (not underflowed into a
    /// huge spurious value), the reset is tallied into the window's
    /// `counter_resets` — which flags the window `info` at diff time —
    /// and the new lower value becomes the delta base. Returns the
    /// number of resets this snapshot exhibited.
    pub fn fold_metrics(&mut self, snapshot: &MetricsSnapshot) -> u64 {
        let mut resets = 0u64;
        for (name, value) in &snapshot.counters {
            let prev = self.prev.insert(format!("c/{name}"), *value).unwrap_or(0);
            if *value < prev {
                resets += 1;
                self.summary.counter_resets += 1;
                continue;
            }
            let delta = value.saturating_sub(prev);
            if delta == 0 {
                continue;
            }
            if let Some(lf) = name.strip_prefix("votes/") {
                let entry = self.summary.lfs.entry(lf.to_string()).or_default();
                *entry.votes.get_or_insert(0) += delta;
            } else if let Some(lf) = name
                .strip_prefix("lf/")
                .and_then(|rest| rest.strip_suffix("/degraded"))
            {
                self.summary.lfs.entry(lf.to_string()).or_default().degraded += delta;
            }
        }
        resets
    }

    /// Close the window: hand out its summary and start a fresh one.
    ///
    /// The run identity (schema, run id, config fingerprint) carries
    /// over — a `run_header` seen in window 1 still describes window 7
    /// — as does the cumulative-counter memory.
    pub fn take(&mut self) -> RunSummary {
        self.events = 0;
        let out = std::mem::take(&mut self.summary);
        self.summary.schema_version = out.schema_version;
        self.summary.run_id = out.run_id.clone();
        self.summary.config_fingerprint = out.config_fingerprint.clone();
        out
    }
}

/// One closed window's drift verdict.
#[derive(Debug)]
pub struct WindowVerdict {
    /// 1-based index of the window within the stream.
    pub window: u64,
    /// Journal events folded into this window.
    pub events: usize,
    /// The window's folded summary (what was diffed).
    pub summary: RunSummary,
    /// The drift verdicts for this window against the baseline.
    pub report: DriftReport,
}

impl WindowVerdict {
    /// Whether any verdict in this window gates.
    pub fn gates(&self) -> bool {
        self.report.has_drift()
    }
}

/// Rolling-window live monitor: folds a stream of journal events into
/// fixed-size windows and diffs each closed window against a baseline
/// the moment it closes.
///
/// The baseline should cover the *same window shape* — typically built
/// by running a healthy prefix of the stream through a
/// [`WindowFolder`] of the same size — so that signals absent from a
/// window (training, score distributions) are absent from both sides
/// and produce no verdict at all, rather than a spurious MISSING.
pub struct StreamMonitor {
    baseline: RunSummary,
    cfg: DoctorConfig,
    window_events: usize,
    folder: WindowFolder,
    windows_closed: u64,
    events_seen: u64,
    telemetry: Option<Telemetry>,
}

impl StreamMonitor {
    /// A monitor closing a window every `window_events` journal events
    /// (clamped to ≥ 1).
    pub fn new(baseline: RunSummary, cfg: DoctorConfig, window_events: usize) -> StreamMonitor {
        StreamMonitor {
            baseline,
            cfg,
            window_events: window_events.max(1),
            folder: WindowFolder::new(),
            windows_closed: 0,
            events_seen: 0,
            telemetry: None,
        }
    }

    /// Attach telemetry: every observed event bumps the
    /// `stream/events` counter.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> StreamMonitor {
        self.telemetry = Some(telemetry);
        self
    }

    /// Continue folding through `folder` instead of a fresh one.
    ///
    /// When the baseline was built by folding the stream's healthy
    /// prefix through a [`WindowFolder`] ([`WindowFolder::take`] hands
    /// out the baseline and keeps the folder alive), passing that same
    /// folder here carries its cumulative-counter memory forward — a
    /// fresh folder would treat the next metrics snapshot's lifetime
    /// totals as one window's delta and double-count the prefix.
    pub fn with_folder(mut self, folder: WindowFolder) -> StreamMonitor {
        self.folder = folder;
        self
    }

    /// Total journal events observed across all windows.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Windows closed (and therefore judged) so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Observe one JSONL journal line; returns the window verdict when
    /// this line closes a window.
    pub fn observe_line(&mut self, line: &str) -> Result<Option<WindowVerdict>, DoctorError> {
        let event = drybell_obs::parse_json(line).map_err(DoctorError::BadJson)?;
        Ok(self.observe_event(&event))
    }

    /// Observe one already-parsed journal event; returns the window
    /// verdict when this event closes a window.
    pub fn observe_event(&mut self, event: &Json) -> Option<WindowVerdict> {
        self.folder.fold_event(event);
        self.events_seen += 1;
        if let Some(t) = &self.telemetry {
            t.metrics().counter("stream/events").inc();
        }
        (self.folder.events() >= self.window_events).then(|| self.close_window())
    }

    /// Observe a cumulative metrics snapshot (delta-folded into the
    /// current window). Snapshots do not count toward the window size —
    /// they are a sampling side-channel, not stream progress. Counter
    /// resets (a restarted producer) bump `stream/counter_resets`.
    pub fn observe_metrics(&mut self, snapshot: &MetricsSnapshot) {
        let resets = self.folder.fold_metrics(snapshot);
        if resets > 0 {
            if let Some(t) = &self.telemetry {
                t.metrics().counter("stream/counter_resets").add(resets);
            }
        }
    }

    /// Close the current window even if short, judging whatever has
    /// accumulated. Returns `None` when the window is empty.
    pub fn flush(&mut self) -> Option<WindowVerdict> {
        (self.folder.events() > 0).then(|| self.close_window())
    }

    fn close_window(&mut self) -> WindowVerdict {
        let events = self.folder.events();
        let mut summary = self.folder.take();
        if summary.nlp_degraded == 0 {
            // Same floor as `from_journal_str`: per-LF degradations
            // seen only through counters still count as NLP trouble.
            summary.nlp_degraded = summary
                .lfs
                .values()
                .map(|lf| lf.degraded)
                .max()
                .unwrap_or(0);
        }
        self.windows_closed += 1;
        let report = DriftReport::diff(&self.baseline, &summary, &self.cfg);
        if report.has_drift() {
            if let Some(t) = &self.telemetry {
                // A gating window is a fault: capture the last-N-events
                // context while it is still resident.
                t.dump_flight("drift_window");
            }
        }
        WindowVerdict {
            window: self.windows_closed,
            events,
            summary,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::Status;
    use drybell_obs::MetricsRegistry;

    /// A healthy `lf_execution` event covering `examples` examples.
    fn lf_execution(examples: u64, degraded: u64) -> Json {
        let line = format!(
            "{{\"kind\":\"lf_execution\",\"seconds\":0.5,\"examples\":{examples},\
             \"nlp_calls\":{examples},\"nlp_degraded\":{degraded}}}"
        );
        drybell_obs::parse_json(&line).expect("test event parses")
    }

    /// Snapshot a registry whose cumulative counters stand at the given
    /// values.
    fn snapshot_at(votes: u64, degraded: u64) -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("votes/topic").add(votes);
        registry.counter("lf/topic/degraded").add(degraded);
        registry.snapshot()
    }

    fn window_baseline(events: usize, examples: u64, votes: u64) -> RunSummary {
        let mut folder = WindowFolder::new();
        for _ in 0..events {
            folder.fold_event(&lf_execution(examples, 0));
        }
        folder.fold_metrics(&snapshot_at(votes, 0));
        folder.take()
    }

    #[test]
    fn healthy_windows_close_on_schedule_and_stay_quiet() {
        let baseline = window_baseline(4, 100, 320);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 4);
        let mut verdicts = Vec::new();
        for shard in 0u64..8 {
            monitor.observe_metrics(&snapshot_at((shard + 1) * 80, 0));
            if let Some(v) = monitor.observe_event(&lf_execution(100, 0)) {
                verdicts.push(v);
            }
        }
        assert_eq!(verdicts.len(), 2, "8 events / window of 4");
        assert_eq!(monitor.events_seen(), 8);
        for v in &verdicts {
            assert_eq!(v.events, 4);
            assert!(
                !v.gates(),
                "healthy window {} gated: {}",
                v.window,
                v.report.to_table()
            );
        }
        // Per-window coverage came out of the counter *deltas*: four
        // shards × 80 votes over 400 examples, both windows alike.
        assert_eq!(verdicts[0].summary.lfs["topic"].votes, Some(320));
        assert_eq!(verdicts[1].summary.lfs["topic"].votes, Some(320));
        assert_eq!(verdicts[1].summary.examples, 400);
    }

    #[test]
    fn degraded_shard_gates_the_window_it_lands_in() {
        let baseline = window_baseline(4, 100, 320);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 4);
        // One healthy window, then an outage on the sixth shard.
        let mut flagged = None;
        for shard in 0u64..8 {
            let outage = shard == 5;
            let degraded = if outage { 40 } else { 0 };
            monitor.observe_metrics(&snapshot_at((shard + 1) * 80, if outage { 40 } else { 0 }));
            if let Some(v) = monitor.observe_event(&lf_execution(100, degraded)) {
                if v.gates() && flagged.is_none() {
                    flagged = Some(v);
                }
            }
        }
        let v = flagged.expect("outage window must gate");
        assert_eq!(v.window, 2, "flagged in the window containing the outage");
        let gating: Vec<&str> = v.report.gating().map(|g| g.signal.as_str()).collect();
        assert!(
            gating.contains(&"nlp/degraded"),
            "nlp/degraded should gate, got {gating:?}"
        );
        assert!(
            gating.contains(&"lf/topic/degraded"),
            "lf/topic/degraded should gate, got {gating:?}"
        );
        for g in v.report.gating() {
            assert!(
                matches!(g.status, Status::Drift | Status::Missing),
                "unexpected gating status {:?}",
                g.status
            );
        }
    }

    #[test]
    fn metric_deltas_never_double_count_across_windows() {
        let mut folder = WindowFolder::new();
        folder.fold_metrics(&snapshot_at(10, 0));
        folder.fold_event(&lf_execution(20, 0));
        let first = folder.take();
        assert_eq!(first.lfs["topic"].votes, Some(10));
        // The cumulative counter moved 10 → 25; the next window must
        // see 15, not 25.
        folder.fold_metrics(&snapshot_at(25, 0));
        folder.fold_event(&lf_execution(20, 0));
        let second = folder.take();
        assert_eq!(second.lfs["topic"].votes, Some(15));
        assert_eq!(folder.events(), 0, "events reset with the window");
        // Handing the folder to a monitor keeps the memory: the next
        // cumulative snapshot (25 → 40) folds as 15, not 40.
        let mut monitor = StreamMonitor::new(first, DoctorConfig::default(), 1).with_folder(folder);
        monitor.observe_metrics(&snapshot_at(40, 0));
        let v = monitor
            .observe_event(&lf_execution(20, 0))
            .expect("window of one closes per event");
        assert_eq!(v.summary.lfs["topic"].votes, Some(15));
    }

    #[test]
    fn corrupt_event_mid_stream_gates_its_window_as_missing() {
        let baseline = window_baseline(2, 100, 160);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 2);
        let truncated =
            drybell_obs::parse_json("{\"kind\":\"lf_execution\",\"seconds\":0.5}").unwrap();
        assert!(monitor.observe_event(&truncated).is_none());
        let v = monitor
            .observe_event(&lf_execution(100, 0))
            .expect("second event closes the window");
        let gating: Vec<&str> = v.report.gating().map(|g| g.signal.as_str()).collect();
        assert!(
            gating
                .iter()
                .any(|s| s.starts_with("journal/lf_execution.")),
            "journal gap should gate the window, got {gating:?}"
        );
    }

    /// A minimal `shadow` event carrying per-window score histograms.
    fn shadow_event(serving: &[u64], candidate: &[u64]) -> Json {
        let fmt = |d: &[u64]| {
            d.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let line = format!(
            "{{\"kind\":\"shadow\",\"score_dist/serving\":[{}],\"score_dist/candidate\":[{}],\
             \"invalid/serving\":0,\"invalid/candidate\":0}}",
            fmt(serving),
            fmt(candidate)
        );
        drybell_obs::parse_json(&line).expect("test event parses")
    }

    #[test]
    fn counter_reset_clamps_counts_and_flags_info() {
        let telemetry = Telemetry::new();
        let baseline = window_baseline(2, 100, 160);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 2)
            .with_telemetry(telemetry.clone());
        monitor.observe_metrics(&snapshot_at(80, 0));
        monitor.observe_event(&lf_execution(100, 0));
        // Producer restarted: the cumulative vote counter fell 80 → 20.
        monitor.observe_metrics(&snapshot_at(20, 0));
        // It resumes from the new base: 20 → 100 folds as 80, so the
        // window's total is 160 — same as the healthy baseline, not an
        // underflowed u64 and not the restarted counter double-counted.
        monitor.observe_metrics(&snapshot_at(100, 0));
        let v = monitor
            .observe_event(&lf_execution(100, 0))
            .expect("second event closes the window");
        assert_eq!(v.summary.lfs["topic"].votes, Some(160));
        assert_eq!(v.summary.counter_resets, 1);
        assert_eq!(
            telemetry
                .metrics()
                .snapshot()
                .counter("stream/counter_resets"),
            1
        );
        let reset = v
            .report
            .verdicts
            .iter()
            .find(|g| g.signal == "stream/counter_resets")
            .expect("reset verdict present");
        assert_eq!(reset.status, Status::Info, "resets inform, never gate");
        assert!(
            !v.gates(),
            "clamped window must not gate: {}",
            v.report.to_table()
        );
    }

    #[test]
    fn drifted_shadow_dist_gates_its_window_in_stream() {
        let stable = [40u64, 60, 80, 60, 40, 30, 30, 25, 20, 15];
        let shifted = [5u64, 5, 10, 20, 40, 60, 80, 70, 60, 50];
        // Baseline window: one lf_execution plus a healthy shadow
        // report, so both sides carry score dists and PSI is judged.
        let mut folder = WindowFolder::new();
        folder.fold_event(&lf_execution(100, 0));
        folder.fold_event(&shadow_event(&stable, &stable));
        let baseline = folder.take();
        let mut monitor =
            StreamMonitor::new(baseline, DoctorConfig::default(), 2).with_folder(folder);
        // Healthy window: identical distributions, PSI 0, quiet.
        monitor.observe_event(&lf_execution(100, 0));
        let v = monitor
            .observe_event(&shadow_event(&stable, &stable))
            .expect("window closes");
        assert!(!v.gates(), "healthy window gated: {}", v.report.to_table());
        // Candidate model's scores shift: the window's candidate PSI
        // blows the psi.score_dist budget while serving stays stable.
        monitor.observe_event(&lf_execution(100, 0));
        let v = monitor
            .observe_event(&shadow_event(&stable, &shifted))
            .expect("window closes");
        assert!(v.gates(), "shifted window must gate");
        let gating: Vec<&str> = v.report.gating().map(|g| g.signal.as_str()).collect();
        assert!(
            gating.contains(&"serving/score_dist_candidate"),
            "candidate score PSI should gate, got {gating:?}"
        );
        assert!(
            !gating.contains(&"serving/score_dist"),
            "serving dist unchanged, got {gating:?}"
        );
    }

    #[test]
    fn gating_window_triggers_a_flight_dump() {
        let dir = std::env::temp_dir().join(format!("doctor-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = drybell_obs::FlightRecorder::with_capacity(&dir, 32);
        let telemetry = Telemetry::new().with_flight(recorder.clone());
        let baseline = window_baseline(1, 100, 80);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 1)
            .with_telemetry(telemetry.clone());
        // Healthy window: no dump.
        telemetry.emit(drybell_obs::Event::new("phase").field("name", "healthy"));
        monitor.observe_metrics(&snapshot_at(80, 0));
        let v = monitor.observe_event(&lf_execution(100, 0)).unwrap();
        assert!(!v.gates());
        assert!(std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) == 0);
        // Degraded window: the DRIFT verdict dumps the ring.
        monitor.observe_metrics(&snapshot_at(160, 40));
        let v = monitor.observe_event(&lf_execution(100, 40)).unwrap();
        assert!(v.gates());
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(dumps.len(), 1, "one gating window, one dump");
        let text = std::fs::read_to_string(&dumps[0]).unwrap();
        assert!(text.contains("\"reason\":\"drift_window\""), "{text}");
        assert!(
            text.contains("\"kind\":\"phase\""),
            "ring context preserved: {text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_judges_a_partial_window_and_telemetry_counts_events() {
        let telemetry = Telemetry::new();
        let baseline = window_baseline(4, 100, 320);
        let mut monitor = StreamMonitor::new(baseline, DoctorConfig::default(), 4)
            .with_telemetry(telemetry.clone());
        assert!(monitor.flush().is_none(), "empty window flushes to None");
        monitor.observe_event(&lf_execution(100, 0));
        monitor.observe_event(&lf_execution(100, 0));
        let v = monitor.flush().expect("partial window still judged");
        assert_eq!(v.events, 2);
        assert_eq!(monitor.windows_closed(), 1);
        assert_eq!(
            telemetry.metrics().snapshot().counter("stream/events"),
            2,
            "stream/events counts observed events"
        );
        assert!(monitor.flush().is_none(), "flush drained the window");
    }
}
