//! Absolute budget gates over bench result documents.
//!
//! [`DriftReport`](crate::DriftReport) diffs two *runs*; some numbers
//! are instead budgeted against a fixed ceiling — most importantly the
//! observability stack's own overhead, which `exp_speed` measures into
//! `results/BENCH_obs_overhead.json`. `doctor bench --file <p>` loads
//! such a document, looks up the ceilings configured for its `bench`
//! tag, and fails the run when a gated value exceeds its budget.
//!
//! Budget keys live in the `[obs]` section of `doctor.toml` (e.g.
//! `train_overhead_pct = 10`), with built-in defaults so the gate works
//! out of the box. A negative budget disables the gate for that field,
//! exactly as elsewhere in the config.

use crate::drift::Status;
use crate::{DoctorConfig, DoctorError};
use drybell_obs::Json;

/// Whether a gated value must stay under its budget or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `value ≤ budget` passes (overheads, latencies).
    Ceiling,
    /// `value ≥ budget` passes (speedups, throughputs).
    Floor,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Ceiling => "ceiling",
            Direction::Floor => "floor",
        }
    }
}

/// Which fields gate, per bench document: `(bench tag, JSON field,
/// budget key, direction)`. These are absolute bounds, not deltas.
const GATED_FIELDS: &[(&str, &str, &str, Direction)] = &[
    (
        "obs_overhead",
        "train_overhead_pct",
        "obs.train_overhead_pct",
        Direction::Ceiling,
    ),
    (
        "obs_overhead",
        "lf_overhead_pct",
        "obs.lf_overhead_pct",
        Direction::Ceiling,
    ),
    ("serving", "p99_us", "serving.p99_us", Direction::Ceiling),
    (
        "serving",
        "batched_speedup",
        "serving.batched_speedup",
        Direction::Floor,
    ),
    (
        "streaming",
        "detect_events",
        "streaming.detect_events",
        Direction::Ceiling,
    ),
    (
        "streaming",
        "score_shift_detect_events",
        "streaming.detect_events",
        Direction::Ceiling,
    ),
    (
        "streaming",
        "nll_gap",
        "streaming.nll_gap",
        Direction::Ceiling,
    ),
];

/// One gated (or informational) value from a bench document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchVerdict {
    /// The JSON field the value came from.
    pub field: String,
    /// The measured value.
    pub value: f64,
    /// The ceiling judged against, if one is configured.
    pub budget: Option<f64>,
    /// `Ok`, `Drift` (out of budget), or `Info` (no budget).
    pub status: Status,
    /// The `doctor.toml` key the budget comes from.
    pub budget_key: String,
    /// Whether the budget is a ceiling or a floor.
    pub direction: Direction,
}

/// The outcome of gating one bench document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The document's `bench` tag.
    pub bench: String,
    /// Per-field verdicts, in gate-table order.
    pub verdicts: Vec<BenchVerdict>,
}

impl BenchReport {
    /// Judge `doc` (a `results/BENCH_*.json` document) against the
    /// ceilings in `cfg`. Errors when the document has no `bench` tag,
    /// no gates are defined for that tag, or a gated field is missing
    /// or non-numeric — a bench that silently stops reporting a gated
    /// number must not read as "within budget".
    pub fn gate(doc: &Json, cfg: &DoctorConfig) -> Result<BenchReport, DoctorError> {
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| DoctorError::BadSummary("bench document has no \"bench\" tag".into()))?
            .to_string();
        let gates: Vec<_> = GATED_FIELDS
            .iter()
            .filter(|(tag, _, _, _)| *tag == bench)
            .collect();
        if gates.is_empty() {
            return Err(DoctorError::BadSummary(format!(
                "no budget gates defined for bench {bench:?}"
            )));
        }
        let mut verdicts = Vec::with_capacity(gates.len());
        for &&(_, field, key, direction) in &gates {
            let value = doc.get(field).and_then(Json::as_f64).ok_or_else(|| {
                DoctorError::BadSummary(format!("bench {bench:?} is missing field {field:?}"))
            })?;
            let budget = cfg.budget(key);
            let status = match budget {
                Some(b) => {
                    let within = match direction {
                        Direction::Ceiling => value <= b,
                        Direction::Floor => value >= b,
                    };
                    if within {
                        Status::Ok
                    } else {
                        Status::Drift
                    }
                }
                None => Status::Info,
            };
            verdicts.push(BenchVerdict {
                field: field.to_string(),
                value,
                budget,
                status,
                budget_key: key.to_string(),
                direction,
            });
        }
        Ok(BenchReport { bench, verdicts })
    }

    /// True when any gated value exceeded its ceiling.
    pub fn has_violation(&self) -> bool {
        self.verdicts.iter().any(|v| v.status == Status::Drift)
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!("bench gate: {}\n", self.bench);
        out.push_str(&format!(
            "{:<24} {:>12} {:>12}  {}\n",
            "field", "value", "budget", "status"
        ));
        for v in &self.verdicts {
            let bound = match v.direction {
                Direction::Ceiling => "<=",
                Direction::Floor => ">=",
            };
            let budget = match v.budget {
                Some(b) => format!("{bound} {b:.2}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<24} {:>12.3} {:>12}  {}\n",
                v.field,
                v.value,
                budget,
                match v.status {
                    Status::Ok => "ok",
                    Status::Drift => "OUT OF BUDGET",
                    _ => "info",
                }
            ));
        }
        out
    }

    /// Render as a machine-readable JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", Json::from(self.bench.clone())),
            ("violation", Json::from(self.has_violation())),
            (
                "verdicts",
                Json::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("field", Json::from(v.field.clone())),
                                ("value", Json::from(v.value)),
                                ("budget", v.budget.map(Json::from).unwrap_or(Json::Null)),
                                ("budget_key", Json::from(v.budget_key.clone())),
                                ("direction", Json::from(v.direction.as_str())),
                                (
                                    "status",
                                    Json::from(match v.status {
                                        Status::Ok => "ok",
                                        Status::Drift => "drift",
                                        _ => "info",
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overhead_doc(train_pct: f64, lf_pct: f64) -> Json {
        Json::obj(vec![
            ("bench", Json::from("obs_overhead")),
            ("train_overhead_pct", Json::from(train_pct)),
            ("lf_overhead_pct", Json::from(lf_pct)),
            ("examples", Json::from(342_usize)),
        ])
    }

    #[test]
    fn within_budget_is_clean() {
        let report = BenchReport::gate(&overhead_doc(4.2, 1.1), &DoctorConfig::default()).unwrap();
        assert!(!report.has_violation());
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.verdicts.iter().all(|v| v.status == Status::Ok));
        assert!(report.to_table().contains("ok"));
    }

    #[test]
    fn over_budget_gates() {
        let cfg = DoctorConfig::default();
        let report = BenchReport::gate(&overhead_doc(66.7, 1.1), &cfg).unwrap();
        assert!(report.has_violation());
        let train = &report.verdicts[0];
        assert_eq!(train.field, "train_overhead_pct");
        assert_eq!(train.status, Status::Drift);
        assert_eq!(train.budget, Some(10.0));
        assert!(report.to_table().contains("OUT OF BUDGET"));
        assert_eq!(
            report.to_json().get("violation").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn toml_overrides_and_disables() {
        let cfg = DoctorConfig::from_toml_str("[obs]\ntrain_overhead_pct = 2\n").unwrap();
        assert!(BenchReport::gate(&overhead_doc(4.2, 1.1), &cfg)
            .unwrap()
            .has_violation());
        let off = DoctorConfig::from_toml_str("[obs]\ntrain_overhead_pct = -1\n").unwrap();
        let report = BenchReport::gate(&overhead_doc(66.7, 1.1), &off).unwrap();
        assert!(!report.has_violation(), "negative budget disables");
        assert_eq!(report.verdicts[0].status, Status::Info);
    }

    fn serving_doc(p99_us: f64, speedup: f64) -> Json {
        Json::obj(vec![
            ("bench", Json::from("serving")),
            ("p99_us", Json::from(p99_us)),
            ("batched_speedup", Json::from(speedup)),
        ])
    }

    #[test]
    fn serving_gates_p99_ceiling_and_speedup_floor() {
        let cfg = DoctorConfig::default();
        let clean = BenchReport::gate(&serving_doc(900.0, 2.5), &cfg).unwrap();
        assert!(!clean.has_violation(), "{}", clean.to_table());
        // p99 over its ceiling gates.
        let slow = BenchReport::gate(&serving_doc(80_000.0, 2.5), &cfg).unwrap();
        assert!(slow.has_violation());
        assert_eq!(slow.verdicts[0].field, "p99_us");
        assert_eq!(slow.verdicts[0].status, Status::Drift);
        // A speedup *below* its floor gates — the batched path
        // regressing to slower-than-one-at-a-time must fail CI even
        // though the value is small, not large.
        let regressed = BenchReport::gate(&serving_doc(900.0, 0.8), &cfg).unwrap();
        assert!(regressed.has_violation());
        let v = &regressed.verdicts[1];
        assert_eq!(v.field, "batched_speedup");
        assert_eq!(v.direction, Direction::Floor);
        assert_eq!(v.status, Status::Drift);
        assert!(regressed.to_table().contains(">= 1.00"));
        assert_eq!(
            regressed
                .to_json()
                .get("verdicts")
                .unwrap()
                .at(1)
                .unwrap()
                .get("direction")
                .and_then(Json::as_str),
            Some("floor")
        );
    }

    #[test]
    fn streaming_gates_detection_latency_and_nll_gap() {
        let cfg = DoctorConfig::default();
        let doc = |detect: f64, shift: f64, gap: f64| {
            Json::obj(vec![
                ("bench", Json::from("streaming")),
                ("detect_events", Json::from(detect)),
                ("score_shift_detect_events", Json::from(shift)),
                ("nll_gap", Json::from(gap)),
            ])
        };
        let clean = BenchReport::gate(&doc(3.0, 2.0, 0.01), &cfg).unwrap();
        assert!(!clean.has_violation(), "{}", clean.to_table());
        // The monitor taking too many events to flag a seeded outage
        // is exactly the regression this gate exists to catch.
        let late = BenchReport::gate(&doc(40.0, 2.0, 0.01), &cfg).unwrap();
        assert!(late.has_violation());
        assert_eq!(late.verdicts[0].field, "detect_events");
        assert_eq!(late.verdicts[0].status, Status::Drift);
        // A candidate-model score shift slipping past the shadow-PSI
        // window shares the same event budget.
        let slow_shift = BenchReport::gate(&doc(3.0, 40.0, 0.01), &cfg).unwrap();
        assert!(slow_shift.has_violation());
        assert_eq!(slow_shift.verdicts[1].field, "score_shift_detect_events");
        // An incremental fit drifting away from the batch refit gates.
        let diverged = BenchReport::gate(&doc(3.0, 2.0, 0.2), &cfg).unwrap();
        assert!(diverged.has_violation());
        assert_eq!(diverged.verdicts[2].field, "nll_gap");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let cfg = DoctorConfig::default();
        let no_tag = Json::obj(vec![("train_overhead_pct", Json::from(1.0))]);
        assert!(BenchReport::gate(&no_tag, &cfg).is_err());
        let unknown = Json::obj(vec![("bench", Json::from("mystery"))]);
        assert!(BenchReport::gate(&unknown, &cfg).is_err());
        let missing = Json::obj(vec![("bench", Json::from("obs_overhead"))]);
        assert!(
            BenchReport::gate(&missing, &cfg).is_err(),
            "a gated field vanishing must not pass"
        );
    }
}
