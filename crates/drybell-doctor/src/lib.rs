//! # drybell-doctor
//!
//! Cross-run observability: turn one run's telemetry (the `drybell-obs`
//! JSONL journal plus optional metrics / LF-report JSON snapshots) into
//! a typed [`RunSummary`], and diff two summaries into a [`DriftReport`]
//! with per-signal verdicts.
//!
//! §3.3 of the DryBell paper is explicit that labeling-function
//! statistics and learned accuracies are *monitored over time*: the
//! organizational resources LFs lean on (NLP servers, topic models,
//! knowledge graphs) evolve underneath them, and a silently degrading
//! source shows up first as a coverage or accuracy shift — not as a test
//! failure. This crate is that feedback loop for the reproduction:
//!
//! * [`summary::RunSummary`] — the diffable digest of one run:
//!   per-phase wall/busy time, straggler ratio, retries, NLP cache hit
//!   rate and degradations, per-LF coverage/overlap/conflict/learned
//!   accuracy, the training loss curve, and the serving score
//!   distribution.
//! * [`drift::DriftReport`] — per-signal verdicts from diffing two
//!   summaries: absolute/relative thresholds for scalars, a
//!   population-stability index ([`psi::psi`]) over histogram buckets
//!   for score and latency distributions, and per-LF deltas, all with
//!   budgets from a checked-in `doctor.toml` ([`config::DoctorConfig`]).
//! * [`monitor::StreamMonitor`] — the in-stream variant: folds live
//!   journal events into rolling windows ([`monitor::WindowFolder`])
//!   and runs the same drift verdicts on each window the moment it
//!   closes, so a degrading upstream resource is flagged within a
//!   bounded number of *events* instead of at the next batch boundary.
//! * `doctor` (the CLI in `src/bin/doctor.rs`) — `doctor baseline`
//!   captures a golden run to `results/BASELINE_run.json`; `doctor
//!   check --baseline …` exits nonzero on budget violations.
//!
//! Journals without a `run_header` event (written before
//! `drybell_obs::journal::SCHEMA_VERSION` existed) are read as schema
//! `0` — old artifacts stay diffable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bench;
pub mod config;
pub mod drift;
pub mod monitor;
pub mod psi;
pub mod summary;

pub use bench::{BenchReport, BenchVerdict};
pub use config::DoctorConfig;
pub use drift::{BudgetKind, DriftReport, Status, Verdict};
pub use monitor::{StreamMonitor, WindowFolder, WindowVerdict};
pub use psi::psi;
pub use summary::{LfSignals, PhaseSummary, RunSummary, TrainSummary, SUMMARY_SCHEMA};

/// Everything that can go wrong ingesting telemetry artifacts.
#[derive(Debug)]
pub enum DoctorError {
    /// Reading an artifact from disk failed.
    Io(std::io::Error),
    /// A journal line (1-based) failed to parse as JSON.
    BadJournalLine {
        /// 1-based line number within the journal.
        line: usize,
        /// The parser's diagnosis.
        source: drybell_obs::JsonError,
    },
    /// A JSON document failed to parse.
    BadJson(drybell_obs::JsonError),
    /// A summary document parsed but does not look like a [`RunSummary`].
    BadSummary(String),
    /// A `doctor.toml` budget file is malformed.
    BadConfig(String),
}

impl std::fmt::Display for DoctorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DoctorError::Io(e) => write!(f, "io error: {e}"),
            DoctorError::BadJournalLine { line, source } => {
                write!(f, "journal line {line}: {source}")
            }
            DoctorError::BadJson(e) => write!(f, "bad json: {e}"),
            DoctorError::BadSummary(msg) => write!(f, "bad summary: {msg}"),
            DoctorError::BadConfig(msg) => write!(f, "bad doctor.toml: {msg}"),
        }
    }
}

impl std::error::Error for DoctorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DoctorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DoctorError {
    fn from(e: std::io::Error) -> DoctorError {
        DoctorError::Io(e)
    }
}
