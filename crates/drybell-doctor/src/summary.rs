//! [`RunSummary`]: the diffable digest of one pipeline run.
//!
//! A summary is reconstructed from a `drybell-obs` JSONL journal
//! ([`RunSummary::from_journal_str`]) and optionally enriched with a
//! metrics snapshot (`Telemetry::report_json` / `metrics_to_json`
//! output, [`RunSummary::merge_metrics_json`]) and an `LfReport` JSON
//! document ([`RunSummary::merge_lf_report_json`]). The merged summary
//! serializes to one JSON document ([`RunSummary::to_json`] /
//! [`RunSummary::from_json`]) — the artifact `doctor baseline` checks
//! in and `doctor check` diffs against.

use crate::DoctorError;
use drybell_obs::Json;
use std::collections::BTreeMap;

/// Version stamp of the summary JSON layout itself (independent of the
/// journal's `drybell_obs::journal::SCHEMA_VERSION`).
pub const SUMMARY_SCHEMA: u32 = 1;

/// One MapReduce phase, as journaled by `JobStats::emit_to`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Owning job name.
    pub job: String,
    /// Phase name (`map`, `reduce`, …).
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Records entering the phase.
    pub records_in: u64,
    /// Records leaving the phase.
    pub records_out: u64,
}

/// Per-labeling-function signals, merged from journal events, job
/// counters, metrics gauges, and LF reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LfSignals {
    /// Fraction of examples voted on.
    pub coverage: Option<f64>,
    /// Fraction voted alongside another LF.
    pub overlap: Option<f64>,
    /// Fraction disagreeing with another voting LF.
    pub conflict: Option<f64>,
    /// The generative model's learned accuracy.
    pub learned_accuracy: Option<f64>,
    /// Non-abstain votes (job counters / metrics).
    pub votes: Option<u64>,
    /// Examples where the LF degraded to abstain (service outage).
    pub degraded: u64,
}

/// Generative-model training digest.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSummary {
    /// Optimizer steps taken.
    pub steps: u64,
    /// Epochs journaled.
    pub epochs: u64,
    /// Final negative log-likelihood.
    pub final_nll: f64,
    /// Per-epoch NLL curve (epochs that reported one).
    pub loss_curve: Vec<f64>,
}

/// The diffable digest of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Journal schema from the `run_header` event; `0` for journals
    /// written before the header existed.
    pub schema_version: u32,
    /// Caller-chosen run id (`"unknown"` for headerless journals).
    pub run_id: String,
    /// Config fingerprint from the header (empty if headerless).
    pub config_fingerprint: String,
    /// MapReduce phases, in journal order.
    pub phases: Vec<PhaseSummary>,
    /// Summed wall seconds of jobs, in-memory LF executions, and
    /// training.
    pub wall_seconds: f64,
    /// Summed per-worker busy seconds across jobs.
    pub busy_seconds: f64,
    /// Worst straggler ratio across jobs.
    pub straggler_ratio: Option<f64>,
    /// Shard/partition attempts that failed and were requeued.
    pub retries: u64,
    /// Records dropped under the skip budget.
    pub skipped_records: u64,
    /// Annotate requests reaching the NLP server.
    pub nlp_calls: u64,
    /// Examples where NLP degraded to abstain.
    pub nlp_degraded: u64,
    /// NLP memo-table hits.
    pub nlp_cache_hits: u64,
    /// NLP memo-table misses.
    pub nlp_cache_misses: u64,
    /// Examples the LF executor labeled.
    pub examples: u64,
    /// Per-LF signals, keyed by LF name.
    pub lfs: BTreeMap<String, LfSignals>,
    /// Training digest, if the run trained a label model.
    pub train: Option<TrainSummary>,
    /// Serving-model score distribution from the shadow path.
    pub score_dist_serving: Option<Vec<u64>>,
    /// Candidate-model score distribution from the shadow path.
    pub score_dist_candidate: Option<Vec<u64>>,
    /// NaN scores the serving model emitted during shadowing.
    pub score_invalid_serving: u64,
    /// NaN scores the candidate model emitted during shadowing.
    pub score_invalid_candidate: u64,
    /// End-model F1 from the `content_report` event.
    pub drybell_f1: Option<f64>,
    /// Latency histograms as sparse `(log bucket, count)` pairs, keyed
    /// by histogram name (merged from a metrics snapshot).
    pub latency: BTreeMap<String, Vec<(usize, u64)>>,
    /// Journal-integrity gaps seen while folding: `"<kind>.<field>"` →
    /// number of events of that kind whose required field was absent or
    /// carried a non-numeric value. Such fields used to fold in as
    /// `unwrap_or(0)` zeros — real-looking values manufactured from a
    /// corrupt journal — which read as a fake ok (or a spurious DRIFT
    /// against zero) downstream. Any gap gates `doctor check` as
    /// MISSING (see `DriftReport::diff`).
    pub journal_gaps: BTreeMap<String, u64>,
    /// Cumulative counters observed moving backwards while folding
    /// metric snapshots (a restarted producer; see
    /// `WindowFolder::fold_metrics`). Clamped rather than underflowed;
    /// flags the window `info` at diff time, never gates.
    pub counter_resets: u64,
}

impl RunSummary {
    /// NLP cache hit rate, when the run saw any cache traffic.
    pub fn nlp_cache_hit_rate(&self) -> Option<f64> {
        let total = self.nlp_cache_hits + self.nlp_cache_misses;
        (total > 0).then(|| self.nlp_cache_hits as f64 / total as f64)
    }

    /// Coverage for one LF: the LF-report value when present, else
    /// derived from vote counters over the example count.
    pub fn coverage_of(&self, name: &str) -> Option<f64> {
        let lf = self.lfs.get(name)?;
        lf.coverage.or_else(|| {
            let votes = lf.votes?;
            (self.examples > 0).then(|| votes as f64 / self.examples as f64)
        })
    }

    /// Fold a JSONL journal into a summary.
    ///
    /// Unknown event kinds are skipped (forward compatibility); a line
    /// that fails to parse is an error. A journal without a
    /// `run_header` first event reads as schema `0`, run id
    /// `"unknown"` — artifacts from before the header stay ingestible.
    pub fn from_journal_str(text: &str) -> Result<RunSummary, DoctorError> {
        let mut s = RunSummary {
            run_id: "unknown".to_string(),
            ..RunSummary::default()
        };
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event =
                drybell_obs::parse_json(line).map_err(|source| DoctorError::BadJournalLine {
                    line: idx + 1,
                    source,
                })?;
            s.fold_event(&event);
        }
        if s.nlp_degraded == 0 {
            // Sharded runs account degradations per-LF (job counters)
            // rather than per-example; the worst LF is the floor.
            s.nlp_degraded = s.lfs.values().map(|lf| lf.degraded).max().unwrap_or(0);
        }
        Ok(s)
    }

    pub(crate) fn fold_event(&mut self, e: &Json) {
        let kind = e.get("kind").and_then(Json::as_str).unwrap_or("");
        let f64_of = |key: &str| e.get(key).and_then(Json::as_f64);
        let u64_of = |key: &str| e.get(key).and_then(Json::as_i64).map(|v| v.max(0) as u64);
        // Required-field reads. A field an emitter always writes that is
        // absent — or present with a non-numeric value — is recorded as
        // a journal gap rather than silently folding in as zero. The
        // fold still uses the conservative fallback so partial journals
        // stay readable, but the gap makes the fabrication visible (and
        // gating) downstream instead of masquerading as a real value.
        let mut gaps: Vec<&'static str> = Vec::new();
        let req_f64 = |gaps: &mut Vec<&'static str>, key: &'static str| match e
            .get(key)
            .and_then(Json::as_f64)
        {
            Some(v) => v,
            None => {
                gaps.push(key);
                0.0
            }
        };
        let req_u64 = |gaps: &mut Vec<&'static str>, key: &'static str| match e
            .get(key)
            .and_then(Json::as_i64)
        {
            Some(v) => v.max(0) as u64,
            None => {
                gaps.push(key);
                0
            }
        };
        // Optional field: absence is legitimate (older journal shapes,
        // sampling knobs), but a present value that fails to parse as a
        // number is still a gap.
        let opt_f64 = |gaps: &mut Vec<&'static str>, key: &'static str| match e.get(key) {
            None => None,
            Some(v) => match v.as_f64() {
                Some(x) => Some(x),
                None => {
                    gaps.push(key);
                    None
                }
            },
        };
        let opt_u64 = |gaps: &mut Vec<&'static str>, key: &'static str| match e.get(key) {
            None => None,
            Some(v) => match v.as_i64() {
                Some(x) => Some(x.max(0) as u64),
                None => {
                    gaps.push(key);
                    None
                }
            },
        };
        match kind {
            "run_header" => {
                self.schema_version = u64_of("schema_version").unwrap_or(0) as u32;
                if let Some(id) = e.get("run_id").and_then(Json::as_str) {
                    self.run_id = id.to_string();
                }
                if let Some(fp) = e.get("config_fingerprint").and_then(Json::as_str) {
                    self.config_fingerprint = fp.to_string();
                }
            }
            "phase" => self.phases.push(PhaseSummary {
                job: e
                    .get("job")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                name: e
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                seconds: req_f64(&mut gaps, "seconds"),
                records_in: req_u64(&mut gaps, "records_in"),
                records_out: req_u64(&mut gaps, "records_out"),
            }),
            "job" => {
                self.wall_seconds += req_f64(&mut gaps, "seconds");
                if let Some(busy) = e.get("worker_busy") {
                    self.busy_seconds += busy.items().iter().filter_map(Json::as_f64).sum::<f64>();
                }
                if let Some(ratio) = opt_f64(&mut gaps, "straggler_ratio") {
                    let worst = self.straggler_ratio.unwrap_or(0.0).max(ratio);
                    self.straggler_ratio = Some(worst);
                }
                self.retries += u64_of("counters/dataflow/retries").unwrap_or(0);
                self.skipped_records += u64_of("counters/dataflow/skipped_records").unwrap_or(0);
                self.nlp_calls += u64_of("counters/nlp_calls").unwrap_or(0);
                self.nlp_cache_hits += u64_of("counters/nlp_cache/hits").unwrap_or(0);
                self.nlp_cache_misses += u64_of("counters/nlp_cache/misses").unwrap_or(0);
                self.examples = self.examples.max(req_u64(&mut gaps, "records_in"));
                if let Json::Obj(fields) = e {
                    for (key, value) in fields {
                        let Some(count) = value.as_i64().map(|v| v.max(0) as u64) else {
                            continue;
                        };
                        if let Some(lf) = key.strip_prefix("counters/votes/") {
                            let entry = self.lfs.entry(lf.to_string()).or_default();
                            entry.votes = Some(entry.votes.unwrap_or(0) + count);
                        } else if let Some(rest) = key.strip_prefix("counters/lf/") {
                            if let Some(lf) = rest.strip_suffix("/degraded") {
                                self.lfs.entry(lf.to_string()).or_default().degraded += count;
                            }
                        }
                    }
                }
            }
            "lf_execution" => {
                self.wall_seconds += req_f64(&mut gaps, "seconds");
                self.nlp_calls += req_u64(&mut gaps, "nlp_calls");
                self.nlp_degraded += req_u64(&mut gaps, "nlp_degraded");
                self.nlp_cache_hits += u64_of("nlp_cache/hits").unwrap_or(0);
                self.nlp_cache_misses += u64_of("nlp_cache/misses").unwrap_or(0);
                self.examples = self.examples.max(req_u64(&mut gaps, "examples"));
            }
            "train_epoch" => {
                if let Some(nll) = opt_f64(&mut gaps, "nll") {
                    let curve = &mut self
                        .train
                        .get_or_insert_with(|| TrainSummary {
                            steps: 0,
                            epochs: 0,
                            final_nll: f64::NAN,
                            loss_curve: Vec::new(),
                        })
                        .loss_curve;
                    curve.push(nll);
                }
            }
            "train" => {
                self.wall_seconds += req_f64(&mut gaps, "seconds");
                let curve = self.train.take().map(|t| t.loss_curve).unwrap_or_default();
                let final_nll = match f64_of("final_nll") {
                    Some(v) => v,
                    None => {
                        // NaN (not 0.0): a fabricated zero NLL would
                        // read as a perfect fit.
                        gaps.push("final_nll");
                        f64::NAN
                    }
                };
                self.train = Some(TrainSummary {
                    steps: req_u64(&mut gaps, "steps"),
                    epochs: req_u64(&mut gaps, "epochs"),
                    final_nll,
                    loss_curve: curve,
                });
            }
            "lf_report" => {
                if let Some(lfs) = e.get("lfs") {
                    for item in lfs.items() {
                        let Some(name) = item.get("name").and_then(Json::as_str) else {
                            continue;
                        };
                        let entry = self.lfs.entry(name.to_string()).or_default();
                        entry.coverage = item.get("coverage").and_then(Json::as_f64);
                        entry.overlap = item.get("overlap").and_then(Json::as_f64);
                        entry.conflict = item.get("conflict").and_then(Json::as_f64);
                        entry.learned_accuracy =
                            item.get("learned_accuracy").and_then(Json::as_f64);
                    }
                }
            }
            "shadow" => {
                let dist = |key: &str| -> Option<Vec<u64>> {
                    let arr = e.get(key)?;
                    matches!(arr, Json::Arr(_)).then(|| {
                        arr.items()
                            .iter()
                            .filter_map(Json::as_i64)
                            .map(|v| v.max(0) as u64)
                            .collect()
                    })
                };
                for key in ["score_dist/serving", "score_dist/candidate"] {
                    if matches!(e.get(key), Some(v) if !matches!(v, Json::Arr(_))) {
                        gaps.push(key);
                    }
                }
                if let Some(d) = dist("score_dist/serving") {
                    self.score_dist_serving = Some(d);
                }
                if let Some(d) = dist("score_dist/candidate") {
                    self.score_dist_candidate = Some(d);
                }
                // Older journals predate the invalid counters; absence
                // is an old shape, not corruption.
                self.score_invalid_serving += opt_u64(&mut gaps, "invalid/serving").unwrap_or(0);
                self.score_invalid_candidate +=
                    opt_u64(&mut gaps, "invalid/candidate").unwrap_or(0);
            }
            "content_report" => {
                if let Some(f1) = opt_f64(&mut gaps, "drybell_f1") {
                    self.drybell_f1 = Some(f1);
                }
            }
            _ => {}
        }
        for field in gaps {
            *self
                .journal_gaps
                .entry(format!("{kind}.{field}"))
                .or_insert(0) += 1;
        }
    }

    /// Merge a metrics snapshot (either `metrics_to_json` output or a
    /// full `Telemetry::report_json` document with a `metrics` section):
    /// vote counters, per-LF degraded counters, cache gauges, the ppm
    /// LF-signal gauges, and latency histogram buckets.
    pub fn merge_metrics_json(&mut self, doc: &Json) {
        let metrics = doc.get("metrics").unwrap_or(doc);
        if let Some(Json::Obj(counters)) = metrics.get("counters") {
            for (key, value) in counters {
                let Some(count) = value.as_i64().map(|v| v.max(0) as u64) else {
                    continue;
                };
                if let Some(lf) = key.strip_prefix("votes/") {
                    let entry = self.lfs.entry(lf.to_string()).or_default();
                    entry.votes = Some(entry.votes.unwrap_or(0).max(count));
                } else if let Some(rest) = key.strip_prefix("lf/") {
                    if let Some(lf) = rest.strip_suffix("/degraded") {
                        let entry = self.lfs.entry(lf.to_string()).or_default();
                        entry.degraded = entry.degraded.max(count);
                    }
                } else if key == "nlp_calls" {
                    self.nlp_calls = self.nlp_calls.max(count);
                }
            }
        }
        if let Some(Json::Obj(gauges)) = metrics.get("gauges") {
            for (key, value) in gauges {
                let Some(v) = value.as_i64() else { continue };
                match key.as_str() {
                    "nlp_cache/hits" => {
                        self.nlp_cache_hits = self.nlp_cache_hits.max(v.max(0) as u64)
                    }
                    "nlp_cache/misses" => {
                        self.nlp_cache_misses = self.nlp_cache_misses.max(v.max(0) as u64)
                    }
                    _ => {
                        let Some(rest) = key.strip_prefix("lf/") else {
                            continue;
                        };
                        let ppm = v as f64 / 1e6;
                        if let Some(lf) = rest.strip_suffix("/coverage_ppm") {
                            self.lfs.entry(lf.to_string()).or_default().coverage = Some(ppm);
                        } else if let Some(lf) = rest.strip_suffix("/overlap_ppm") {
                            self.lfs.entry(lf.to_string()).or_default().overlap = Some(ppm);
                        } else if let Some(lf) = rest.strip_suffix("/conflict_ppm") {
                            self.lfs.entry(lf.to_string()).or_default().conflict = Some(ppm);
                        } else if let Some(lf) = rest.strip_suffix("/learned_accuracy_ppm") {
                            self.lfs.entry(lf.to_string()).or_default().learned_accuracy =
                                Some(ppm);
                        }
                    }
                }
            }
        }
        if let Some(Json::Obj(histograms)) = metrics.get("histograms") {
            for (key, value) in histograms {
                let Some(Json::Arr(buckets)) = value.get("buckets") else {
                    continue;
                };
                let sparse: Vec<(usize, u64)> = buckets
                    .iter()
                    .filter_map(|pair| {
                        let i = pair.at(0)?.as_i64()?;
                        let n = pair.at(1)?.as_i64()?;
                        (i >= 0 && n > 0).then_some((i as usize, n as u64))
                    })
                    .collect();
                if !sparse.is_empty() {
                    self.latency.insert(key.clone(), sparse);
                }
            }
        }
    }

    /// Merge an `LfReport::to_json` document (the `lf_diagnostics`
    /// `--json` payload): per-LF coverage/overlap/conflict/accuracy.
    pub fn merge_lf_report_json(&mut self, doc: &Json) {
        // Accept both the bare report and an event-shaped wrapper.
        let report = if doc.get("lfs").is_some() {
            doc
        } else if let Some(inner) = doc.get("report") {
            inner
        } else {
            doc
        };
        self.fold_lf_report(report);
    }

    fn fold_lf_report(&mut self, report: &Json) {
        let Some(lfs) = report.get("lfs") else { return };
        for item in lfs.items() {
            let Some(name) = item.get("name").and_then(Json::as_str) else {
                continue;
            };
            let entry = self.lfs.entry(name.to_string()).or_default();
            entry.coverage = item
                .get("coverage")
                .and_then(Json::as_f64)
                .or(entry.coverage);
            entry.overlap = item.get("overlap").and_then(Json::as_f64).or(entry.overlap);
            entry.conflict = item
                .get("conflict")
                .and_then(Json::as_f64)
                .or(entry.conflict);
            entry.learned_accuracy = item
                .get("learned_accuracy")
                .and_then(Json::as_f64)
                .or(entry.learned_accuracy);
        }
    }

    /// Serialize to the `BASELINE_run.json` document shape.
    pub fn to_json(&self) -> Json {
        let opt_f64 = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let opt_dist = |d: &Option<Vec<u64>>| {
            d.as_ref()
                .map(|d| Json::Arr(d.iter().map(|&n| Json::from(n)).collect()))
                .unwrap_or(Json::Null)
        };
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("job", Json::from(p.job.as_str())),
                        ("name", Json::from(p.name.as_str())),
                        ("seconds", Json::Num(p.seconds)),
                        ("records_in", Json::from(p.records_in)),
                        ("records_out", Json::from(p.records_out)),
                    ])
                })
                .collect(),
        );
        let lfs = Json::Obj(
            self.lfs
                .iter()
                .map(|(name, lf)| {
                    (
                        name.clone(),
                        Json::obj(vec![
                            ("coverage", opt_f64(lf.coverage)),
                            ("overlap", opt_f64(lf.overlap)),
                            ("conflict", opt_f64(lf.conflict)),
                            ("learned_accuracy", opt_f64(lf.learned_accuracy)),
                            ("votes", lf.votes.map(Json::from).unwrap_or(Json::Null)),
                            ("degraded", Json::from(lf.degraded)),
                        ]),
                    )
                })
                .collect(),
        );
        let train = self
            .train
            .as_ref()
            .map(|t| {
                Json::obj(vec![
                    ("steps", Json::from(t.steps)),
                    ("epochs", Json::from(t.epochs)),
                    ("final_nll", Json::Num(t.final_nll)),
                    (
                        "loss_curve",
                        Json::Arr(t.loss_curve.iter().map(|&x| Json::Num(x)).collect()),
                    ),
                ])
            })
            .unwrap_or(Json::Null);
        let latency = Json::Obj(
            self.latency
                .iter()
                .map(|(name, sparse)| {
                    (
                        name.clone(),
                        Json::Arr(
                            sparse
                                .iter()
                                .map(|&(i, n)| Json::Arr(vec![Json::from(i), Json::from(n)]))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("summary_schema", Json::from(SUMMARY_SCHEMA)),
            ("schema_version", Json::from(self.schema_version)),
            ("run_id", Json::from(self.run_id.as_str())),
            (
                "config_fingerprint",
                Json::from(self.config_fingerprint.as_str()),
            ),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("busy_seconds", Json::Num(self.busy_seconds)),
            ("straggler_ratio", opt_f64(self.straggler_ratio)),
            ("retries", Json::from(self.retries)),
            ("skipped_records", Json::from(self.skipped_records)),
            ("nlp_calls", Json::from(self.nlp_calls)),
            ("nlp_degraded", Json::from(self.nlp_degraded)),
            ("nlp_cache_hits", Json::from(self.nlp_cache_hits)),
            ("nlp_cache_misses", Json::from(self.nlp_cache_misses)),
            ("examples", Json::from(self.examples)),
            ("phases", phases),
            ("lfs", lfs),
            ("train", train),
            ("score_dist_serving", opt_dist(&self.score_dist_serving)),
            ("score_dist_candidate", opt_dist(&self.score_dist_candidate)),
            (
                "score_invalid_serving",
                Json::from(self.score_invalid_serving),
            ),
            (
                "score_invalid_candidate",
                Json::from(self.score_invalid_candidate),
            ),
            ("drybell_f1", opt_f64(self.drybell_f1)),
            ("latency", latency),
            (
                "journal_gaps",
                Json::Obj(
                    self.journal_gaps
                        .iter()
                        .map(|(key, &n)| (key.clone(), Json::from(n)))
                        .collect(),
                ),
            ),
            ("counter_resets", Json::from(self.counter_resets)),
        ])
    }

    /// Parse a summary document back. Missing fields default (so older
    /// summaries load under newer doctors); a document without the
    /// `summary_schema` stamp is rejected as not-a-summary.
    pub fn from_json(doc: &Json) -> Result<RunSummary, DoctorError> {
        let schema = doc
            .get("summary_schema")
            .and_then(Json::as_i64)
            .ok_or_else(|| {
                DoctorError::BadSummary("missing summary_schema (not a RunSummary document)".into())
            })?;
        if schema < 1 || schema > i64::from(SUMMARY_SCHEMA) {
            return Err(DoctorError::BadSummary(format!(
                "summary_schema {schema} unsupported (this doctor reads ≤ {SUMMARY_SCHEMA})"
            )));
        }
        let str_of = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let u64_of = |key: &str| {
            doc.get(key)
                .and_then(Json::as_i64)
                .map(|v| v.max(0) as u64)
                .unwrap_or(0)
        };
        let f64_of = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let opt_f64 = |key: &str| doc.get(key).and_then(Json::as_f64);
        let dist_of = |key: &str| -> Option<Vec<u64>> {
            match doc.get(key) {
                Some(Json::Arr(items)) => Some(
                    items
                        .iter()
                        .filter_map(Json::as_i64)
                        .map(|v| v.max(0) as u64)
                        .collect(),
                ),
                _ => None,
            }
        };
        let mut s = RunSummary {
            schema_version: u64_of("schema_version") as u32,
            run_id: str_of("run_id"),
            config_fingerprint: str_of("config_fingerprint"),
            wall_seconds: f64_of("wall_seconds"),
            busy_seconds: f64_of("busy_seconds"),
            straggler_ratio: opt_f64("straggler_ratio"),
            retries: u64_of("retries"),
            skipped_records: u64_of("skipped_records"),
            nlp_calls: u64_of("nlp_calls"),
            nlp_degraded: u64_of("nlp_degraded"),
            nlp_cache_hits: u64_of("nlp_cache_hits"),
            nlp_cache_misses: u64_of("nlp_cache_misses"),
            examples: u64_of("examples"),
            score_dist_serving: dist_of("score_dist_serving"),
            score_dist_candidate: dist_of("score_dist_candidate"),
            score_invalid_serving: u64_of("score_invalid_serving"),
            score_invalid_candidate: u64_of("score_invalid_candidate"),
            drybell_f1: opt_f64("drybell_f1"),
            counter_resets: u64_of("counter_resets"),
            ..RunSummary::default()
        };
        if s.run_id.is_empty() {
            s.run_id = "unknown".to_string();
        }
        if let Some(phases) = doc.get("phases") {
            for p in phases.items() {
                s.phases.push(PhaseSummary {
                    job: p
                        .get("job")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    name: p
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    seconds: p.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                    records_in: p
                        .get("records_in")
                        .and_then(Json::as_i64)
                        .map(|v| v.max(0) as u64)
                        .unwrap_or(0),
                    records_out: p
                        .get("records_out")
                        .and_then(Json::as_i64)
                        .map(|v| v.max(0) as u64)
                        .unwrap_or(0),
                });
            }
        }
        if let Some(Json::Obj(lfs)) = doc.get("lfs") {
            for (name, lf) in lfs {
                s.lfs.insert(
                    name.clone(),
                    LfSignals {
                        coverage: lf.get("coverage").and_then(Json::as_f64),
                        overlap: lf.get("overlap").and_then(Json::as_f64),
                        conflict: lf.get("conflict").and_then(Json::as_f64),
                        learned_accuracy: lf.get("learned_accuracy").and_then(Json::as_f64),
                        votes: lf
                            .get("votes")
                            .and_then(Json::as_i64)
                            .map(|v| v.max(0) as u64),
                        degraded: lf
                            .get("degraded")
                            .and_then(Json::as_i64)
                            .map(|v| v.max(0) as u64)
                            .unwrap_or(0),
                    },
                );
            }
        }
        if let Some(train) = doc.get("train") {
            if !train.is_null() {
                s.train = Some(TrainSummary {
                    steps: train
                        .get("steps")
                        .and_then(Json::as_i64)
                        .map(|v| v.max(0) as u64)
                        .unwrap_or(0),
                    epochs: train
                        .get("epochs")
                        .and_then(Json::as_i64)
                        .map(|v| v.max(0) as u64)
                        .unwrap_or(0),
                    final_nll: train
                        .get("final_nll")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::NAN),
                    loss_curve: train
                        .get("loss_curve")
                        .map(|c| c.items().iter().filter_map(Json::as_f64).collect())
                        .unwrap_or_default(),
                });
            }
        }
        if let Some(Json::Obj(latency)) = doc.get("latency") {
            for (name, sparse) in latency {
                let buckets: Vec<(usize, u64)> = sparse
                    .items()
                    .iter()
                    .filter_map(|pair| {
                        let i = pair.at(0)?.as_i64()?;
                        let n = pair.at(1)?.as_i64()?;
                        (i >= 0 && n >= 0).then_some((i as usize, n as u64))
                    })
                    .collect();
                s.latency.insert(name.clone(), buckets);
            }
        }
        if let Some(Json::Obj(gaps)) = doc.get("journal_gaps") {
            for (key, value) in gaps {
                if let Some(n) = value.as_i64() {
                    s.journal_gaps.insert(key.clone(), n.max(0) as u64);
                }
            }
        }
        Ok(s)
    }

    /// A terse human-readable rendering (the `doctor summarize` output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run {} (journal schema {}, fingerprint {})\n",
            self.run_id,
            self.schema_version,
            if self.config_fingerprint.is_empty() {
                "-"
            } else {
                &self.config_fingerprint
            }
        ));
        out.push_str(&format!(
            "examples {}  wall {:.3}s  busy {:.3}s  straggler {}\n",
            self.examples,
            self.wall_seconds,
            self.busy_seconds,
            self.straggler_ratio
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".to_string()),
        ));
        out.push_str(&format!(
            "retries {}  skipped {}  nlp calls {}  degraded {}  cache hit rate {}\n",
            self.retries,
            self.skipped_records,
            self.nlp_calls,
            self.nlp_degraded,
            self.nlp_cache_hit_rate()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "-".to_string()),
        ));
        if let Some(t) = &self.train {
            out.push_str(&format!(
                "train: {} steps, {} epochs, final nll {:.4}\n",
                t.steps, t.epochs, t.final_nll
            ));
        }
        if let Some(f1) = self.drybell_f1 {
            out.push_str(&format!("drybell f1: {f1:.4}\n"));
        }
        if !self.lfs.is_empty() {
            out.push_str(&format!(
                "{:<24} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}\n",
                "LF", "cover", "overlap", "conflict", "acc(gen)", "votes", "degraded"
            ));
            let fr = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
            for (name, lf) in &self.lfs {
                out.push_str(&format!(
                    "{:<24} {:>8} {:>8} {:>8} {:>9} {:>8} {:>9}\n",
                    name,
                    fr(self.coverage_of(name)),
                    fr(lf.overlap),
                    fr(lf.conflict),
                    fr(lf.learned_accuracy),
                    lf.votes
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".into()),
                    lf.degraded,
                ));
            }
        }
        if let Some(d) = &self.score_dist_serving {
            out.push_str(&format!("score dist (serving): {d:?}\n"));
        }
        if self.score_invalid_serving + self.score_invalid_candidate > 0 {
            out.push_str(&format!(
                "INVALID (NaN) scores: serving {}, candidate {}\n",
                self.score_invalid_serving, self.score_invalid_candidate
            ));
        }
        if !self.journal_gaps.is_empty() {
            let total: u64 = self.journal_gaps.values().sum();
            out.push_str(&format!(
                "JOURNAL GAPS ({total} absent/malformed required fields):\n"
            ));
            for (key, n) in &self.journal_gaps {
                out.push_str(&format!("  {key} x{n}\n"));
            }
        }
        if self.counter_resets > 0 {
            out.push_str(&format!(
                "counter resets (producer restarts): {}\n",
                self.counter_resets
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden_journal() -> String {
        [
            r#"{"seq":0,"t":0.0,"kind":"run_header","schema_version":1,"run_id":"golden","config_fingerprint":"abcd"}"#,
            r#"{"seq":1,"t":0.1,"kind":"phase","job":"lfs","name":"map","seconds":0.4,"records_in":800,"records_out":800}"#,
            r#"{"seq":2,"t":0.5,"kind":"job","name":"lfs","records_in":800,"records_out":800,"seconds":0.5,"workers":2,"straggler_ratio":1.1,"spill_bytes":0,"worker_busy":[0.2,0.25],"counters/nlp_calls":800,"counters/votes/kw":230,"counters/votes/nlp_person":520,"counters/lf/nlp_person/degraded":3,"counters/nlp_cache/hits":600,"counters/nlp_cache/misses":200,"counters/dataflow/retries":1}"#,
            r#"{"seq":3,"t":0.6,"kind":"train_epoch","epoch":0,"steps":100,"nll":0.693,"seconds":0.05}"#,
            r#"{"seq":4,"t":0.7,"kind":"train_epoch","epoch":1,"steps":100,"nll":0.51,"seconds":0.05}"#,
            r#"{"seq":5,"t":0.8,"kind":"train","steps":200,"epochs":2,"final_nll":0.43,"seconds":0.1,"steps_per_sec":2000.0,"rows":1600,"rows_per_sec":16000.0}"#,
            r#"{"seq":6,"t":0.9,"kind":"lf_report","label_density":0.8,"lfs":[{"index":0,"name":"kw","coverage":0.29,"overlap":0.2,"conflict":0.05,"learned_accuracy":0.9,"learned_propensity":0.3,"empirical_accuracy":null},{"index":1,"name":"nlp_person","coverage":0.65,"overlap":0.2,"conflict":0.04,"learned_accuracy":0.88,"learned_propensity":0.6,"empirical_accuracy":null}]}"#,
            r#"{"seq":7,"t":1.0,"kind":"shadow","examples":400,"decision_flips":4,"flip_rate":0.01,"new_positives":2,"new_negatives":2,"mean_abs_gap":0.02,"max_abs_gap":0.4,"score_dist/serving":[40,60,80,60,40,30,30,25,20,15],"score_dist/candidate":[42,58,80,61,39,30,30,25,20,15],"invalid/serving":0,"invalid/candidate":2}"#,
            r#"{"seq":8,"t":1.1,"kind":"content_report","task":"Topic","examples":800,"baseline_f1":0.5,"generative_f1":0.6,"drybell_f1":0.7,"drybell_precision":0.8,"drybell_recall":0.62,"lf_seconds":0.5}"#,
        ]
        .join("\n")
    }

    #[test]
    fn journal_folds_into_a_summary() {
        let s = RunSummary::from_journal_str(&golden_journal()).unwrap();
        assert_eq!(s.schema_version, 1);
        assert_eq!(s.run_id, "golden");
        assert_eq!(s.config_fingerprint, "abcd");
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "map");
        assert_eq!(s.examples, 800);
        assert_eq!(s.retries, 1);
        assert_eq!(s.nlp_calls, 800);
        assert_eq!(s.nlp_cache_hits, 600);
        assert!((s.nlp_cache_hit_rate().unwrap() - 0.75).abs() < 1e-12);
        assert!((s.busy_seconds - 0.45).abs() < 1e-12);
        assert_eq!(s.straggler_ratio, Some(1.1));
        // Per-LF merge: counters + lf_report.
        let nlp = &s.lfs["nlp_person"];
        assert_eq!(nlp.votes, Some(520));
        assert_eq!(nlp.degraded, 3);
        assert_eq!(nlp.coverage, Some(0.65));
        // Sharded runs floor run-level degradations at the worst LF.
        assert_eq!(s.nlp_degraded, 3);
        let t = s.train.as_ref().unwrap();
        assert_eq!(t.steps, 200);
        assert_eq!(t.loss_curve, vec![0.693, 0.51]);
        assert!((t.final_nll - 0.43).abs() < 1e-12);
        assert_eq!(s.score_dist_serving.as_ref().unwrap().len(), 10);
        assert_eq!(s.score_invalid_serving, 0);
        assert_eq!(s.score_invalid_candidate, 2);
        assert_eq!(s.drybell_f1, Some(0.7));
        // wall = job + train seconds.
        assert!((s.wall_seconds - 0.6).abs() < 1e-12);
    }

    #[test]
    fn headerless_journals_read_as_schema_zero() {
        let text: String = golden_journal()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        let s = RunSummary::from_journal_str(&text).unwrap();
        assert_eq!(s.schema_version, 0);
        assert_eq!(s.run_id, "unknown");
        assert_eq!(s.config_fingerprint, "");
        assert_eq!(s.examples, 800);
    }

    #[test]
    fn unparseable_lines_are_rejected_with_the_line_number() {
        let text = format!("{}\nnot json\n", golden_journal());
        match RunSummary::from_journal_str(&text) {
            Err(crate::DoctorError::BadJournalLine { line, .. }) => assert_eq!(line, 10),
            other => panic!("expected BadJournalLine, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_kinds_are_skipped() {
        let text = r#"{"seq":0,"t":0.0,"kind":"future_thing","x":1}"#;
        let s = RunSummary::from_journal_str(text).unwrap();
        assert_eq!(s.examples, 0);
    }

    #[test]
    fn summary_json_round_trips() {
        let s = RunSummary::from_journal_str(&golden_journal()).unwrap();
        let doc = s.to_json();
        let reparsed = drybell_obs::parse_json(&doc.to_pretty()).unwrap();
        let back = RunSummary::from_json(&reparsed).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn corrupt_journal_fields_fold_as_gaps_not_fake_zeros() {
        // A phase missing `seconds`, a job whose `seconds` is a string,
        // and an lf_execution missing `examples`: each used to fold in
        // as a real-looking zero via unwrap_or. The conservative
        // fallback values still apply, but every fabrication is now
        // recorded in journal_gaps so `doctor check` gates MISSING
        // instead of reporting a fake ok (or a spurious DRIFT vs zero).
        let text = [
            r#"{"seq":0,"t":0.0,"kind":"phase","job":"lfs","name":"map","records_in":800,"records_out":800}"#,
            r#"{"seq":1,"t":0.1,"kind":"job","name":"lfs","records_in":800,"records_out":800,"seconds":"oops","straggler_ratio":1.0,"worker_busy":[0.1]}"#,
            r#"{"seq":2,"t":0.2,"kind":"lf_execution","seconds":0.2,"nlp_calls":10,"nlp_degraded":0}"#,
        ]
        .join("\n");
        let s = RunSummary::from_journal_str(&text).unwrap();
        assert_eq!(s.journal_gaps.get("phase.seconds"), Some(&1));
        assert_eq!(s.journal_gaps.get("job.seconds"), Some(&1));
        assert_eq!(s.journal_gaps.get("lf_execution.examples"), Some(&1));
        // Fields that were actually present record no gap.
        assert!(!s.journal_gaps.contains_key("phase.records_in"));
        assert!(!s.journal_gaps.contains_key("job.straggler_ratio"));
        // Gaps survive the baseline round trip.
        let reparsed = drybell_obs::parse_json(&s.to_json().to_pretty()).unwrap();
        assert_eq!(RunSummary::from_json(&reparsed).unwrap(), s);
        // And surface in the human rendering.
        assert!(s.to_text().contains("JOURNAL GAPS"));
        // A clean journal records none.
        let clean = RunSummary::from_journal_str(&golden_journal()).unwrap();
        assert!(clean.journal_gaps.is_empty());
    }

    #[test]
    fn from_json_rejects_non_summaries() {
        let doc = drybell_obs::parse_json(r#"{"hello": 1}"#).unwrap();
        assert!(matches!(
            RunSummary::from_json(&doc),
            Err(crate::DoctorError::BadSummary(_))
        ));
    }

    #[test]
    fn metrics_snapshot_merges_votes_gauges_and_buckets() {
        let mut s = RunSummary::default();
        let doc = drybell_obs::parse_json(
            r#"{
              "counters": {"votes/kw": 230, "lf/nlp_person/degraded": 5, "nlp_calls": 800},
              "gauges": {"nlp_cache/hits": 600, "nlp_cache/misses": 200,
                         "lf/kw/coverage_ppm": 290000, "lf/kw/learned_accuracy_ppm": 910000},
              "histograms": {"obs/serving/score_us": {"count": 3, "buckets": [[4, 2], [7, 1]]}}
            }"#,
        )
        .unwrap();
        s.merge_metrics_json(&doc);
        assert_eq!(s.lfs["kw"].votes, Some(230));
        assert_eq!(s.lfs["kw"].coverage, Some(0.29));
        assert_eq!(s.lfs["kw"].learned_accuracy, Some(0.91));
        assert_eq!(s.lfs["nlp_person"].degraded, 5);
        assert_eq!(s.nlp_calls, 800);
        assert_eq!(s.nlp_cache_hits, 600);
        assert_eq!(s.latency["obs/serving/score_us"], vec![(4, 2), (7, 1)]);
        // Also accepts the report_json wrapper shape.
        let wrapped =
            drybell_obs::parse_json(r#"{"metrics": {"counters": {"votes/kg": 10}}}"#).unwrap();
        s.merge_metrics_json(&wrapped);
        assert_eq!(s.lfs["kg"].votes, Some(10));
    }

    #[test]
    fn coverage_falls_back_to_votes_over_examples() {
        let mut s = RunSummary {
            examples: 800,
            ..RunSummary::default()
        };
        s.lfs.insert(
            "kw".into(),
            LfSignals {
                votes: Some(200),
                ..LfSignals::default()
            },
        );
        assert!((s.coverage_of("kw").unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(s.coverage_of("missing"), None);
    }

    #[test]
    fn lf_report_document_merges() {
        let mut s = RunSummary::default();
        let doc = drybell_obs::parse_json(
            r#"{"label_density":0.8,"lfs":[{"name":"kw","coverage":0.3,"overlap":0.1,"conflict":0.02,"learned_accuracy":0.92}]}"#,
        )
        .unwrap();
        s.merge_lf_report_json(&doc);
        assert_eq!(s.lfs["kw"].coverage, Some(0.3));
        assert_eq!(s.lfs["kw"].learned_accuracy, Some(0.92));
    }
}
