//! Population Stability Index over bucketed distributions.
//!
//! PSI is the standard drift score for monitored model populations:
//! `Σ (qᵢ − pᵢ) · ln(qᵢ / pᵢ)` over bucket proportions `p` (expected /
//! baseline) and `q` (actual / current). Every term is non-negative
//! (the sign of `qᵢ − pᵢ` matches the sign of the log), so PSI is `0`
//! exactly when the distributions agree bucket-wise and grows with
//! divergence. The usual industry reading: `< 0.1` stable, `0.1–0.25`
//! shifting, `> 0.25` drifted — `doctor.toml` makes the cut-off a
//! per-signal budget.

/// Proportion floor for empty buckets: without smoothing a bucket that
/// is occupied on one side and empty on the other would make the score
/// infinite, which is noise-hostile for sparse histograms.
const EPSILON: f64 = 1e-4;

/// The population-stability index between two bucketed counts.
///
/// The slices are aligned by index and may differ in length (the
/// shorter is zero-padded). Each side is normalized by its own total;
/// zero-proportion buckets are floored at `1e-4` before the log, so the
/// score is always finite when both sides have samples. Edge cases:
/// both empty ⇒ `0.0` (nothing drifted); exactly one side empty ⇒
/// `f64::INFINITY` (maximal drift — a distribution disappeared).
pub fn psi(expected: &[u64], actual: &[u64]) -> f64 {
    let e_total: u64 = expected.iter().sum();
    let a_total: u64 = actual.iter().sum();
    match (e_total, a_total) {
        (0, 0) => return 0.0,
        (0, _) | (_, 0) => return f64::INFINITY,
        _ => {}
    }
    let n = expected.len().max(actual.len());
    let mut total = 0.0;
    for i in 0..n {
        let e = expected.get(i).copied().unwrap_or(0);
        let a = actual.get(i).copied().unwrap_or(0);
        let p = (e as f64 / e_total as f64).max(EPSILON);
        let q = (a as f64 / a_total as f64).max(EPSILON);
        total += (q - p) * (q / p).ln();
    }
    total
}

/// PSI over sparse `(bucket index, count)` pairs — the shape journal
/// and metrics snapshots serialize log-bucket histograms in.
pub fn psi_sparse(expected: &[(usize, u64)], actual: &[(usize, u64)]) -> f64 {
    let width = expected
        .iter()
        .chain(actual)
        .map(|&(i, _)| i + 1)
        .max()
        .unwrap_or(0);
    let mut e = vec![0u64; width];
    let mut a = vec![0u64; width];
    for &(i, n) in expected {
        if let Some(slot) = e.get_mut(i) {
            *slot += n;
        }
    }
    for &(i, n) in actual {
        if let Some(slot) = a.get_mut(i) {
            *slot += n;
        }
    }
    psi(&e, &a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_score_zero() {
        let h = [10, 20, 30, 25, 15];
        assert_eq!(psi(&h, &h), 0.0);
        // Scale invariance: same proportions, different totals.
        let doubled: Vec<u64> = h.iter().map(|&n| n * 2).collect();
        assert!(psi(&h, &doubled).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_score_large() {
        // All mass in bucket 0 vs all mass in bucket 1.
        let score = psi(&[100, 0], &[0, 100]);
        assert!(score > 5.0, "disjoint PSI {score}");
        assert!(score.is_finite());
        // Symmetric in magnitude for the mirrored comparison.
        let back = psi(&[0, 100], &[100, 0]);
        assert!((score - back).abs() < 1e-12);
    }

    #[test]
    fn moderate_shift_lands_between_the_conventional_cutoffs() {
        // 10% of mass moved one bucket over: a "shifting" population.
        let score = psi(&[50, 50], &[40, 60]);
        assert!(score > 0.01 && score < 0.25, "moderate PSI {score}");
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(psi(&[], &[]), 0.0);
        assert_eq!(psi(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(psi(&[5, 5], &[]), f64::INFINITY);
        assert_eq!(psi(&[], &[5, 5]), f64::INFINITY);
        assert_eq!(psi(&[0], &[7]), f64::INFINITY);
    }

    #[test]
    fn single_bucket_distributions_agree_trivially() {
        // Both sides put 100% of mass in the only bucket: identical
        // proportions regardless of counts.
        assert_eq!(psi(&[5], &[9]), 0.0);
        assert_eq!(psi(&[1], &[1_000_000]), 0.0);
    }

    #[test]
    fn length_mismatch_zero_pads() {
        assert!(psi(&[10, 10], &[10, 10, 0, 0]).abs() < 1e-12);
        let score = psi(&[10, 10], &[10, 10, 20]);
        assert!(score > 0.1, "padded PSI {score}");
    }

    #[test]
    fn psi_is_nonnegative_and_termwise_monotone() {
        // Every term (q-p)ln(q/p) ≥ 0, so any perturbation scores > 0.
        let base = [25, 25, 25, 25];
        for shifted in [[35, 15, 25, 25], [25, 25, 10, 40], [1, 1, 1, 97]] {
            let score = psi(&base, &shifted);
            assert!(score > 0.0, "{shifted:?} scored {score}");
        }
    }

    #[test]
    fn sparse_form_matches_dense() {
        let dense = psi(&[3, 0, 7, 0, 2], &[1, 0, 9, 0, 2]);
        let sparse = psi_sparse(&[(0, 3), (2, 7), (4, 2)], &[(0, 1), (2, 9), (4, 2)]);
        assert!((dense - sparse).abs() < 1e-12);
        assert_eq!(psi_sparse(&[], &[]), 0.0);
    }
}
