//! Diffing two [`RunSummary`]s into per-signal drift verdicts.
//!
//! Every monitored signal produces one [`Verdict`]: the baseline and
//! current values, the delta (absolute, relative, or PSI depending on
//! the signal), the budget it was judged against, and a [`Status`].
//! Only `Drift` and `Missing` gate — `doctor check` exits nonzero iff
//! any verdict gates. Signals without a configured budget still appear
//! in the report as `Info`, so the table doubles as a run-over-run
//! changelog even for unbudgeted metrics.

use crate::config::DoctorConfig;
use crate::psi::{psi, psi_sparse};
use crate::summary::RunSummary;
use drybell_obs::Json;

/// How a signal's delta is computed and compared to its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// `|current − baseline| ≤ budget`.
    Abs,
    /// `|current − baseline| / max(|baseline|, 1e-9) ≤ budget`.
    Rel,
    /// Population-stability index over histogram buckets `≤ budget`.
    Psi,
}

impl BudgetKind {
    fn as_str(self) -> &'static str {
        match self {
            BudgetKind::Abs => "abs",
            BudgetKind::Rel => "rel",
            BudgetKind::Psi => "psi",
        }
    }
}

/// Outcome of judging one signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within budget.
    Ok,
    /// Budget exceeded — gates the check.
    Drift,
    /// No budget configured; reported for visibility only.
    Info,
    /// The baseline had this signal but the current run does not, and a
    /// budget is configured — gates (a monitored signal disappeared).
    Missing,
    /// The current run has a signal the baseline lacked — never gates
    /// (new LFs / new instrumentation are expected to appear).
    New,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Drift => "DRIFT",
            Status::Info => "info",
            Status::Missing => "MISSING",
            Status::New => "new",
        }
    }
}

/// One judged signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Signal name, e.g. `lf/nlp_person/coverage`.
    pub signal: String,
    /// Baseline value (scalar signals only).
    pub baseline: Option<f64>,
    /// Current value (scalar signals only).
    pub current: Option<f64>,
    /// The computed delta, per [`BudgetKind`].
    pub delta: Option<f64>,
    /// The budget judged against, if configured.
    pub budget: Option<f64>,
    /// Delta semantics.
    pub kind: BudgetKind,
    /// The outcome.
    pub status: Status,
    /// Human-readable context (which budget key, why missing, …).
    pub note: String,
}

impl Verdict {
    /// Whether this verdict fails a `doctor check`.
    pub fn gates(&self) -> bool {
        matches!(self.status, Status::Drift | Status::Missing)
    }
}

/// The full diff of two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-signal verdicts, in a stable order (scalars, then per-LF
    /// signals sorted by name, then distributions).
    pub verdicts: Vec<Verdict>,
    /// Whether the two runs disagreed on config fingerprint (reported,
    /// never gated: a config change legitimately moves baselines).
    pub fingerprint_changed: bool,
}

/// Relative-delta denominator floor.
const REL_EPS: f64 = 1e-9;

fn delta_of(kind: BudgetKind, base: f64, cur: f64) -> f64 {
    match kind {
        BudgetKind::Abs => (cur - base).abs(),
        BudgetKind::Rel => (cur - base).abs() / base.abs().max(REL_EPS),
        BudgetKind::Psi => unreachable!("PSI deltas come from psi(), not delta_of"),
    }
}

/// Judge one scalar signal.
fn scalar_verdict(
    signal: &str,
    budget_key: &str,
    kind: BudgetKind,
    base: Option<f64>,
    cur: Option<f64>,
    cfg: &DoctorConfig,
) -> Option<Verdict> {
    let budget = cfg.budget(budget_key);
    let (delta, status, note) = match (base, cur) {
        (None, None) => return None,
        (Some(_), None) => {
            if budget.is_some() {
                (
                    None,
                    Status::Missing,
                    format!("baseline has {signal} but current run does not"),
                )
            } else {
                (
                    None,
                    Status::Info,
                    "signal absent in current run".to_string(),
                )
            }
        }
        (None, Some(_)) => (None, Status::New, "signal new in current run".to_string()),
        (Some(b), Some(c)) => {
            let d = delta_of(kind, b, c);
            match budget {
                Some(limit) if d > limit => (
                    Some(d),
                    Status::Drift,
                    format!("exceeds {budget_key} = {limit}"),
                ),
                Some(_) => (Some(d), Status::Ok, budget_key.to_string()),
                None => (Some(d), Status::Info, "no budget configured".to_string()),
            }
        }
    };
    Some(Verdict {
        signal: signal.to_string(),
        baseline: base,
        current: cur,
        delta,
        budget,
        kind,
        status,
        note,
    })
}

/// Judge one bucketed-distribution signal via PSI.
fn psi_verdict(
    signal: &str,
    budget_key: &str,
    score: Option<f64>,
    base_present: bool,
    cur_present: bool,
    cfg: &DoctorConfig,
) -> Option<Verdict> {
    let budget = cfg.budget(budget_key);
    let (delta, status, note) = match (base_present, cur_present) {
        (false, false) => return None,
        (true, false) => {
            if budget.is_some() {
                (
                    None,
                    Status::Missing,
                    format!("baseline has {signal} but current run does not"),
                )
            } else {
                (
                    None,
                    Status::Info,
                    "distribution absent in current run".to_string(),
                )
            }
        }
        (false, true) => (
            None,
            Status::New,
            "distribution new in current run".to_string(),
        ),
        // Both sides present but no score computed: the comparison
        // could not be made. Falling back to 0.0 here used to let an
        // unparseable score silently pass its budget as a fake ok; a
        // monitored-but-unjudgeable signal gates like MISSING instead.
        (true, true) => match score {
            None => {
                if budget.is_some() {
                    (
                        None,
                        Status::Missing,
                        format!("{signal} present on both sides but its PSI score could not be computed"),
                    )
                } else {
                    (
                        None,
                        Status::Info,
                        "score not computable; no budget configured".to_string(),
                    )
                }
            }
            Some(d) => match budget {
                Some(limit) if d > limit => (
                    Some(d),
                    Status::Drift,
                    format!("PSI exceeds {budget_key} = {limit}"),
                ),
                Some(_) => (Some(d), Status::Ok, budget_key.to_string()),
                None => (Some(d), Status::Info, "no budget configured".to_string()),
            },
        },
    };
    Some(Verdict {
        signal: signal.to_string(),
        baseline: None,
        current: None,
        delta,
        budget,
        kind: BudgetKind::Psi,
        status,
        note,
    })
}

impl DriftReport {
    /// Diff a current run against a baseline under the given budgets.
    pub fn diff(base: &RunSummary, cur: &RunSummary, cfg: &DoctorConfig) -> DriftReport {
        let mut verdicts = Vec::new();
        let mut push = |v: Option<Verdict>| {
            if let Some(v) = v {
                verdicts.push(v);
            }
        };

        // -- Run-level timing (informational unless [timing] opts in).
        push(scalar_verdict(
            "run/wall_seconds",
            "timing.wall_rel",
            BudgetKind::Rel,
            Some(base.wall_seconds),
            Some(cur.wall_seconds),
            cfg,
        ));
        push(scalar_verdict(
            "run/straggler_ratio",
            "timing.straggler_rel",
            BudgetKind::Rel,
            base.straggler_ratio,
            cur.straggler_ratio,
            cfg,
        ));

        // -- Dataflow health.
        push(scalar_verdict(
            "dataflow/retries",
            "scalar.retries_abs",
            BudgetKind::Abs,
            Some(base.retries as f64),
            Some(cur.retries as f64),
            cfg,
        ));
        push(scalar_verdict(
            "dataflow/skipped_records",
            "scalar.skipped_records_abs",
            BudgetKind::Abs,
            Some(base.skipped_records as f64),
            Some(cur.skipped_records as f64),
            cfg,
        ));

        // -- NLP service health.
        push(scalar_verdict(
            "nlp/calls",
            "scalar.nlp_calls_rel",
            BudgetKind::Rel,
            Some(base.nlp_calls as f64),
            Some(cur.nlp_calls as f64),
            cfg,
        ));
        push(scalar_verdict(
            "nlp/degraded",
            "scalar.nlp_degraded_abs",
            BudgetKind::Abs,
            Some(base.nlp_degraded as f64),
            Some(cur.nlp_degraded as f64),
            cfg,
        ));
        push(scalar_verdict(
            "nlp/cache_hit_rate",
            "scalar.nlp_cache_hit_rate_abs",
            BudgetKind::Abs,
            base.nlp_cache_hit_rate(),
            cur.nlp_cache_hit_rate(),
            cfg,
        ));

        // -- Label-model convergence & end-model quality.
        push(scalar_verdict(
            "train/final_nll",
            "scalar.final_nll_rel",
            BudgetKind::Rel,
            base.train
                .as_ref()
                .map(|t| t.final_nll)
                .filter(|v| v.is_finite()),
            cur.train
                .as_ref()
                .map(|t| t.final_nll)
                .filter(|v| v.is_finite()),
            cfg,
        ));
        push(scalar_verdict(
            "serving/drybell_f1",
            "scalar.drybell_f1_abs",
            BudgetKind::Abs,
            base.drybell_f1,
            cur.drybell_f1,
            cfg,
        ));

        // -- Per-LF signals (§3.3's monitored-over-time statistics).
        let mut lf_names: Vec<&String> = base.lfs.keys().chain(cur.lfs.keys()).collect();
        lf_names.sort();
        lf_names.dedup();
        for name in lf_names {
            let b = base.lfs.get(name);
            let c = cur.lfs.get(name);
            push(scalar_verdict(
                &format!("lf/{name}/coverage"),
                "lf.coverage_abs",
                BudgetKind::Abs,
                b.and_then(|_| base.coverage_of(name)),
                c.and_then(|_| cur.coverage_of(name)),
                cfg,
            ));
            push(scalar_verdict(
                &format!("lf/{name}/overlap"),
                "lf.overlap_abs",
                BudgetKind::Abs,
                b.and_then(|lf| lf.overlap),
                c.and_then(|lf| lf.overlap),
                cfg,
            ));
            push(scalar_verdict(
                &format!("lf/{name}/conflict"),
                "lf.conflict_abs",
                BudgetKind::Abs,
                b.and_then(|lf| lf.conflict),
                c.and_then(|lf| lf.conflict),
                cfg,
            ));
            push(scalar_verdict(
                &format!("lf/{name}/learned_accuracy"),
                "lf.learned_accuracy_abs",
                BudgetKind::Abs,
                b.and_then(|lf| lf.learned_accuracy),
                c.and_then(|lf| lf.learned_accuracy),
                cfg,
            ));
            push(scalar_verdict(
                &format!("lf/{name}/degraded"),
                "lf.degraded_abs",
                BudgetKind::Abs,
                b.map(|lf| lf.degraded as f64),
                c.map(|lf| lf.degraded as f64),
                cfg,
            ));
        }

        // -- Serving score distributions. Presence means *non-empty*: a
        // run that scored zero requests journals an all-zero histogram,
        // and comparing it would either divide by zero inside PSI or —
        // when both sides are empty — read as a spurious 0-PSI "ok".
        // An empty current distribution against a populated baseline is
        // a MISSING monitored signal, not a stable one.
        let dist_present = |d: &Option<Vec<u64>>| {
            d.as_ref()
                .is_some_and(|d| d.iter().copied().sum::<u64>() > 0)
        };
        let dist_psi = |b: &Option<Vec<u64>>, c: &Option<Vec<u64>>| {
            (dist_present(b) && dist_present(c))
                .then(|| psi(b.as_deref().unwrap_or(&[]), c.as_deref().unwrap_or(&[])))
        };
        push(psi_verdict(
            "serving/score_dist",
            "psi.score_dist",
            dist_psi(&base.score_dist_serving, &cur.score_dist_serving),
            dist_present(&base.score_dist_serving),
            dist_present(&cur.score_dist_serving),
            cfg,
        ));
        push(psi_verdict(
            "serving/score_dist_candidate",
            "psi.score_dist",
            dist_psi(&base.score_dist_candidate, &cur.score_dist_candidate),
            dist_present(&base.score_dist_candidate),
            dist_present(&cur.score_dist_candidate),
            cfg,
        ));

        // -- Invalid (NaN) scores seen during shadowing. These used to
        // be silently absorbed into bucket 0 of the distributions; now
        // they are counted apart and gated absolutely (default budget
        // 0: any NaN-emitting model drifts). Only judged when the run
        // actually shadowed (a distribution or a nonzero count exists),
        // so non-shadow runs do not report a phantom signal.
        let invalid_of =
            |dist: &Option<Vec<u64>>, n: u64| (dist.is_some() || n > 0).then_some(n as f64);
        push(scalar_verdict(
            "serving/score_invalid",
            "serving.invalid_scores_abs",
            BudgetKind::Abs,
            invalid_of(&base.score_dist_serving, base.score_invalid_serving),
            invalid_of(&cur.score_dist_serving, cur.score_invalid_serving),
            cfg,
        ));
        push(scalar_verdict(
            "serving/score_invalid_candidate",
            "serving.invalid_scores_abs",
            BudgetKind::Abs,
            invalid_of(&base.score_dist_candidate, base.score_invalid_candidate),
            invalid_of(&cur.score_dist_candidate, cur.score_invalid_candidate),
            cfg,
        ));

        // -- Latency histograms (informational unless psi.latency set).
        let mut hist_names: Vec<&String> = base.latency.keys().chain(cur.latency.keys()).collect();
        hist_names.sort();
        hist_names.dedup();
        // Same empty-distribution rule as the score dists above: a
        // histogram with zero total count is absent, not stable.
        let sparse_present = |s: Option<&Vec<(usize, u64)>>| {
            s.is_some_and(|s| s.iter().map(|&(_, n)| n).sum::<u64>() > 0)
        };
        for name in hist_names {
            let b = base.latency.get(name);
            let c = cur.latency.get(name);
            push(psi_verdict(
                &format!("latency/{name}"),
                "psi.latency",
                match (b, c) {
                    (Some(b), Some(c)) if sparse_present(Some(b)) && sparse_present(Some(c)) => {
                        Some(psi_sparse(b, c))
                    }
                    _ => None,
                },
                sparse_present(b),
                sparse_present(c),
                cfg,
            ));
        }

        // -- Journal integrity. Every gap is a field the emitter always
        // writes that was absent or malformed in the current run's
        // journal: the summary folded a conservative fallback in its
        // place, so every scalar judged above may be standing on a
        // fabricated zero. That is not a tunable signal — it gates
        // unconditionally as MISSING, no budget key. (Baseline-side
        // gaps are not judged here: a corrupt baseline fails loudly
        // when it is re-established, and gating the *current* run on
        // historic corruption would be unactionable.)
        for (key, count) in &cur.journal_gaps {
            verdicts.push(Verdict {
                signal: format!("journal/{key}"),
                baseline: None,
                current: Some(*count as f64),
                delta: None,
                budget: None,
                kind: BudgetKind::Abs,
                status: Status::Missing,
                note: format!("{count} journal event(s) with field {key} absent or malformed"),
            });
        }

        // -- Counter resets. A cumulative counter moving backwards means
        // a producer restarted mid-window; the folder clamped the delta
        // to zero instead of underflowing, so the window's per-LF rates
        // may *under*-state reality. Worth a look, not an alarm: INFO,
        // never gates.
        if cur.counter_resets > 0 {
            verdicts.push(Verdict {
                signal: "stream/counter_resets".to_string(),
                baseline: None,
                current: Some(cur.counter_resets as f64),
                delta: None,
                budget: None,
                kind: BudgetKind::Abs,
                status: Status::Info,
                note: format!(
                    "{} cumulative counter(s) moved backwards (producer restart); deltas clamped to zero",
                    cur.counter_resets
                ),
            });
        }

        let fingerprint_changed = !base.config_fingerprint.is_empty()
            && !cur.config_fingerprint.is_empty()
            && base.config_fingerprint != cur.config_fingerprint;

        DriftReport {
            verdicts,
            fingerprint_changed,
        }
    }

    /// Whether any verdict gates the check.
    pub fn has_drift(&self) -> bool {
        self.verdicts.iter().any(Verdict::gates)
    }

    /// Only the gating verdicts.
    pub fn gating(&self) -> impl Iterator<Item = &Verdict> {
        self.verdicts.iter().filter(|v| v.gates())
    }

    /// Render the human-readable verdict table.
    pub fn to_table(&self) -> String {
        let fv = |v: Option<f64>| match v {
            Some(x) if x.is_infinite() => "inf".to_string(),
            Some(x) => format!("{x:.4}"),
            None => "-".to_string(),
        };
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>10} {:>10} {:>9} {:>8} {:<4} {:<8} note\n",
            "signal", "baseline", "current", "delta", "budget", "kind", "status"
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<40} {:>10} {:>10} {:>9} {:>8} {:<4} {:<8} {}\n",
                v.signal,
                fv(v.baseline),
                fv(v.current),
                fv(v.delta),
                fv(v.budget),
                v.kind.as_str(),
                v.status.as_str(),
                v.note,
            ));
        }
        if self.fingerprint_changed {
            out.push_str("note: config fingerprint changed between runs (not gated)\n");
        }
        let gating = self.gating().count();
        if gating > 0 {
            out.push_str(&format!("{gating} signal(s) out of budget\n"));
        } else {
            out.push_str("all signals within budget\n");
        }
        out
    }

    /// Machine-readable report (`doctor check --json`).
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => Json::Num(x),
            Some(_) => Json::from("inf"),
            None => Json::Null,
        };
        Json::obj(vec![
            (
                "verdicts",
                Json::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("signal", Json::from(v.signal.as_str())),
                                ("baseline", opt(v.baseline)),
                                ("current", opt(v.current)),
                                ("delta", opt(v.delta)),
                                ("budget", opt(v.budget)),
                                ("kind", Json::from(v.kind.as_str())),
                                ("status", Json::from(v.status.as_str())),
                                ("gates", Json::Bool(v.gates())),
                                ("note", Json::from(v.note.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("fingerprint_changed", Json::Bool(self.fingerprint_changed)),
            ("has_drift", Json::Bool(self.has_drift())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{LfSignals, TrainSummary};

    fn baseline() -> RunSummary {
        let mut s = RunSummary {
            schema_version: 1,
            run_id: "base".into(),
            config_fingerprint: "fp1".into(),
            wall_seconds: 1.0,
            retries: 0,
            nlp_calls: 800,
            nlp_cache_hits: 600,
            nlp_cache_misses: 200,
            examples: 800,
            drybell_f1: Some(0.70),
            train: Some(TrainSummary {
                steps: 200,
                epochs: 2,
                final_nll: 0.43,
                loss_curve: vec![0.693, 0.51],
            }),
            score_dist_serving: Some(vec![40, 60, 80, 60, 40, 30, 30, 25, 20, 15]),
            ..RunSummary::default()
        };
        s.lfs.insert(
            "nlp_person".into(),
            LfSignals {
                coverage: Some(0.65),
                overlap: Some(0.2),
                conflict: Some(0.04),
                learned_accuracy: Some(0.88),
                votes: Some(520),
                degraded: 0,
            },
        );
        s
    }

    #[test]
    fn identical_runs_have_no_drift() {
        let base = baseline();
        let report = DriftReport::diff(&base, &base.clone(), &DoctorConfig::default());
        assert!(
            !report.has_drift(),
            "gating: {:?}",
            report.gating().collect::<Vec<_>>()
        );
        assert!(!report.fingerprint_changed);
        // Scalars all present and judged Ok or Info, never Missing/New.
        assert!(report
            .verdicts
            .iter()
            .all(|v| matches!(v.status, Status::Ok | Status::Info)));
    }

    #[test]
    fn coverage_drop_and_degradations_gate() {
        let base = baseline();
        let mut cur = base.clone();
        {
            let lf = cur.lfs.get_mut("nlp_person").unwrap();
            lf.coverage = Some(0.30); // -0.35 >> lf.coverage_abs = 0.10
            lf.degraded = 120;
        }
        cur.nlp_degraded = 120;
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        assert!(report.has_drift());
        let gating: Vec<&str> = report.gating().map(|v| v.signal.as_str()).collect();
        assert!(gating.contains(&"lf/nlp_person/coverage"), "{gating:?}");
        assert!(gating.contains(&"lf/nlp_person/degraded"), "{gating:?}");
        assert!(gating.contains(&"nlp/degraded"), "{gating:?}");
    }

    #[test]
    fn score_distribution_shift_gates_via_psi() {
        let base = baseline();
        let mut cur = base.clone();
        // Push nearly all serving mass into the top buckets.
        cur.score_dist_serving = Some(vec![2, 2, 2, 2, 2, 10, 30, 90, 120, 140]);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "serving/score_dist")
            .unwrap();
        assert_eq!(v.status, Status::Drift);
        assert!(v.delta.unwrap() > 0.25);
    }

    #[test]
    fn unbudgeted_signals_report_info_not_drift() {
        let base = baseline();
        let mut cur = base.clone();
        cur.wall_seconds = 50.0; // huge, but timing has no default budget
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "run/wall_seconds")
            .unwrap();
        assert_eq!(v.status, Status::Info);
        assert!(!report.has_drift());
        // Opting in via [timing] flips it to a gate.
        let mut cfg = DoctorConfig::default();
        cfg.set("timing.wall_rel", 0.5);
        let gated = DriftReport::diff(&base, &cur, &cfg);
        assert!(gated.has_drift());
    }

    #[test]
    fn missing_budgeted_signal_gates_and_new_signal_does_not() {
        let base = baseline();
        let mut cur = base.clone();
        cur.lfs.remove("nlp_person");
        cur.lfs.insert("brand_new_lf".into(), LfSignals::default());
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let missing = report
            .verdicts
            .iter()
            .find(|v| v.signal == "lf/nlp_person/coverage")
            .unwrap();
        assert_eq!(missing.status, Status::Missing);
        assert!(missing.gates());
        // New LF with no data yields New (degraded exists with value 0
        // on the current side only).
        let newly = report
            .verdicts
            .iter()
            .find(|v| v.signal == "lf/brand_new_lf/degraded")
            .unwrap();
        assert_eq!(newly.status, Status::New);
        assert!(!newly.gates());
    }

    #[test]
    fn fingerprint_change_is_reported_but_not_gated() {
        let base = baseline();
        let mut cur = base.clone();
        cur.config_fingerprint = "fp2".into();
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        assert!(report.fingerprint_changed);
        assert!(!report.has_drift());
        assert!(report.to_table().contains("fingerprint changed"));
    }

    #[test]
    fn table_and_json_render_all_verdicts() {
        let base = baseline();
        let mut cur = base.clone();
        cur.lfs.get_mut("nlp_person").unwrap().coverage = Some(0.30);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let table = report.to_table();
        assert!(table.contains("lf/nlp_person/coverage"));
        assert!(table.contains("DRIFT"));
        assert!(table.contains("out of budget"));
        let json = report.to_json();
        assert_eq!(json.get("has_drift"), Some(&Json::Bool(true)));
        let verdicts = json.get("verdicts").unwrap().items();
        assert_eq!(verdicts.len(), report.verdicts.len());
    }

    #[test]
    fn nan_emitting_model_is_flagged_not_absorbed() {
        let base = baseline(); // shadowed, zero invalid scores
        let mut cur = base.clone();
        cur.score_invalid_serving = 7;
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "serving/score_invalid")
            .unwrap();
        assert_eq!(v.status, Status::Drift, "NaN scores must gate by default");
        assert_eq!(v.delta, Some(7.0));
        assert!(report.has_drift());
        // The distribution itself stayed identical — the NaNs were NOT
        // binned into it, so only the invalid counter reports drift.
        let dist = report
            .verdicts
            .iter()
            .find(|v| v.signal == "serving/score_dist")
            .unwrap();
        assert_eq!(dist.status, Status::Ok);
    }

    #[test]
    fn invalid_score_signal_absent_without_shadow_data() {
        let mut base = baseline();
        base.score_dist_serving = None;
        let report = DriftReport::diff(&base, &base.clone(), &DoctorConfig::default());
        assert!(
            !report
                .verdicts
                .iter()
                .any(|v| v.signal.starts_with("serving/score_invalid")),
            "runs that never shadowed must not report a phantom invalid-score signal"
        );
    }

    #[test]
    fn empty_current_distribution_reads_missing_not_zero_psi() {
        let base = baseline();
        // Zero scored requests: the journal still carries an all-zero
        // histogram. PSI against a populated baseline would divide by
        // zero (one-sided mass → inf); treating it as "present" with
        // PSI 0 would read as a spurious ok. It must gate as MISSING.
        let mut cur = base.clone();
        cur.score_dist_serving = Some(vec![0; 10]);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "serving/score_dist")
            .unwrap();
        assert_eq!(v.status, Status::Missing);
        assert!(v.gates());
        assert_eq!(v.delta, None, "no PSI may be computed against emptiness");
    }

    #[test]
    fn both_empty_distributions_produce_no_verdict() {
        let mut base = baseline();
        base.score_dist_serving = Some(vec![0; 10]);
        let cur = base.clone();
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        assert!(
            !report
                .verdicts
                .iter()
                .any(|v| v.signal == "serving/score_dist"),
            "two empty distributions must not manufacture a 0-PSI ok"
        );
        assert!(!report.has_drift());
    }

    #[test]
    fn empty_baseline_distribution_reads_new() {
        let mut base = baseline();
        base.score_dist_serving = Some(vec![0; 10]);
        let mut cur = base.clone();
        cur.score_dist_serving = Some(vec![10; 10]);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "serving/score_dist")
            .unwrap();
        assert_eq!(v.status, Status::New);
        assert!(!v.gates());
    }

    #[test]
    fn uncomputable_psi_score_gates_missing_instead_of_fake_ok() {
        // Regression: a budgeted distribution present on both sides
        // whose score could not be computed used to read as PSI 0.0 —
        // a silent pass. It must gate as MISSING.
        let cfg = DoctorConfig::default(); // psi.score_dist has a default budget
        let v = psi_verdict(
            "serving/score_dist",
            "psi.score_dist",
            None,
            true,
            true,
            &cfg,
        )
        .expect("both sides present must produce a verdict");
        assert_eq!(v.status, Status::Missing);
        assert!(v.gates());
        assert_eq!(v.delta, None, "no fabricated 0.0 score");
        // Without a budget the same situation is informational only.
        let v = psi_verdict("latency/obs/x_us", "psi.latency", None, true, true, &cfg)
            .expect("verdict still reported for visibility");
        assert_eq!(v.status, Status::Info);
        assert!(!v.gates());
    }

    #[test]
    fn journal_gaps_gate_as_missing() {
        // A current run folded from a corrupt journal carries gap
        // counts; each must surface as an unconditionally-gating
        // MISSING verdict instead of letting the fabricated zeros
        // underneath read as ok (or as spurious DRIFT).
        let base = baseline();
        let mut cur = base.clone();
        cur.journal_gaps.insert("job.seconds".into(), 2);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "journal/job.seconds")
            .unwrap();
        assert_eq!(v.status, Status::Missing);
        assert!(v.gates());
        assert_eq!(v.current, Some(2.0));
        assert!(report.has_drift());
        // Baseline-side gaps alone do not gate the current run.
        let report = DriftReport::diff(&cur, &base, &DoctorConfig::default());
        assert!(!report
            .verdicts
            .iter()
            .any(|v| v.signal.starts_with("journal/")));
        assert!(!report.has_drift());
    }

    #[test]
    fn latency_histograms_are_informational_by_default() {
        let base = {
            let mut s = baseline();
            s.latency
                .insert("obs/lf/execute_us".into(), vec![(3, 10), (4, 5)]);
            s
        };
        let mut cur = base.clone();
        cur.latency
            .insert("obs/lf/execute_us".into(), vec![(8, 15)]);
        let report = DriftReport::diff(&base, &cur, &DoctorConfig::default());
        let v = report
            .verdicts
            .iter()
            .find(|v| v.signal == "latency/obs/lf/execute_us")
            .unwrap();
        assert_eq!(v.status, Status::Info);
        let mut cfg = DoctorConfig::default();
        cfg.set("psi.latency", 0.25);
        let gated = DriftReport::diff(&base, &cur, &cfg);
        assert!(gated.has_drift());
    }
}
