//! Property suite for the drift math: PSI identities and the
//! self-diff invariant (`diff(a, a)` never drifts, for any summary).

use drybell_doctor::summary::{LfSignals, TrainSummary};
use drybell_doctor::{psi, DoctorConfig, DriftReport, RunSummary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn prop_psi_of_identical_histograms_is_zero(
        buckets in proptest::collection::vec(0u64..10_000, 0..16),
    ) {
        let score = psi(&buckets, &buckets);
        prop_assert!(score.abs() < 1e-9, "psi(h, h) = {score} for {buckets:?}");
    }

    #[test]
    fn prop_psi_is_nonnegative(
        a in proptest::collection::vec(0u64..10_000, 0..12),
        b in proptest::collection::vec(0u64..10_000, 0..12),
    ) {
        let score = psi(&a, &b);
        prop_assert!(
            score >= 0.0 || score.is_infinite(),
            "psi({a:?}, {b:?}) = {score}"
        );
    }

    #[test]
    fn prop_psi_is_scale_invariant(
        buckets in proptest::collection::vec(1u64..1_000, 1..10),
        scale in 2u64..50,
    ) {
        let scaled: Vec<u64> = buckets.iter().map(|&n| n * scale).collect();
        let score = psi(&buckets, &scaled);
        prop_assert!(score.abs() < 1e-9, "scaled psi = {score}");
    }

    #[test]
    fn prop_self_diff_never_drifts(
        examples in 1u64..100_000,
        retries in 0u64..100,
        degraded in 0u64..1_000,
        hits in 0u64..100_000,
        misses in 0u64..100_000,
        f1 in 0.0..1.0f64,
        nll in 0.01..5.0f64,
        coverage in 0.0..1.0f64,
        accuracy in 0.0..1.0f64,
        dist in proptest::collection::vec(0u64..5_000, 10),
        wall in 0.0..10_000.0f64,
    ) {
        let mut s = RunSummary {
            schema_version: 1,
            run_id: "prop".into(),
            config_fingerprint: "fp".into(),
            wall_seconds: wall,
            retries,
            nlp_degraded: degraded,
            nlp_cache_hits: hits,
            nlp_cache_misses: misses,
            examples,
            drybell_f1: Some(f1),
            train: Some(TrainSummary {
                steps: 100,
                epochs: 2,
                final_nll: nll,
                loss_curve: vec![nll * 2.0, nll],
            }),
            score_dist_serving: Some(dist),
            ..RunSummary::default()
        };
        s.lfs.insert(
            "some_lf".into(),
            LfSignals {
                coverage: Some(coverage),
                overlap: Some(coverage / 2.0),
                conflict: Some(coverage / 4.0),
                learned_accuracy: Some(accuracy),
                votes: Some((coverage * examples as f64) as u64),
                degraded,
            },
        );
        // Identity holds under every budget configuration: the default
        // set and a maximally strict zero-budget overlay.
        let report = DriftReport::diff(&s, &s, &DoctorConfig::default());
        prop_assert!(
            !report.has_drift(),
            "self-diff drifted: {:?}",
            report.gating().collect::<Vec<_>>()
        );
        let mut strict = DoctorConfig::default();
        for key in [
            "timing.wall_rel",
            "timing.straggler_rel",
            "scalar.nlp_calls_rel",
            "psi.latency",
        ] {
            strict.set(key, 0.0);
        }
        let report = DriftReport::diff(&s, &s, &strict);
        prop_assert!(
            !report.has_drift(),
            "strict self-diff drifted: {:?}",
            report.gating().collect::<Vec<_>>()
        );
        prop_assert!(!report.fingerprint_changed);
    }

    #[test]
    fn prop_summary_json_round_trip_preserves_diffability(
        examples in 1u64..100_000,
        coverage in 0.0..1.0f64,
        dist in proptest::collection::vec(0u64..5_000, 10),
    ) {
        let mut s = RunSummary {
            schema_version: 1,
            run_id: "rt".into(),
            examples,
            score_dist_serving: Some(dist),
            ..RunSummary::default()
        };
        s.lfs.insert(
            "lf".into(),
            LfSignals {
                coverage: Some(coverage),
                ..LfSignals::default()
            },
        );
        let text = s.to_json().to_pretty();
        let back = RunSummary::from_json(&drybell_obs::parse_json(&text).unwrap()).unwrap();
        // Round-tripping through JSON must not introduce drift.
        let report = DriftReport::diff(&s, &back, &DoctorConfig::default());
        prop_assert!(
            !report.has_drift(),
            "round-trip drifted: {:?}",
            report.gating().collect::<Vec<_>>()
        );
    }
}
