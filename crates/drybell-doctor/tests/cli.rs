//! End-to-end tests for the `doctor` CLI over golden-journal fixtures.
//!
//! `fixtures/golden_run.jsonl` is a healthy seeded run;
//! `fixtures/drifted_run.jsonl` is its twin after a simulated NLP
//! outage — the `nlp_person` LF degrades to abstain on ~35% of
//! examples, dragging coverage from 0.65 to 0.30, halving the cache
//! hit rate, and shifting the serving score distribution toward the
//! bottom buckets. `doctor check` must pass the clean rerun (exit 0)
//! and fail the degraded one (exit 1) citing the LF coverage and
//! degradation signals by name.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn doctor(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_doctor"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn doctor")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn summarize_renders_the_golden_run() {
    let dir = tempfile::tempdir().unwrap();
    let out = doctor(
        dir.path(),
        &[
            "summarize",
            "--journal",
            fixture("golden_run.jsonl").to_str().unwrap(),
        ],
    );
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("run golden"), "{text}");
    assert!(text.contains("nlp_person"), "{text}");
    assert!(
        text.contains("0.648") || text.contains("0.647"),
        "coverage row: {text}"
    );
}

#[test]
fn summarize_json_is_a_loadable_summary() {
    let dir = tempfile::tempdir().unwrap();
    let out = doctor(
        dir.path(),
        &[
            "summarize",
            "--journal",
            fixture("golden_run.jsonl").to_str().unwrap(),
            "--json",
        ],
    );
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let doc = drybell_obs::parse_json(&stdout(&out)).unwrap();
    let summary = drybell_doctor::RunSummary::from_json(&doc).unwrap();
    assert_eq!(summary.run_id, "golden");
    assert_eq!(summary.schema_version, 1);
    assert_eq!(summary.examples, 800);
}

#[test]
fn baseline_then_clean_rerun_passes() {
    let dir = tempfile::tempdir().unwrap();
    let golden = fixture("golden_run.jsonl");
    let out = doctor(
        dir.path(),
        &["baseline", "--journal", golden.to_str().unwrap()],
    );
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        dir.path().join("results/BASELINE_run.json").exists(),
        "baseline default path"
    );
    // Re-checking the identical journal must be clean.
    let out = doctor(
        dir.path(),
        &[
            "check",
            "--baseline",
            "results/BASELINE_run.json",
            "--journal",
            golden.to_str().unwrap(),
        ],
    );
    assert_eq!(
        code(&out),
        0,
        "check output: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stdout(&out).contains("all signals within budget"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn drifted_run_fails_citing_lf_coverage_and_degradation() {
    let dir = tempfile::tempdir().unwrap();
    let out = doctor(
        dir.path(),
        &[
            "baseline",
            "--journal",
            fixture("golden_run.jsonl").to_str().unwrap(),
        ],
    );
    assert_eq!(code(&out), 0);
    let out = doctor(
        dir.path(),
        &[
            "check",
            "--baseline",
            "results/BASELINE_run.json",
            "--journal",
            fixture("drifted_run.jsonl").to_str().unwrap(),
        ],
    );
    assert_eq!(
        code(&out),
        1,
        "expected drift exit: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
    let table = stdout(&out);
    // The acceptance signals, by name, on gating (DRIFT) rows.
    for signal in [
        "lf/nlp_person/coverage",
        "lf/nlp_person/degraded",
        "nlp/degraded",
        "serving/score_dist",
    ] {
        let row = table
            .lines()
            .find(|l| l.contains(signal))
            .unwrap_or_else(|| panic!("no row for {signal} in:\n{table}"));
        assert!(row.contains("DRIFT"), "{signal} row not gating: {row}");
    }
    assert!(table.contains("out of budget"), "{table}");
}

#[test]
fn check_json_output_reports_gating_verdicts() {
    let dir = tempfile::tempdir().unwrap();
    doctor(
        dir.path(),
        &[
            "baseline",
            "--journal",
            fixture("golden_run.jsonl").to_str().unwrap(),
        ],
    );
    let out = doctor(
        dir.path(),
        &[
            "check",
            "--baseline",
            "results/BASELINE_run.json",
            "--journal",
            fixture("drifted_run.jsonl").to_str().unwrap(),
            "--json",
        ],
    );
    assert_eq!(code(&out), 1);
    let doc = drybell_obs::parse_json(&stdout(&out)).unwrap();
    assert_eq!(doc.get("has_drift").and_then(|v| v.as_bool()), Some(true));
    let verdicts = doc.get("verdicts").unwrap().items();
    let gating: Vec<&str> = verdicts
        .iter()
        .filter(|v| v.get("gates").and_then(|g| g.as_bool()) == Some(true))
        .filter_map(|v| v.get("signal").and_then(|s| s.as_str()))
        .collect();
    assert!(gating.contains(&"lf/nlp_person/coverage"), "{gating:?}");
    assert!(gating.contains(&"lf/nlp_person/degraded"), "{gating:?}");
}

#[test]
fn headerless_journal_reads_as_schema_zero() {
    let dir = tempfile::tempdir().unwrap();
    let golden = std::fs::read_to_string(fixture("golden_run.jsonl")).unwrap();
    let headerless: String = golden.lines().skip(1).collect::<Vec<_>>().join("\n");
    let path = dir.path().join("headerless.jsonl");
    std::fs::write(&path, headerless).unwrap();
    let out = doctor(
        dir.path(),
        &["summarize", "--journal", "headerless.jsonl", "--json"],
    );
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let doc = drybell_obs::parse_json(&stdout(&out)).unwrap();
    let summary = drybell_doctor::RunSummary::from_json(&doc).unwrap();
    assert_eq!(summary.schema_version, 0);
    assert_eq!(summary.run_id, "unknown");
    assert_eq!(summary.examples, 800, "events still fold");
}

#[test]
fn doctor_toml_in_cwd_is_picked_up() {
    let dir = tempfile::tempdir().unwrap();
    doctor(
        dir.path(),
        &[
            "baseline",
            "--journal",
            fixture("golden_run.jsonl").to_str().unwrap(),
        ],
    );
    // Disable every default budget: even the drifted run passes.
    let relaxed = "\
[scalar]\nretries_abs = -1\nskipped_records_abs = -1\nnlp_degraded_abs = -1\n\
nlp_cache_hit_rate_abs = -1\nfinal_nll_rel = -1\ndrybell_f1_abs = -1\n\
[lf]\ncoverage_abs = -1\noverlap_abs = -1\nconflict_abs = -1\n\
learned_accuracy_abs = -1\ndegraded_abs = -1\n\
[psi]\nscore_dist = -1\n";
    std::fs::write(dir.path().join("doctor.toml"), relaxed).unwrap();
    let out = doctor(
        dir.path(),
        &[
            "check",
            "--baseline",
            "results/BASELINE_run.json",
            "--journal",
            fixture("drifted_run.jsonl").to_str().unwrap(),
        ],
    );
    assert_eq!(
        code(&out),
        0,
        "relaxed budgets should pass: {}\n{}",
        stdout(&out),
        stderr(&out)
    );
}

#[test]
fn usage_errors_exit_two() {
    let dir = tempfile::tempdir().unwrap();
    // No subcommand.
    assert_eq!(code(&doctor(dir.path(), &[])), 2);
    // check without --baseline.
    assert_eq!(
        code(&doctor(
            dir.path(),
            &[
                "check",
                "--journal",
                fixture("golden_run.jsonl").to_str().unwrap()
            ],
        )),
        2
    );
    // Both inputs at once.
    assert_eq!(
        code(&doctor(
            dir.path(),
            &["summarize", "--journal", "a", "--summary", "b"],
        )),
        2
    );
    // Missing file.
    let out = doctor(dir.path(), &["summarize", "--journal", "no_such.jsonl"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("no_such.jsonl"), "{}", stderr(&out));
    // Malformed journal cites the line number.
    std::fs::write(
        dir.path().join("bad.jsonl"),
        "{\"kind\":\"job\"}\nnot json\n",
    )
    .unwrap();
    let out = doctor(dir.path(), &["summarize", "--journal", "bad.jsonl"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("line 2"), "{}", stderr(&out));
    // --help is not an error.
    let out = doctor(dir.path(), &["--help"]);
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).contains("USAGE"));
}
